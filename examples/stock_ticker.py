#!/usr/bin/env python3
"""Stock-quote dissemination: soft state vs hard state under loss.

The paper's introduction lists "stock quote or general information
dissemination services" among natural soft-state publishers: only the
latest value of each key matters, so reliable in-order delivery of
every intermediate quote (the TCP abstraction) is wasted work.

This example pits the NACK-feedback soft-state protocol against the
ARQ hard-state baseline on a Zipf-popular ticker feed across loss
rates, comparing staleness (consistency), latency, and bandwidth.

Run::

    python examples/stock_ticker.py
"""

from repro.protocols import ArqSession, FeedbackSession
from repro.workloads import StockTickerWorkload


def build_workload():
    return StockTickerWorkload(
        n_symbols=60, total_update_rate=12.0, zipf_exponent=1.1
    )


def run_soft(loss_rate: float):
    session = FeedbackSession(
        hot_share=0.7,
        data_kbps=36.0,
        feedback_kbps=4.0,
        loss_rate=loss_rate,
        workload=build_workload(),
        seed=6,
    )
    return session.run(horizon=300.0, warmup=60.0)


def run_hard(loss_rate: float):
    session = ArqSession(
        data_kbps=36.0,
        ack_kbps=4.0,
        rto=0.5,
        loss_rate=loss_rate,
        workload=build_workload(),
        seed=6,
    )
    return session.run(horizon=300.0, warmup=60.0)


def main() -> None:
    print("=== live quote table: soft state (SSTP-style) vs hard state (ARQ) ===")
    print(
        f"{'loss':>6} | {'soft c':>7} {'hard c':>7} | "
        f"{'soft lat':>8} {'hard lat':>8} | {'soft pkts':>9} {'hard pkts':>9}"
    )
    for loss in [0.01, 0.1, 0.3, 0.5]:
        soft = run_soft(loss)
        hard = run_hard(loss)
        print(
            f"{loss:6.0%} | {soft.consistency:7.3f} {hard.consistency:7.3f} | "
            f"{soft.mean_receive_latency:8.2f} {hard.mean_receive_latency:8.2f} | "
            f"{soft.data_packets:9d} {hard.data_packets:9d}"
        )
    print()
    print(
        "Note: ARQ retransmits every intermediate quote until ACKed; the\n"
        "soft-state sender only ever announces the *latest* value of a\n"
        "symbol, so under loss it stays fresher with comparable bandwidth."
    )


if __name__ == "__main__":
    main()
