#!/usr/bin/env python3
"""Dissecting a soft-state session's wire traffic with PacketCapture.

Attaches capture taps to a feedback session's data and feedback
channels, then prints what a network monitor would show: traffic mix by
packet kind, bandwidth over time, loss-run statistics (burstiness), and
the redundancy budget.  Also demonstrates exporting the observed loss
pattern as a replayable trace.

Run::

    python examples/traffic_analysis.py
"""

from repro.net import GilbertElliottLoss, PacketCapture
from repro.protocols import FeedbackSession


def main() -> None:
    session = FeedbackSession(
        hot_share=0.7,
        data_kbps=40.0,
        feedback_kbps=5.0,
        loss_model=GilbertElliottLoss.with_mean(0.25, burst_length=6.0),
        update_rate=10.0,
        lifetime_mean=25.0,
        seed=12,
    )
    data_tap = PacketCapture().attach(session.data_channel)
    feedback_tap = PacketCapture().attach(session.feedback_channel)

    result = session.run(horizon=300.0, warmup=50.0)

    print("=== session outcome ===")
    print(f"consistency        : {result.consistency:.3f}")
    print(f"mean T_recv        : {result.mean_receive_latency:.2f} s")
    print()

    print("=== data channel (as a monitor sees it) ===")
    print(f"packets captured   : {len(data_tap)}")
    print(f"observed loss rate : {data_tap.loss_rate:.3f}")
    runs = data_tap.loss_runs()
    print(
        f"loss runs          : {len(runs)} bursts, mean length "
        f"{data_tap.mean_burst_length():.2f} (Gilbert-Elliott target 6)"
    )
    print("bandwidth over time (30 s windows):")
    for start, kbps in data_tap.rate_series(window=30.0):
        bar = "#" * int(kbps)
        print(f"  t={start:6.1f}s  {kbps:5.1f} kbps  {bar}")
    print()

    print("=== feedback channel ===")
    print(f"NACK packets       : {feedback_tap.kinds().get('nack', 0)}")
    fb_bits = sum(feedback_tap.bits_by_kind().values())
    data_bits = sum(data_tap.bits_by_kind().values())
    print(
        f"feedback overhead  : {fb_bits / 1000:.0f} kbit vs "
        f"{data_bits / 1000:.0f} kbit data "
        f"({fb_bits / max(data_bits, 1):.1%})"
    )
    print()

    print("=== sender's own bandwidth ledger ===")
    for category, bits in session.ledger.as_dict().items():
        if bits:
            print(f"  {category:10s}: {bits / 1000:8.0f} kbit")
    print()

    trace = data_tap.to_trace_loss()
    print(
        "exported replayable loss trace: "
        f"{len(trace.trace)} outcomes, mean {trace.mean_loss_rate:.3f} "
        "(feed it to another run via loss_model=TraceLoss(...))"
    )


if __name__ == "__main__":
    main()
