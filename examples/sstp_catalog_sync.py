#!/usr/bin/env python3
"""SSTP keeping a product catalog in sync across heterogeneous clients.

Exercises the Section 6 machinery end-to-end:

* a hierarchical namespace (``catalog/<department>/<item>``) with
  per-node digests and recursive-descent repair;
* application metadata tags and a PDA-style receiver whose interest
  filter skips the image-heavy branch (the paper's PDA browser);
* the profile-driven allocator adapting the hot/cold split as the
  measured loss rate (from receiver reports) changes mid-run;
* the rate-limit notification when the publisher offers more updates
  than the hot queue can carry.

Run::

    python examples/sstp_catalog_sync.py
"""

from repro.des.rng import RngStreams
from repro.sstp import ReliabilityLevel, SstpSession
from repro.sstp.congestion import SteppedCongestionManager

DEPARTMENTS = ["books", "garden", "toys"]


def main() -> None:
    # The "network" halves its available rate at t=150 (CM input).
    congestion = SteppedCongestionManager([(0.0, 60.0), (150.0, 30.0)])
    rate_limits = []
    session = SstpSession(
        n_receivers=3,
        loss_rate=0.2,
        reliability=ReliabilityLevel.RELIABLE,
        congestion=congestion,
        adapt_interval=10.0,
        on_rate_limit=rate_limits.append,
        seed=10,
        interest_filters={
            # rcv-2 is a PDA: no interest in image blobs.
            "rcv-2": lambda path, meta: meta.get("media") != "image"
        },
    )

    applied = {f"rcv-{i}": 0 for i in range(3)}
    for receiver_id in applied:
        session.set_receiver_callbacks(
            receiver_id,
            on_update=lambda path, value, rid=receiver_id: applied.__setitem__(
                rid, applied[rid] + 1
            ),
        )

    rng = RngStreams(seed=10)["catalog"]

    def publisher(env):
        index = 0
        while True:
            yield env.timeout(rng.expovariate(3.0))
            department = rng.choice(DEPARTMENTS)
            media = "image" if rng.random() < 0.3 else "text"
            session.publish(
                f"catalog/{department}/item{index % 50:03d}",
                {"price": round(rng.uniform(1, 100), 2)},
                metadata={"media": media},
            )
            index += 1

    session.env.process(publisher(session.env))
    result = session.run(horizon=300.0, warmup=50.0)

    print("=== SSTP catalog sync ===")
    print(f"overall consistency        : {result.consistency:.3f}")
    for receiver_id, value in sorted(result.per_receiver_consistency.items()):
        filtered = " (image branch filtered)" if receiver_id == "rcv-2" else ""
        print(f"  {receiver_id:7s} consistency      : {value:.3f}{filtered}")
    print(f"application callbacks      : {applied}")
    print(f"mean receive latency       : {result.mean_receive_latency:.3f} s")
    print(f"estimated loss (reports)   : {result.estimated_loss:.2f}")
    print(f"ADU / summary / digest pkts: "
          f"{result.adu_packets} / {result.summary_packets} / {result.digest_packets}")
    print(f"final allocation           : data={session.allocation.data_kbps:.1f} kbps, "
          f"hot={session.allocation.hot_kbps:.1f} kbps, "
          f"cold={session.allocation.cold_kbps:.1f} kbps")
    if rate_limits:
        print(f"rate-limit notifications   : {len(rate_limits)} "
              f"(max sustainable ~{rate_limits[-1]:.1f} kbps)")
    else:
        print("rate-limit notifications   : none")


if __name__ == "__main__":
    main()
