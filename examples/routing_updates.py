#!/usr/bin/env python3
"""Route advertisements with flapping links, announce/listen style.

Routing protocols (RIP, early BGP) are classic soft-state systems: each
router periodically re-advertises its table, neighbours time entries
out, and a crashed peer's routes age away without explicit teardown.
This example measures how staleness (how often a receiver's next-hop
disagrees with the publisher's) depends on the refresh bandwidth, and
what a pathological flapping route does to everyone else.

Run::

    python examples/routing_updates.py
"""

from repro.protocols import TwoQueueSession
from repro.workloads import RoutingUpdateWorkload


def run_table(data_kbps: float, flappy_fraction: float, seed: int = 8):
    workload = RoutingUpdateWorkload(
        n_routes=80,
        flap_interval_mean=40.0,
        flappy_fraction=flappy_fraction,
        flappy_speedup=30.0,
    )
    session = TwoQueueSession(
        hot_share=0.5,
        data_kbps=data_kbps,
        loss_rate=0.1,
        workload=workload,
        seed=seed,
    )
    return session.run(horizon=400.0, warmup=80.0)


def main() -> None:
    print("=== route table freshness vs refresh bandwidth ===")
    print(f"{'kbps':>6} | {'consistency':>11} | {'update latency':>14}")
    for kbps in [5.0, 10.0, 20.0, 40.0]:
        result = run_table(kbps, flappy_fraction=0.0)
        print(
            f"{kbps:6.0f} | {result.consistency:11.3f} | "
            f"{result.mean_receive_latency:12.2f} s"
        )
    print()
    print("=== impact of route flapping (20 kbps refresh budget) ===")
    print(f"{'flappy routes':>13} | {'consistency':>11}")
    for flappy in [0.0, 0.1, 0.3]:
        result = run_table(20.0, flappy_fraction=flappy)
        print(f"{flappy:13.0%} | {result.consistency:11.3f}")
    print()
    print(
        "Flapping routes consume hot-queue bandwidth with every change,\n"
        "crowding out refreshes of stable routes — the soft-state version\n"
        "of BGP's route-flap damping problem."
    )


if __name__ == "__main__":
    main()
