#!/usr/bin/env python3
"""Quickstart: the soft-state model in five minutes.

Walks through the library bottom-up:

1. the Section 3 closed forms (what consistency does open-loop
   announce/listen achieve, and how much bandwidth does it waste?);
2. a discrete-event simulation of the same model (they agree);
3. the protocol ladder at equal bandwidth — open loop, two queues,
   two queues + NACK feedback;
4. an SSTP session with hierarchical namespace repair.

Run::

    python examples/quickstart.py
"""

from repro.analysis import OpenLoopModel
from repro.protocols import (
    FeedbackSession,
    OpenLoopSession,
    QueueModelSim,
    TwoQueueSession,
)
from repro.sstp import ReliabilityLevel, SstpSession


def step1_closed_forms() -> None:
    print("=== 1. Closed forms (Section 3) ===")
    model = OpenLoopModel(
        update_rate=20.0, channel_rate=128.0, p_loss=0.05, p_death=0.2
    )
    solution = model.solve()
    print(f"  utilization rho        : {solution.utilization:.3f}")
    print(f"  expected consistency   : {solution.expected_consistency:.3f}")
    print(f"  redundant bandwidth    : {solution.redundant_fraction:.1%}")
    print(f"  mean receive latency   : {solution.mean_receive_latency*1000:.0f} ms")
    print()


def step2_simulation_agrees() -> None:
    print("=== 2. Simulation of the same queueing model ===")
    simulated = QueueModelSim(
        update_rate=20.0,
        channel_rate=128.0,
        p_loss=0.05,
        p_death=0.2,
        seed=1,
    ).run(horizon=2000.0, warmup=200.0)
    analytic = OpenLoopModel(20.0, 128.0, 0.05, 0.2).solve()
    print(
        f"  consistency: simulated {simulated.consistency:.3f} "
        f"vs analytic {analytic.expected_consistency:.3f}"
    )
    print(
        f"  waste:       simulated {simulated.redundant_fraction:.3f} "
        f"vs analytic {analytic.redundant_fraction:.3f}"
    )
    print()


def step3_protocol_ladder() -> None:
    print("=== 3. Protocol ladder at 45 kbps total, 30% loss ===")
    shared = dict(update_rate=15.0, lifetime_mean=20.0, seed=2)
    run = dict(horizon=400.0, warmup=80.0)

    open_loop = OpenLoopSession(data_kbps=45.0, loss_rate=0.3, **shared).run(
        **run
    )
    two_queue = TwoQueueSession(
        hot_share=0.5, data_kbps=45.0, loss_rate=0.3, **shared
    ).run(**run)
    feedback = FeedbackSession(
        hot_share=0.7,
        data_kbps=40.0,
        feedback_kbps=5.0,
        loss_rate=0.3,
        **shared,
    ).run(**run)
    for name, result in [
        ("open loop (one FIFO)", open_loop),
        ("two queues (hot/cold)", two_queue),
        ("two queues + NACKs", feedback),
    ]:
        print(
            f"  {name:24s} consistency={result.consistency:.3f}  "
            f"T_recv={result.mean_receive_latency:.2f}s  "
            f"redundant={result.redundant_fraction:.1%}"
        )
    print()


def step4_sstp() -> None:
    print("=== 4. SSTP with hierarchical namespace repair ===")
    session = SstpSession(
        total_kbps=50.0,
        n_receivers=2,
        loss_rate=0.25,
        reliability=ReliabilityLevel.RELIABLE,
        seed=3,
        adapt_interval=None,
    )
    for index in range(40):
        session.publish(f"catalog/shard{index % 4}/item{index}", {"v": index})
    result = session.run(horizon=120.0, warmup=20.0)
    print(f"  consistency            : {result.consistency:.3f}")
    print(f"  ADU transmissions      : {result.adu_packets}")
    print(f"  summary announcements  : {result.summary_packets}")
    print(f"  descent digests/queries: {result.digest_packets}/{result.query_packets}")
    print(f"  leaf repair requests   : {result.repair_requests}")
    print(f"  estimated loss (EWMA)  : {result.estimated_loss:.2f}")


def main() -> None:
    step1_closed_forms()
    step2_simulation_agrees()
    step3_protocol_ladder()
    step4_sstp()


if __name__ == "__main__":
    main()
