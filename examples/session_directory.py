#!/usr/bin/env python3
"""An MBone-style session directory (sdr/SAP) over announce/listen.

The paper's flagship application: conference announcements disseminated
to a multicast group by periodic announcement, surviving receiver
crashes and network partitions without any explicit recovery protocol.

This example runs a session-directory workload over the two-queue
protocol and demonstrates the robustness story end-to-end:

* a receiver "crashes" (loses its whole table) mid-run and recovers
  purely from the ongoing announcement stream;
* a network partition (100% loss) isolates the receiver; its entries
  expire, and when the partition heals the directory converges again —
  "all a consequence of normal protocol operation".

Run::

    python examples/session_directory.py
"""

from repro.net import BernoulliLoss
from repro.protocols import TwoQueueSession
from repro.workloads import SessionDirectoryWorkload


class PartitionableLoss(BernoulliLoss):
    """A Bernoulli channel with a switchable total-blackout mode."""

    def __init__(self, rate, rng=None):
        super().__init__(rate, rng)
        self.partitioned = False

    def is_lost(self):
        if self.partitioned:
            return True
        return super().is_lost()


def main() -> None:
    workload = SessionDirectoryWorkload(
        session_rate=1.0 / 4.0,  # a new conference every ~4 s (compressed)
        session_duration_mean=120.0,
        edit_interval_mean=30.0,
    )
    loss = PartitionableLoss(0.05)
    session = TwoQueueSession(
        hot_share=0.3,
        data_kbps=20.0,
        loss_model=loss,
        workload=workload,
        seed=4,
        record_series=True,
    )

    log = []

    def director(env):
        # Phase 1: normal operation.
        yield env.timeout(150.0)
        log.append((env.now, "receiver crash: local table wiped"))
        session.receiver.table.clear()
        session._observe(env.now)

        # Phase 2: recovery from announcements alone.
        yield env.timeout(100.0)
        log.append((env.now, "network partition begins (100% loss)"))
        loss.partitioned = True

        yield env.timeout(60.0)
        log.append((env.now, "partition heals"))
        loss.partitioned = False

    session.env.process(director(session.env))
    result = session.run(horizon=500.0, warmup=50.0)

    print("=== session directory over announce/listen ===")
    print(f"directory entries live at end : {result.live_records}")
    print(f"average consistency           : {result.consistency:.3f}")
    print(f"mean time to learn a session  : {result.mean_receive_latency:.2f} s")
    print()
    print("events:")
    for when, what in log:
        print(f"  t={when:6.1f}s  {what}")
    print()
    print("running consistency (recovers after each failure):")
    series = result.consistency_series
    for t, value in series[:: max(len(series) // 14, 1)]:
        bar = "#" * int(value * 40)
        print(f"  t={t:6.1f}s  {value:.3f}  {bar}")


if __name__ == "__main__":
    main()
