"""Code fingerprints: hash the transitive module sources a cell imports.

A cached cell result is only valid while the code that produced it is
unchanged.  Rather than invalidating on *any* repo edit (which would
make the cache useless while iterating on plots or docs) or trusting a
manually bumped version (which silently serves stale results), the
cache keys each cell on a **code fingerprint**: the SHA-256 over the
source bytes of the cell function's module plus every ``repro.*``
module it transitively imports.

The import graph is discovered *statically* — each module's source is
parsed with :mod:`ast` and every ``import``/``from ... import`` of an
in-scope module is followed, including imports inside function bodies
(the repo's lazy-import idiom).  Static discovery keeps fingerprinting
independent of import side effects and lets the closure be computed
without executing anything.

Conservatism cuts the safe way: a module that is imported but unused
still invalidates (spurious recompute, never a stale hit), while
modules outside the traced prefixes (stdlib, numpy) are pinned by the
cache schema version instead of being hashed.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "clear_fingerprint_cache",
    "code_fingerprint",
    "imported_modules",
    "imported_modules_from_tree",
    "module_closure",
]

#: Module-name prefixes whose sources participate in fingerprints.
DEFAULT_PREFIXES: Tuple[str, ...] = ("repro",)

#: Per-process memo: (module, prefixes) -> fingerprint hex digest.
_fingerprints: Dict[Tuple[str, Tuple[str, ...]], str] = {}


def clear_fingerprint_cache() -> None:
    """Forget computed fingerprints (tests that rewrite sources)."""
    _fingerprints.clear()


def _in_scope(name: str, prefixes: Sequence[str]) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".") for prefix in prefixes
    )


def _source_path(module: str) -> Optional[str]:
    """The module's source file, or ``None`` (builtins, namespaces)."""
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError, AttributeError):
        return None
    if spec is None or spec.origin in (None, "built-in", "frozen"):
        return None
    return spec.origin if spec.origin.endswith(".py") else None


def _imported_modules(
    source: bytes, module: str, is_package: bool
) -> Iterator[str]:
    """Every module name ``module``'s source imports, relative resolved."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return
    yield from imported_modules_from_tree(tree, module, is_package)


def imported_modules_from_tree(
    tree: ast.Module, module: str, is_package: bool
) -> Iterator[str]:
    """The import walk of :func:`imported_modules` over a parsed tree.

    Split out so callers that already hold a tree (the deep lint pass,
    which parses through a content-hash AST cache) reuse this exact
    resolution logic without re-parsing.
    """
    # The package that relative imports resolve against.
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if prefix:
                yield prefix
            # ``from pkg import name`` may bind the submodule pkg.name.
            for alias in node.names:
                if prefix and alias.name != "*":
                    yield f"{prefix}.{alias.name}"


#: Public name for the AST import walker.  The deep lint pass
#: (``repro.lint.deep``) builds its module-dependency graph through this
#: exact function so "what the cache fingerprints" and "what the
#: analyzer considers program scope" can never drift apart.
imported_modules = _imported_modules


def module_closure(
    root: str, prefixes: Sequence[str] = DEFAULT_PREFIXES
) -> Dict[str, str]:
    """Map each transitively imported in-scope module to its source path.

    The ``root`` module itself is always included when it has a source
    file, even if it is outside ``prefixes`` (a test module defining a
    cell function still fingerprints its own source).
    """
    closure: Dict[str, str] = {}
    pending = [root]
    seen = {root}
    while pending:
        name = pending.pop()
        path = _source_path(name)
        if path is None:
            continue
        closure[name] = path
        try:
            with open(path, "rb") as handle:
                source = handle.read()
        except OSError:
            continue
        is_package = path.endswith("__init__.py")
        for imported in _imported_modules(source, name, is_package):
            if imported in seen or not _in_scope(imported, prefixes):
                continue
            seen.add(imported)
            pending.append(imported)
    return closure


def code_fingerprint(
    module: str, prefixes: Sequence[str] = DEFAULT_PREFIXES
) -> str:
    """SHA-256 over the sorted transitive source closure of ``module``.

    Memoized per process: the closure of an experiment module is stable
    for the lifetime of a run, and recomputing it per cell would cost
    more than the cells themselves for analytic grids.
    """
    memo_key = (module, tuple(prefixes))
    cached = _fingerprints.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    closure = module_closure(module, prefixes)
    if not closure:
        digest.update(f"no-source:{module}".encode())
    for name in sorted(closure):
        digest.update(name.encode())
        digest.update(b"\0")
        try:
            with open(closure[name], "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprints[memo_key] = fingerprint
    return fingerprint
