"""In-process memoization for the pure analytic solvers.

Experiment grids re-derive the same closed forms thousands of times —
every Figure 3 curve evaluates :func:`~repro.analysis.openloop.
consistent_fraction` at each sweep point, and simulation cells solve
the same M/M/1 point per cell.  These solves are pure (parameters in,
immutable value out), so a per-process table makes repeats O(1).

This layer is deliberately distinct from the content-addressed store:

* it lives **inside** a process (workers inherit an empty table on
  fork), so it never touches disk and needs no invalidation — a code
  edit means a new process;
* its hit counts are **process-local** (:func:`memo_stats`), *not*
  published to the per-cell metric registry: which cell warms the
  table depends on how cells land on workers, and per-cell metrics
  must stay byte-identical across ``--jobs`` values.

Only decorate functions whose return values are immutable (floats,
frozen dataclasses): hits return the *same object*, so a mutable
return value would let one caller corrupt every later caller.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Tuple, TypeVar

__all__ = ["clear_memos", "memo_stats", "memoize"]

F = TypeVar("F", bound=Callable[..., Any])

#: Default per-function entry bound; oldest-inserted entries are evicted.
DEFAULT_MAXSIZE = 65536

_tables: List[Tuple[str, Dict[Any, Any]]] = []
_hits = 0
_misses = 0


def memoize(maxsize: int = DEFAULT_MAXSIZE) -> Callable[[F], F]:
    """Memoize a pure function of hashable arguments.

    Eviction is oldest-inserted-first once ``maxsize`` is reached —
    grids sweep parameters monotonically, so insertion age tracks
    usefulness closely enough without per-hit bookkeeping.
    """
    if maxsize <= 0:
        raise ValueError(f"maxsize must be positive, got {maxsize}")

    def decorate(fn: F) -> F:
        table: Dict[Any, Any] = {}
        _tables.append((f"{fn.__module__}.{fn.__qualname__}", table))
        sentinel = object()

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            global _hits, _misses
            key = (args, tuple(sorted(kwargs.items()))) if kwargs else args
            value = table.get(key, sentinel)
            if value is not sentinel:
                _hits += 1
                return value
            _misses += 1
            value = fn(*args, **kwargs)
            if len(table) >= maxsize:
                table.pop(next(iter(table)))
            table[key] = value
            return value

        wrapper.__wrapped__ = fn
        return wrapper  # type: ignore[return-value]

    return decorate


def memo_stats() -> Dict[str, Any]:
    """Process-local accounting: aggregate hits/misses and table sizes."""
    return {
        "hits": _hits,
        "misses": _misses,
        "tables": {name: len(table) for name, table in sorted(_tables)},
    }


def clear_memos() -> None:
    """Empty every memo table and zero the counters (test isolation)."""
    global _hits, _misses
    for _, table in _tables:
        table.clear()
    _hits = 0
    _misses = 0
