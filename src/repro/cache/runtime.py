"""Ambient cache activation, mirroring the observability runtime.

``map_cells`` is called from inside every experiment's ``run``; rather
than threading a cache handle through 15 experiment signatures, the
active cache lives in one module-level slot that ``run_experiment``
installs around the run (the same pattern as the ambient tracer and
registry in :mod:`repro.obs.runtime`).  No cache installed — the
default — costs one ``None`` read per ``map_cells`` call.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

from repro.cache.store import ResultCache

__all__ = ["active_cache", "caching", "resolve_cache"]

_active: Optional[ResultCache] = None


def active_cache() -> Optional[ResultCache]:
    """The installed cache, or ``None`` (the zero-cost common case)."""
    return _active


@contextlib.contextmanager
def caching(cache: Optional[ResultCache]) -> Iterator[Optional[ResultCache]]:
    """Install ``cache`` (or explicitly none) for a ``with`` block."""
    global _active
    previous = _active
    _active = cache
    try:
        yield cache
    finally:
        _active = previous


def resolve_cache(
    enabled: Optional[bool] = None, root: Optional[str] = None
) -> Optional[ResultCache]:
    """Turn a tri-state ``--cache/--no-cache`` flag into a cache (or not).

    ``True`` and ``False`` are explicit; ``None`` defers to the
    ``REPRO_CACHE`` environment variable (off unless set truthy), so
    scripted pipelines can opt whole invocations in without touching
    every command line.
    """
    if enabled is None:
        enabled = os.environ.get("REPRO_CACHE", "") not in ("", "0")
    if not enabled:
        return None
    return ResultCache(root)
