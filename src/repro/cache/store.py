"""The content-addressed result store under ``results/.cache/``.

Layout: one pickled entry per cell, at ``<root>/<key[:2]>/<key>.pkl``
(the two-character fan-out keeps directory listings short at tens of
thousands of entries).  Entries are immutable — a key never maps to a
different payload, so concurrent runs can share a store: writes go
through a same-directory temp file and an atomic ``os.replace``, and
readers either see a complete entry or none.

The store is strictly **best-effort**.  Every failure mode — missing
file, truncated pickle, schema drift, key mismatch, a full disk on
write — degrades to "recompute the cell", never to an error and never
to a stale result.  That property is what lets ``map_cells`` consult
it unconditionally on the hot path.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cache.fingerprint import code_fingerprint
from repro.cache.keys import CACHE_SCHEMA_VERSION, cell_key

__all__ = ["CacheEntry", "CacheStats", "ResultCache", "default_cache_dir"]

#: Default store location, overridable via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


@dataclass(frozen=True)
class CacheEntry:
    """One cell's cached payload: the result plus replayable cell meta."""

    result: Any
    events: int = 0
    rng_streams: List[str] = field(default_factory=list)
    registry: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time store accounting for ``repro cache stats``."""

    root: str
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed cell results, keyed by :func:`cell_key`."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()

    # -- keys ---------------------------------------------------------------
    def key_for(self, fn: Callable[..., Any], kwargs: dict) -> str:
        """The content address of ``fn(**kwargs)`` under current sources."""
        return cell_key(fn, kwargs, code_fingerprint(fn.__module__))

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # -- read ---------------------------------------------------------------
    def load(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key``, or ``None`` (miss, corrupt, stale)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Missing, truncated, or unreadable: silently recompute.
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("key") != key
        ):
            return None
        meta = payload.get("meta") or {}
        try:
            entry = CacheEntry(
                result=payload["result"],
                events=int(meta.get("events", 0)),
                rng_streams=list(meta.get("rng_streams", [])),
                registry=dict(meta.get("registry", {})),
            )
        except Exception:
            return None
        self._touch(path)
        return entry

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh the entry's mtime so ``gc`` evicts least-recently-used."""
        try:
            os.utime(path)
        except OSError:
            pass

    # -- write --------------------------------------------------------------
    def store(
        self,
        key: str,
        fn: Callable[..., Any],
        kwargs: dict,
        result: Any,
        events: int = 0,
        rng_streams: Optional[List[str]] = None,
        registry: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Persist one computed cell; returns False on any failure."""
        path = self.path_for(key)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "cell": {
                "fn": f"{fn.__module__}.{fn.__qualname__}",
                "kwargs": repr(kwargs),
            },
            "result": result,
            "meta": {
                "events": events,
                "rng_streams": list(rng_streams or []),
                "registry": dict(registry or {}),
            },
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    # -- maintenance --------------------------------------------------------
    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return paths
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            paths.extend(
                os.path.join(shard_dir, name)
                for name in names
                if name.endswith(".pkl")
            )
        return paths

    def stats(self) -> CacheStats:
        total = 0
        paths = self._entry_paths()
        for path in paths:
            try:
                total += os.stat(path).st_size
            except OSError:
                pass
        return CacheStats(root=self.root, entries=len(paths), total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self, max_age_days: float = 30.0) -> int:
        """Evict entries untouched for ``max_age_days``; returns count.

        Recency is the entry file's mtime, refreshed on every hit, so
        this is least-recently-*used* eviction, not write-age eviction.
        """
        if max_age_days < 0:
            raise ValueError(
                f"max_age_days must be non-negative, got {max_age_days}"
            )
        # Host wall clock on purpose: gc reasons about file ages on the
        # host filesystem, never about simulation time.
        cutoff = time.time() - max_age_days * 86400.0  # repro-lint: disable=RPR002
        removed = 0
        for path in self._entry_paths():
            try:
                if os.stat(path).st_mtime < cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed
