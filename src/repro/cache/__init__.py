"""Content-addressed result caching for the experiment pipeline.

Two layers, both transparent to experiment code (see docs/CACHE.md):

* the **result store** (:class:`ResultCache`): each runner cell's
  result persists under ``results/.cache/`` keyed by the cell function,
  its canonicalized kwargs, the cache schema version, and a fingerprint
  of every ``repro.*`` source the cell transitively imports — so
  ``repro run-all --cache`` becomes incremental: unchanged cells are
  lookups, edited code recomputes exactly what it invalidates;
* the **solver memoizer** (:func:`memoize`): per-process O(1) repeats
  for the pure analytic solves (Jackson / M/M/1 / open-loop /
  two-queue) inside one grid.

Merged experiment output is byte-identical whether cells were computed
or served from cache, at any ``--jobs`` value; corrupt or stale entries
silently fall back to recompute.
"""

from repro.cache.fingerprint import (
    clear_fingerprint_cache,
    code_fingerprint,
    module_closure,
)
from repro.cache.keys import CACHE_SCHEMA_VERSION, canonicalize, cell_key
from repro.cache.memo import clear_memos, memo_stats, memoize
from repro.cache.runtime import active_cache, caching, resolve_cache
from repro.cache.store import (
    CacheEntry,
    CacheStats,
    ResultCache,
    default_cache_dir,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "active_cache",
    "caching",
    "canonicalize",
    "cell_key",
    "clear_fingerprint_cache",
    "clear_memos",
    "code_fingerprint",
    "default_cache_dir",
    "memo_stats",
    "memoize",
    "module_closure",
    "resolve_cache",
]
