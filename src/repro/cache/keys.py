"""Cache-key derivation: one content address per experiment cell.

A cell is a module-level function plus keyword arguments; by the
runner's determinism contract (PR 1) its result is a pure function of
those kwargs and the code that interprets them.  The key therefore
hashes exactly four things:

* the **cell identity** — ``fn.__module__`` + ``fn.__qualname__``
  (this subsumes the experiment id: every experiment's cells live in
  its own module);
* the **canonicalized kwargs** — a stable JSON encoding where dict
  order is irrelevant and tuples are tagged so they never collide with
  lists (``(1, 2)`` and ``[1, 2]`` are different cells);
* the **cache schema version** — bumping :data:`CACHE_SCHEMA_VERSION`
  orphans every existing entry at once;
* the **code fingerprint** — see :mod:`repro.cache.fingerprint`;
* the **environment pin** — the numpy version (or ``None`` when numpy
  is absent).  The fluid backend and the batched fan-out kernel draw
  through numpy's bit generators, whose stream layouts numpy only
  guarantees within a version, so an upgrade must orphan vectorized
  results rather than replay them.

Seeds need no special slot: simulation cells carry ``seed`` in their
kwargs, and analytic cells are seed-independent by construction.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Optional

__all__ = ["CACHE_SCHEMA_VERSION", "canonicalize", "cell_key"]

#: Bump to invalidate every cache entry (stored-payload layout changes).
CACHE_SCHEMA_VERSION = 1


def _numpy_version() -> Optional[str]:
    """The installed numpy version, or ``None`` without numpy.

    Module-level so tests can monkeypatch a simulated upgrade.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - image always ships numpy
        return None
    return numpy.__version__


def canonicalize(value: Any) -> Any:
    """A JSON-stable structure with the same equality as ``value``.

    Dicts sort by stringified key, tuples are tagged to stay distinct
    from lists, and objects exposing ``__cache_key__()`` canonicalize
    through it (e.g. fault schedules, whose repr omits most knobs —
    keying those on repr alone collided cells that differed only in a
    fault parameter).  Anything else falls back to ``repr`` — which
    keys correctly for value-like objects and, for objects whose repr
    includes identity (memory addresses), degrades to a permanent
    cache miss rather than a false hit.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list,)):
        return [canonicalize(item) for item in value]
    if isinstance(value, tuple):
        return {"__tuple__": [canonicalize(item) for item in value]}
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (str(key), canonicalize(item)) for key, item in value.items()
            )
        }
    key_fn = getattr(type(value), "__cache_key__", None)
    if key_fn is not None:
        return {
            "__key__": canonicalize(key_fn(value)),
            "__type__": type(value).__name__,
        }
    return {"__repr__": repr(value)}


def cell_key(fn: Callable[..., Any], kwargs: dict, fingerprint: str) -> str:
    """The content address (SHA-256 hex) of one ``fn(**kwargs)`` cell."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "fn": f"{fn.__module__}.{fn.__qualname__}",
            "kwargs": canonicalize(kwargs),
            "code": fingerprint,
            "env": {"numpy": _numpy_version()},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
