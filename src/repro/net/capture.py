"""Packet capture and trace analysis.

A :class:`PacketCapture` attaches to any :class:`~repro.net.Channel` or
:class:`~repro.net.MulticastChannel` and records one row per serviced
packet: time, kind, sequence number, size, and loss outcome.  The
capture supports windowed rate/loss series (what a monitoring tool
would plot), loss-run statistics (burstiness evidence), and export of
the loss pattern as a replayable :class:`~repro.net.TraceLoss`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.net.channel import Channel, MulticastChannel
from repro.net.loss import TraceLoss
from repro.net.packet import Packet


@dataclass(frozen=True)
class CaptureRecord:
    """One serviced packet."""

    time: float
    kind: str
    seq: Optional[int]
    size_bits: int
    lost: bool


class PacketCapture:
    """Records serviced packets from a channel for offline analysis."""

    def __init__(self, max_records: int = 1_000_000) -> None:
        if max_records <= 0:
            raise ValueError(
                f"max_records must be positive, got {max_records}"
            )
        self.max_records = max_records
        self.records: List[CaptureRecord] = []
        self.dropped_records = 0
        self._env = None

    # -- attachment ----------------------------------------------------------
    def attach(self, channel: Channel) -> "PacketCapture":
        """Tap a unicast channel (records each service + loss outcome)."""
        self._env = channel.env
        channel.on_serviced(self._on_unicast)
        return self

    def attach_multicast(
        self, channel: MulticastChannel, receiver_id: Any
    ) -> "PacketCapture":
        """Tap one receiver's view of a multicast channel."""

        self._env = channel.env

        def hook(packet: Packet, outcomes: Dict[Any, bool]) -> None:
            if receiver_id in outcomes:
                self._record(packet, outcomes[receiver_id])

        channel.on_serviced(hook)
        return self

    def _on_unicast(self, packet: Packet, lost: bool) -> None:
        self._record(packet, lost)

    def _record(self, packet: Packet, lost: bool) -> None:
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        # Stamp the *service* time (when the packet hit the wire), not
        # the enqueue time: rate series must reflect the channel clock.
        when = self._env.now if self._env is not None else packet.created_at
        self.records.append(
            CaptureRecord(
                time=when,
                kind=packet.kind,
                seq=packet.seq,
                size_bits=packet.size_bits,
                lost=lost,
            )
        )

    # -- aggregate statistics ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def loss_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.lost for r in self.records) / len(self.records)

    def kinds(self) -> Dict[str, int]:
        """Packet count per kind (announce/summary/nack/...)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def bits_by_kind(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.kind] = (
                totals.get(record.kind, 0) + record.size_bits
            )
        return totals

    def rate_series(
        self, window: float, kind: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(window start, kbps) series over the capture."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not self.records:
            return []
        start = self.records[0].time
        buckets: Dict[int, float] = {}
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            index = int((record.time - start) // window)
            buckets[index] = buckets.get(index, 0.0) + record.size_bits
        return [
            (start + index * window, bits / window / 1000.0)
            for index, bits in sorted(buckets.items())
        ]

    def loss_series(self, window: float) -> List[Tuple[float, float]]:
        """(window start, loss fraction) series."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not self.records:
            return []
        start = self.records[0].time
        sent: Dict[int, int] = {}
        lost: Dict[int, int] = {}
        for record in self.records:
            index = int((record.time - start) // window)
            sent[index] = sent.get(index, 0) + 1
            if record.lost:
                lost[index] = lost.get(index, 0) + 1
        return [
            (start + index * window, lost.get(index, 0) / count)
            for index, count in sorted(sent.items())
        ]

    def loss_runs(self) -> List[int]:
        """Lengths of consecutive-loss runs (burstiness evidence)."""
        runs: List[int] = []
        current = 0
        for record in self.records:
            if record.lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return runs

    def mean_burst_length(self) -> float:
        runs = self.loss_runs()
        if not runs:
            return 0.0
        return sum(runs) / len(runs)

    def to_trace_loss(self) -> TraceLoss:
        """Replay this capture's loss pattern on another channel."""
        if not self.records:
            raise ValueError("empty capture has no loss pattern")
        return TraceLoss([record.lost for record in self.records])

    def as_rows(self) -> List[Dict[str, Any]]:
        return [
            {
                "time": record.time,
                "kind": record.kind,
                "seq": record.seq,
                "size_bits": record.size_bits,
                "lost": record.lost,
            }
            for record in self.records
        ]
