"""Network substrate: packets, loss models, links, and channels.

The paper models the network as a lossy FIFO server with a given service
rate (the "session bandwidth") and an average per-transmission loss
probability.  This package provides that channel plus richer building
blocks (propagation-delay links, bursty Gilbert-Elliott loss, multicast
fan-out with independent per-receiver loss, and a duplex path for
feedback traffic) so protocol variants and SSTP can be simulated
end-to-end.
"""

from repro.net.packet import Packet, PACKET_BITS, kbps_to_pps, pps_to_kbps
from repro.net.loss import (
    BernoulliLoss,
    CombinedLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    TotalLoss,
    TraceLoss,
    rng_sources,
)
from repro.net.link import Link
from repro.net.channel import (
    Channel,
    DuplexPath,
    MulticastChannel,
    fanout_mode,
    set_fanout_mode,
)
from repro.net.capture import CaptureRecord, PacketCapture

__all__ = [
    "BernoulliLoss",
    "CaptureRecord",
    "Channel",
    "CombinedLoss",
    "DeterministicLoss",
    "DuplexPath",
    "GilbertElliottLoss",
    "Link",
    "LossModel",
    "MulticastChannel",
    "NoLoss",
    "PACKET_BITS",
    "Packet",
    "PacketCapture",
    "TotalLoss",
    "TraceLoss",
    "fanout_mode",
    "kbps_to_pps",
    "pps_to_kbps",
    "rng_sources",
    "set_fanout_mode",
]
