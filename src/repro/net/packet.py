"""Packet representation and unit conversions.

The paper quotes bandwidths in kbps without fixing a packet size; all of
its results depend only on *ratios* of rates.  We fix one announcement
packet at :data:`PACKET_BITS` = 1000 bits so that "45 kbps" maps to
45 packets/second, keeping every ratio in the paper intact while letting
the simulator count in whole packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Default announcement packet size in bits (1 kbit): kbps == packets/s.
PACKET_BITS = 1000


def kbps_to_pps(kbps: float, packet_bits: int = PACKET_BITS) -> float:
    """Convert a bandwidth in kbps to packets per second."""
    if kbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {kbps}")
    return kbps * 1000.0 / packet_bits


def pps_to_kbps(pps: float, packet_bits: int = PACKET_BITS) -> float:
    """Convert packets per second to a bandwidth in kbps."""
    if pps < 0:
        raise ValueError(f"rate must be non-negative, got {pps}")
    return pps * packet_bits / 1000.0


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One transmission unit (an ADU announcement, a NACK, a digest, ...).

    Slotted: multicast fan-out builds one clone per surviving receiver,
    so instances carry no ``__dict__`` and accept no ad-hoc attributes.

    Attributes
    ----------
    kind:
        Free-form type tag, e.g. ``"announce"``, ``"nack"``, ``"summary"``.
    key:
        The soft-state key this packet refers to, if any.
    payload:
        Arbitrary application content (the record value, a digest list, ...).
    seq:
        Sender-assigned sequence number, used by receivers for loss
        detection (ALF ADUs; no ordering is enforced on delivery).
    created_at:
        Simulation time the packet was handed to the channel.
    size_bits:
        Size on the wire; defaults to :data:`PACKET_BITS`.
    """

    kind: str = "announce"
    key: Optional[Any] = None
    payload: Any = None
    seq: Optional[int] = None
    created_at: float = 0.0
    size_bits: int = PACKET_BITS
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"size_bits must be positive, got {self.size_bits}")

    def copy_for(self, receiver: Any) -> "Packet":
        """Shallow per-receiver copy used by multicast fan-out."""
        return Packet(
            kind=self.kind,
            key=self.key,
            payload=self.payload,
            seq=self.seq,
            created_at=self.created_at,
            size_bits=self.size_bits,
        )

    def _copy_fast(self) -> "Packet":
        """Per-receiver copy without dataclass-constructor overhead.

        Behaviourally identical to :meth:`copy_for` — same field values,
        one uid consumed from the same counter — minus the ``__init__``/
        ``__post_init__`` churn.  The batched multicast fan-out calls
        this once per surviving receiver, so it is a hot path.
        """
        clone = object.__new__(Packet)
        clone.kind = self.kind
        clone.key = self.key
        clone.payload = self.payload
        clone.seq = self.seq
        clone.created_at = self.created_at
        clone.size_bits = self.size_bits
        clone.uid = next(_packet_ids)
        return clone
