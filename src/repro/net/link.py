"""A point-to-point link with a transmission rate and propagation delay.

The link serializes packets at ``rate_kbps`` (store-and-forward, FIFO)
and delivers each one ``delay`` seconds after its last bit leaves.
Unlike :class:`~repro.net.channel.Channel`, a link never drops packets;
compose it with a loss model via a channel when loss is wanted.
"""

from __future__ import annotations

from typing import Callable

from repro.des import Environment, Store
from repro.net.packet import Packet


class Link:
    """FIFO serializing link.

    Parameters
    ----------
    env:
        Simulation environment.
    rate_kbps:
        Transmission rate.  ``inf`` models a link that only adds
        propagation delay.
    delay:
        One-way propagation delay in seconds.
    """

    def __init__(
        self,
        env: Environment,
        rate_kbps: float = float("inf"),
        delay: float = 0.0,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate_kbps must be positive, got {rate_kbps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.env = env
        self.rate_kbps = rate_kbps
        self.delay = delay
        self._queue: Store = Store(env)
        self._sinks: list[Callable[[Packet], None]] = []
        self.packets_in = 0
        self.packets_out = 0
        env.process(self._pump())

    def subscribe(self, sink: Callable[[Packet], None]) -> None:
        """Register a delivery callback (may be called multiple times)."""
        self._sinks.append(sink)

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission (never blocks the caller)."""
        packet.created_at = self.env.now
        self.packets_in += 1
        self._queue.put(packet)

    def transmission_time(self, packet: Packet) -> float:
        if self.rate_kbps == float("inf"):
            return 0.0
        return packet.size_bits / (self.rate_kbps * 1000.0)

    def _pump(self):
        while True:
            packet = yield self._queue.get()
            serialization = self.transmission_time(packet)
            if serialization > 0:
                yield self.env.timeout(serialization)
            if self.delay > 0:
                self.env.process(self._deliver_after(packet, self.delay))
            else:
                self._deliver(packet)

    def _deliver_after(self, packet: Packet, delay: float):
        yield self.env.timeout(delay)
        self._deliver(packet)

    def _deliver(self, packet: Packet) -> None:
        self.packets_out += 1
        for sink in self._sinks:
            sink(packet)
