"""Lossy channels: the paper's network model.

Section 3 models the network as a single FIFO server with service rate
``mu_ch`` (the session bandwidth) whose transmissions are independently
lost with probability ``p_l``.  :class:`Channel` implements exactly
that; :class:`MulticastChannel` extends it with per-receiver independent
loss, and :class:`DuplexPath` pairs a forward data channel with a
reverse feedback channel.

Batched fan-out (docs/KERNEL.md, "Performance"): the multicast hot loop
compiles the receiver set into a dense dispatch registry — one row per
active receiver with the loss draw pre-bound — rebuilt only on
join/leave/block churn, and both channels replace the per-delayed-packet
process spawn with a single persistent delivery process fed from a
time-ordered deque.  The legacy scalar loop is kept behind
:func:`set_fanout_mode` as the defining reference: seeded results in
either mode are byte-for-byte identical (pinned by the channel
equivalence tests and ``make bench-kernel``).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, Dict, Optional

from repro.des import Environment, Store
from repro.net.loss import (
    BernoulliLoss,
    CombinedLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    TotalLoss,
    TraceLoss,
    rng_sources,
)
from repro.net.packet import Packet, _packet_ids, kbps_to_pps
from repro.obs import runtime as _obs
from repro.obs.trace import PACKET as _PACKET

#: Runtime selector for the multicast fan-out implementation.  The
#: scalar mode is the original per-receiver ``is_lost()`` loop (with the
#: per-delayed-packet process spawn); batched is the registry-driven
#: fast path.  Both produce identical seeded results — the toggle exists
#: so benchmarks and equivalence tests can compare them in-process.
_FANOUT_MODE = "batched"

def set_fanout_mode(mode: str) -> None:
    """Select the fan-out implementation: ``"scalar"`` or ``"batched"``."""
    global _FANOUT_MODE
    if mode not in ("scalar", "batched"):
        raise ValueError(f"fanout mode must be 'scalar' or 'batched', got {mode!r}")
    _FANOUT_MODE = mode


def fanout_mode() -> str:
    """The currently selected fan-out implementation."""
    return _FANOUT_MODE


class Channel:
    """A lossy FIFO server with a given bandwidth.

    Packets are serialized at ``rate_kbps``; after service, the loss
    model decides whether the packet reaches the subscriber(s).  An
    optional fixed propagation ``delay`` is added post-service.

    ``on_serviced`` hooks fire for every serviced packet with the loss
    outcome — protocols use this to account bandwidth and to drive
    per-transmission death processes.
    """

    def __init__(
        self,
        env: Environment,
        rate_kbps: float,
        loss: LossModel | None = None,
        delay: float = 0.0,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate_kbps must be positive, got {rate_kbps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.env = env
        self.rate_kbps = rate_kbps
        self.loss = loss if loss is not None else NoLoss()
        self.delay = delay
        #: Per-cell label for this channel's trace rows (never fed back
        #: into the simulation).
        self.chan = _obs.next_trace_label("c")
        self._queue: Store = Store(env)
        self._sinks: list[Callable[[Packet], None]] = []
        self._serviced_hooks: list[Callable[[Packet, bool], None]] = []
        self._completions: dict[int, Any] = {}
        #: Pending delayed deliveries as (due, packet); FIFO order is
        #: time order because the propagation delay is fixed.
        self._delay_queue: deque[tuple[float, Packet]] = deque()
        self._delivery_proc: Optional[Any] = None
        self._delivery_wakeup: Optional[Any] = None
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bits_sent = 0
        env.process(self._pump())

    # -- wiring -------------------------------------------------------------
    def subscribe(self, sink: Callable[[Packet], None]) -> None:
        """Register a delivery callback for surviving packets."""
        self._sinks.append(sink)

    def on_serviced(self, hook: Callable[[Packet, bool], None]) -> None:
        """Register ``hook(packet, lost)`` called after every service."""
        self._serviced_hooks.append(hook)

    # -- sending ------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Enqueue ``packet``; the caller is never blocked."""
        packet.created_at = self.env.now
        tr = self.env._trace
        if tr is not None and tr.packet:
            tr.emit(
                _PACKET,
                "packet_enqueued",
                self.env.now,
                kind=packet.kind,
                key=packet.key,
                seq=packet.seq,
                size_bits=packet.size_bits,
                backlog=len(self._queue),
                chan=self.chan,
            )
        self._queue.put(packet)

    def transmit(self, packet: Packet):
        """Enqueue ``packet`` and return an event for its service completion.

        The event's value is the loss outcome (True = lost).  This lets a
        sender run the channel in *pull* mode — schedule the next record
        only when the previous transmission finishes — which is how the
        protocol senders keep their own hot/cold queues authoritative.
        """
        done = self.env.event()
        self._completions[packet.uid] = done
        self.send(packet)
        return done

    @property
    def backlog(self) -> int:
        """Packets queued but not yet serviced."""
        return len(self._queue)

    def service_time(self, packet: Packet) -> float:
        return packet.size_bits / (self.rate_kbps * 1000.0)

    @property
    def service_rate_pps(self) -> float:
        """Service rate in default-size packets per second."""
        return kbps_to_pps(self.rate_kbps)

    # -- internals ----------------------------------------------------------
    def _pump(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(self.service_time(packet))
            self.packets_sent += 1
            self.bits_sent += packet.size_bits
            lost = self.loss.is_lost()
            tr = self.env._trace
            if tr is not None and tr.packet:
                tr.emit(
                    _PACKET,
                    "packet_sent",
                    self.env.now,
                    kind=packet.kind,
                    key=packet.key,
                    seq=packet.seq,
                    size_bits=packet.size_bits,
                    lost=lost,
                    chan=self.chan,
                )
            for hook in self._serviced_hooks:
                hook(packet, lost)
            completion = self._completions.pop(packet.uid, None)
            if completion is not None:
                completion.succeed(lost)
            if lost:
                self.packets_dropped += 1
                if tr is not None and tr.packet:
                    tr.emit(
                        _PACKET,
                        "packet_lost",
                        self.env.now,
                        kind=packet.kind,
                        key=packet.key,
                        seq=packet.seq,
                        chan=self.chan,
                    )
                continue
            self.packets_delivered += 1
            if self.delay > 0:
                if _FANOUT_MODE == "scalar":
                    # Reference path: one short-lived process per packet.
                    self.env.process(self._deliver_after(packet, self.delay))
                else:
                    self._enqueue_delayed(packet)
            else:
                self._deliver(packet)

    def _deliver_after(self, packet: Packet, delay: float):
        yield self.env.timeout(delay)
        self._deliver(packet)

    def _enqueue_delayed(self, packet: Packet) -> None:
        # The due time is computed *now* (at service completion), so the
        # delivery loop's timeout_at lands on the exact float the legacy
        # per-packet timeout(delay) would have produced.
        self._delay_queue.append((self.env._now + self.delay, packet))
        wakeup = self._delivery_wakeup
        if wakeup is not None:
            self._delivery_wakeup = None
            wakeup.succeed()
        elif self._delivery_proc is None:
            self._delivery_proc = self.env.process(self._delivery_loop())

    def _delivery_loop(self):
        """One persistent process drains all delayed deliveries in order."""
        queue = self._delay_queue
        env = self.env
        while True:
            if not queue:
                self._delivery_wakeup = wakeup = env.event()
                yield wakeup
                continue
            due = queue[0][0]
            if due > env._now:
                yield env.timeout_at(due)
                continue
            self._deliver(queue.popleft()[1])

    def _deliver(self, packet: Packet) -> None:
        tr = self.env._trace
        if tr is not None and tr.packet:
            tr.emit(
                _PACKET,
                "packet_delivered",
                self.env.now,
                kind=packet.kind,
                key=packet.key,
                seq=packet.seq,
                chan=self.chan,
            )
        for sink in self._sinks:
            sink(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Empirical loss fraction over everything serviced so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


#: Fan-out registry row kinds.  _NEVER rows always deliver (no draw, no
#: outcomes write — the pass_template already says False); always-lost
#: and blocked receivers get no row at all, their True outcome is
#: likewise pre-resolved into the pass_template.
_NEVER = 0
_BERNOULLI = 1
_GENERIC = 2
_GROUPED = 3

#: Model types whose ``draw_batch`` may be consumed as one grouped batch
#: per packet when shared by several receivers.  ``rng_sources`` can see
#: all of their randomness, which is what makes the reordering check
#: sound; unknown subclasses stay on in-order _GENERIC rows (always
#: exact, whatever rng they hide).
_GROUPABLE = (GilbertElliottLoss, DeterministicLoss, TraceLoss, CombinedLoss)

#: ``object.__new__`` bound once: the fan-out loops build per-receiver
#: packet clones without a constructor (or even a method) call.
_new_instance = object.__new__


class _FanoutRegistry:
    """Dense dispatch table for one multicast receiver set.

    ``rows`` holds one ``(kind, a, b, receiver_id, sink)`` tuple per
    receiver that can ever be delivered to, in join order — except when
    ``uniform_bernoulli`` is set (every row is a Bernoulli draw), where
    rows shrink to ``(rand, rate, receiver_id, sink)`` 4-tuples for the
    specialized loop's direct unpacking.  Both templates hold every
    member in join order: ``template`` is the all-True outcomes dict
    returned when the shared upstream loss eats the packet;
    ``pass_template`` pre-resolves every constant outcome (blocked /
    always-lost members True, never-lost and drawing members False) so
    the loops only write the *lost* draws.  ``groups`` lists
    ``(model, count)`` for shared models drawn as one
    ``draw_batch(count)`` per packet.
    """

    __slots__ = ("rows", "template", "pass_template", "groups", "uniform_bernoulli")


class MulticastChannel:
    """One sender queue, many receivers with independent loss.

    The sender serializes each announcement once (multicast: one
    transmission serves the whole group); each receiver then loses it
    independently according to its own loss model — the standard model
    for announce/listen sessions like SAP/sdr.
    """

    def __init__(
        self,
        env: Environment,
        rate_kbps: float,
        delay: float = 0.0,
        shared_loss: LossModel | None = None,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate_kbps must be positive, got {rate_kbps}")
        self.env = env
        self.rate_kbps = rate_kbps
        self.delay = delay
        #: Per-cell label for this channel's trace rows (never fed back
        #: into the simulation).
        self.chan = _obs.next_trace_label("c")
        #: Loss on the shared upstream path: one decision per packet
        #: affecting the whole group (correlated loss), applied before
        #: each receiver's independent last-hop loss.
        self.shared_loss = shared_loss if shared_loss is not None else NoLoss()
        self._queue: Store = Store(env)
        self._receivers: Dict[Any, tuple[LossModel, Callable[[Packet], None]]] = {}
        self._blocked: set[Any] = set()
        self._serviced_hooks: list[Callable[[Packet, Dict[Any, bool]], None]] = []
        self._completions: Dict[int, Any] = {}
        self._registry: Optional[_FanoutRegistry] = None
        self._delay_queue: deque[tuple[float, Packet, Callable[[Packet], None]]] = (
            deque()
        )
        self._delivery_proc: Optional[Any] = None
        self._delivery_wakeup: Optional[Any] = None
        #: Per-receiver announcement exposure counts, folded lazily: the
        #: pump bumps one epoch counter per packet and membership
        #: changes / loss-rate queries credit the epoch to every current
        #: member, so exposure tracking is O(1) per packet.
        self._exposures: Dict[Any, int] = {}
        self._epoch_packets = 0
        self.packets_sent = 0
        #: Delivery counts are folded just as lazily: the batched loops
        #: append surviving receiver ids to ``_delivery_hits`` and the
        #: ``delivered_per_receiver`` property folds them through one
        #: C-level ``Counter`` pass on read.
        self._delivered: Dict[Any, int] = {}
        self._delivery_hits: list = []
        env.process(self._pump())

    def join(
        self,
        receiver_id: Any,
        sink: Callable[[Packet], None],
        loss: LossModel | None = None,
    ) -> None:
        """Add a receiver to the group with its own loss model.

        Re-joining after a :meth:`leave` (churn, a healed partition) is
        allowed and keeps the receiver's delivery count; joining while
        already a member is still an error.
        """
        if receiver_id in self._receivers:
            raise ValueError(f"receiver {receiver_id!r} already joined")
        self._fold_exposures()
        self._receivers[receiver_id] = (loss if loss is not None else NoLoss(), sink)
        self._delivered.setdefault(receiver_id, 0)
        self._exposures.setdefault(receiver_id, 0)
        self._registry = None

    def leave(
        self, receiver_id: Any
    ) -> Optional[tuple[LossModel, Callable[[Packet], None]]]:
        """Remove a receiver (late leave, crash, partition).

        Returns the receiver's ``(loss, sink)`` pair so a later
        re-:meth:`join` can restore exactly the same wiring.
        """
        self._fold_exposures()
        self._blocked.discard(receiver_id)
        self._registry = None
        return self._receivers.pop(receiver_id, None)

    def block(self, receiver_id: Any) -> None:
        """Partition a member: it stays joined but every packet is lost.

        Unlike per-receiver loss, blocking does not advance the
        receiver's loss model — no packet reaches its last hop at all.
        """
        self._blocked.add(receiver_id)
        self._registry = None

    def unblock(self, receiver_id: Any) -> None:
        """Heal a partition for one member."""
        self._blocked.discard(receiver_id)
        self._registry = None

    def invalidate_registry(self) -> None:
        """Drop the cached fan-out registry.

        Membership calls (:meth:`join`/:meth:`leave`/:meth:`block`/
        :meth:`unblock`) invalidate automatically; call this after
        mutating a joined receiver's loss model *in place* (changing a
        Bernoulli rate, swapping its entry's model object) so the
        batched path re-reads it.
        """
        self._registry = None

    def on_serviced(
        self, hook: Callable[[Packet, Dict[Any, bool]], None]
    ) -> None:
        """Register ``hook(packet, {receiver: lost})`` after every service."""
        self._serviced_hooks.append(hook)

    def send(self, packet: Packet) -> None:
        packet.created_at = self.env.now
        tr = self.env._trace
        if tr is not None and tr.packet:
            tr.emit(
                _PACKET,
                "packet_enqueued",
                self.env.now,
                kind=packet.kind,
                key=packet.key,
                seq=packet.seq,
                size_bits=packet.size_bits,
                backlog=len(self._queue),
                chan=self.chan,
            )
        self._queue.put(packet)

    def transmit(self, packet: Packet):
        """Enqueue and return an event firing after service (pull mode).

        The event's value is the per-receiver loss outcome dict.
        """
        done = self.env.event()
        self._completions[packet.uid] = done
        self.send(packet)
        return done

    @property
    def backlog(self) -> int:
        return len(self._queue)

    # -- observed loss ------------------------------------------------------
    def _fold_exposures(self) -> None:
        """Credit the current epoch's packets to every current member."""
        epoch = self._epoch_packets
        if epoch:
            exposures = self._exposures
            for receiver_id in self._receivers:
                exposures[receiver_id] += epoch
            self._epoch_packets = 0

    def _fold_delivery_hits(self) -> None:
        """Fold pending batched-loop delivery hits into the counts."""
        hits = self._delivery_hits
        if hits:
            delivered = self._delivered
            for receiver_id, count in Counter(hits).items():
                delivered[receiver_id] += count
            hits.clear()

    @property
    def delivered_per_receiver(self) -> Dict[Any, int]:
        """Per-receiver delivery counts (folded on read)."""
        self._fold_delivery_hits()
        return self._delivered

    @property
    def observed_loss_rate(self) -> float:
        """Aggregate empirical loss fraction across all receivers.

        One announcement serviced while ``k`` receivers are joined
        counts as ``k`` exposures (blocked members included — a
        partition *is* loss as observed by that receiver); the rate is
        ``1 - delivered / exposures`` over the whole session history.
        """
        self._fold_exposures()
        total_exposed = sum(self._exposures.values())
        if total_exposed == 0:
            return 0.0
        total_delivered = sum(self.delivered_per_receiver.values())
        return 1.0 - total_delivered / total_exposed

    @property
    def receiver_loss_rates(self) -> Dict[Any, float]:
        """Per-receiver empirical loss fractions (receivers never
        exposed to a packet report 0.0)."""
        self._fold_exposures()
        exposures = self._exposures
        return {
            receiver_id: (
                1.0 - delivered / exposures[receiver_id]
                if exposures.get(receiver_id)
                else 0.0
            )
            for receiver_id, delivered in self.delivered_per_receiver.items()
        }

    # -- internals ----------------------------------------------------------
    def _pump(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(
                packet.size_bits / (self.rate_kbps * 1000.0)
            )
            self.packets_sent += 1
            self._epoch_packets += 1
            tr = self.env._trace
            trace_packets = tr is not None and tr.packet
            if _FANOUT_MODE == "scalar":
                outcomes = self._fanout_scalar(packet, tr, trace_packets)
            else:
                outcomes = self._fanout_batched(packet, tr, trace_packets)
            if trace_packets:
                tr.emit(
                    _PACKET,
                    "packet_sent",
                    self.env.now,
                    kind=packet.kind,
                    key=packet.key,
                    seq=packet.seq,
                    size_bits=packet.size_bits,
                    receivers=len(outcomes),
                    lost=sum(1 for v in outcomes.values() if v),
                    chan=self.chan,
                )
            for hook in self._serviced_hooks:
                hook(packet, outcomes)
            completion = self._completions.pop(packet.uid, None)
            if completion is not None:
                completion.succeed(outcomes)

    def _fanout_scalar(self, packet: Packet, tr, trace_packets: bool):
        """The original per-receiver loop — the defining reference path."""
        outcomes: Dict[Any, bool] = {}
        upstream_lost = self.shared_loss.is_lost()
        delivered = self.delivered_per_receiver
        for receiver_id, (loss, sink) in list(self._receivers.items()):
            if receiver_id in self._blocked:
                outcomes[receiver_id] = True
                continue
            lost = upstream_lost or loss.is_lost()
            outcomes[receiver_id] = lost
            if lost:
                continue
            delivered[receiver_id] += 1
            delivery = packet.copy_for(receiver_id)
            if trace_packets:
                tr.emit(
                    _PACKET,
                    "packet_delivered",
                    self.env.now,
                    kind=packet.kind,
                    key=packet.key,
                    seq=packet.seq,
                    receiver=receiver_id,
                    chan=self.chan,
                )
            if self.delay > 0:
                self.env.process(self._deliver_after(delivery, sink))
            else:
                sink(delivery)
        return outcomes

    def _fanout_batched(self, packet: Packet, tr, trace_packets: bool):
        """Registry-driven fan-out: identical outcomes, far fewer dispatches.

        Exactness argument: rows are evaluated in join order, so every
        rng's draw sequence matches the scalar loop; grouped models draw
        their whole batch up front, which only commutes because the
        registry builder proved their rngs are private to them; and an
        upstream loss short-circuits all per-receiver draws exactly like
        the scalar ``upstream_lost or loss.is_lost()``.
        """
        registry = self._registry
        if registry is None:
            registry = self._build_registry()
        if self.shared_loss.is_lost():
            return registry.template.copy()
        outcomes = registry.pass_template.copy()
        record_hit = self._delivery_hits.append
        delay = self.delay
        now = self.env._now
        fast_copy = packet._copy_fast
        kind = packet.kind
        key = packet.key
        seq = packet.seq
        if registry.uniform_bernoulli:
            # Homogeneous fast loop: every row draws `rand() < rate`.
            # The per-receiver clone (see Packet._copy_fast) is inlined
            # here — at tens of thousands of survivors per burst even
            # the method-call frame is measurable.
            payload = packet.payload
            created_at = packet.created_at
            size_bits = packet.size_bits
            new = _new_instance
            new_uid = _packet_ids.__next__
            if not trace_packets and delay == 0.0:
                for rand, rate, receiver_id, sink in registry.rows:
                    if rand() < rate:
                        outcomes[receiver_id] = True
                        continue
                    record_hit(receiver_id)
                    delivery = new(Packet)
                    delivery.kind = kind
                    delivery.key = key
                    delivery.payload = payload
                    delivery.seq = seq
                    delivery.created_at = created_at
                    delivery.size_bits = size_bits
                    delivery.uid = new_uid()
                    sink(delivery)
                return outcomes
            for rand, rate, receiver_id, sink in registry.rows:
                if rand() < rate:
                    outcomes[receiver_id] = True
                    continue
                record_hit(receiver_id)
                delivery = new(Packet)
                delivery.kind = kind
                delivery.key = key
                delivery.payload = payload
                delivery.seq = seq
                delivery.created_at = created_at
                delivery.size_bits = size_bits
                delivery.uid = new_uid()
                if trace_packets:
                    tr.emit(
                        _PACKET,
                        "packet_delivered",
                        now,
                        kind=kind,
                        key=key,
                        seq=seq,
                        receiver=receiver_id,
                        chan=self.chan,
                    )
                if delay > 0:
                    self._enqueue_delayed(delivery, sink)
                else:
                    sink(delivery)
            return outcomes
        groups = registry.groups
        flags = (
            [model.draw_batch(count) for model, count in groups]
            if groups
            else None
        )
        for row_kind, a, b, receiver_id, sink in registry.rows:
            if row_kind == _BERNOULLI:
                if a() < b:
                    outcomes[receiver_id] = True
                    continue
            elif row_kind == _GENERIC:
                if a.is_lost():
                    outcomes[receiver_id] = True
                    continue
            elif row_kind == _GROUPED:
                if flags[a][b]:
                    outcomes[receiver_id] = True
                    continue
            record_hit(receiver_id)
            delivery = fast_copy()
            if trace_packets:
                tr.emit(
                    _PACKET,
                    "packet_delivered",
                    now,
                    kind=kind,
                    seq=seq,
                    receiver=receiver_id,
                    chan=self.chan,
                )
            if delay > 0:
                self._enqueue_delayed(delivery, sink)
            else:
                sink(delivery)
        return outcomes

    def _build_registry(self) -> _FanoutRegistry:
        blocked = self._blocked
        template: Dict[Any, bool] = {}
        # Pass 1: count how many active receivers share each stateful
        # model object — heavily shared models are worth one grouped
        # draw_batch per packet instead of per-row is_lost dispatches.
        stateful_counts: Dict[int, int] = {}
        stateful_models: Dict[int, LossModel] = {}
        bernoulli_models: Dict[int, LossModel] = {}
        for receiver_id, (loss, _sink) in self._receivers.items():
            template[receiver_id] = True
            if receiver_id in blocked:
                continue
            cls = type(loss)
            if cls is NoLoss or cls is TotalLoss:
                continue
            if cls is BernoulliLoss:
                if 0.0 < loss.rate < 1.0:
                    bernoulli_models[id(loss)] = loss
                continue
            stateful_counts[id(loss)] = stateful_counts.get(id(loss), 0) + 1
            stateful_models[id(loss)] = loss
        # Grouping moves a shared model's draws ahead of the in-order
        # rows, which is invisible to every other stream exactly when no
        # rng object of the group is drawn by any other model (including
        # the shared upstream model).  Models failing the check simply
        # stay on in-order rows — still exact, just not batched.
        group_for: Dict[int, int] = {}
        groups: list[tuple[LossModel, int]] = []
        shared = [
            model
            for model_id, model in stateful_models.items()
            if stateful_counts[model_id] > 1 and isinstance(model, _GROUPABLE)
        ]
        if shared:
            rng_owners: Dict[int, set[int]] = {}
            for model in [
                *stateful_models.values(),
                *bernoulli_models.values(),
                self.shared_loss,
            ]:
                for rng in rng_sources(model):
                    rng_owners.setdefault(id(rng), set()).add(id(model))
            for model in shared:
                if all(
                    len(rng_owners[id(rng)]) == 1
                    for rng in rng_sources(model)
                ):
                    group_for[id(model)] = len(groups)
                    groups.append((model, stateful_counts[id(model)]))
        # Pass 2: constant outcomes fold into pass_template; always-lost
        # and blocked receivers get no row, everyone else gets one
        # dispatch row in join order.
        rows: list[tuple] = []
        pass_template: Dict[Any, bool] = {}
        positions: Dict[int, int] = {}
        for receiver_id, (loss, sink) in self._receivers.items():
            if receiver_id in blocked:
                pass_template[receiver_id] = True
                continue
            cls = type(loss)
            if cls is NoLoss:
                pass_template[receiver_id] = False
                rows.append((_NEVER, None, None, receiver_id, sink))
                continue
            if cls is TotalLoss:
                pass_template[receiver_id] = True
                continue
            pass_template[receiver_id] = False
            if cls is BernoulliLoss:
                rate = loss.rate
                # The degenerate rates consume no randomness (see
                # BernoulliLoss.is_lost), so they compile to constants.
                if rate == 0.0:
                    rows.append((_NEVER, None, None, receiver_id, sink))
                elif rate < 1.0:
                    rows.append(
                        (_BERNOULLI, loss._rng.random, rate, receiver_id, sink)
                    )
                else:
                    pass_template[receiver_id] = True
                continue
            group_index = group_for.get(id(loss))
            if group_index is None:
                rows.append((_GENERIC, loss, None, receiver_id, sink))
            else:
                position = positions.get(id(loss), 0)
                positions[id(loss)] = position + 1
                rows.append((_GROUPED, group_index, position, receiver_id, sink))
        registry = _FanoutRegistry()
        registry.template = template
        registry.pass_template = pass_template
        registry.groups = groups
        registry.uniform_bernoulli = bool(rows) and all(
            row[0] == _BERNOULLI for row in rows
        )
        if registry.uniform_bernoulli:
            # The homogeneous loop unpacks 4-tuples straight in its
            # ``for`` target; the kind column would only be dead weight.
            rows = [row[1:] for row in rows]
        registry.rows = rows
        self._registry = registry
        return registry

    def _deliver_after(self, packet: Packet, sink: Callable[[Packet], None]):
        yield self.env.timeout(self.delay)
        sink(packet)

    def _enqueue_delayed(
        self, packet: Packet, sink: Callable[[Packet], None]
    ) -> None:
        self._delay_queue.append((self.env._now + self.delay, packet, sink))
        wakeup = self._delivery_wakeup
        if wakeup is not None:
            self._delivery_wakeup = None
            wakeup.succeed()
        elif self._delivery_proc is None:
            self._delivery_proc = self.env.process(self._delivery_loop())

    def _delivery_loop(self):
        """One persistent process drains all delayed deliveries in order."""
        queue = self._delay_queue
        env = self.env
        while True:
            if not queue:
                self._delivery_wakeup = wakeup = env.event()
                yield wakeup
                continue
            due = queue[0][0]
            if due > env._now:
                yield env.timeout_at(due)
                continue
            entry = queue.popleft()
            entry[2](entry[1])


class DuplexPath:
    """A forward data channel paired with a reverse feedback channel.

    Sections 5-6 allocate the session bandwidth between data (forward)
    and feedback (reverse NACKs / receiver reports).  Both directions
    are lossy; by default the reverse path shares the forward path's
    mean loss rate, matching a symmetric network.
    """

    def __init__(
        self,
        env: Environment,
        data_kbps: float,
        feedback_kbps: float,
        data_loss: LossModel | None = None,
        feedback_loss: LossModel | None = None,
        delay: float = 0.0,
    ) -> None:
        self.env = env
        self.forward = Channel(env, data_kbps, loss=data_loss, delay=delay)
        # A zero feedback allocation means feedback simply cannot be sent;
        # model it as a channel whose loss model drops everything.
        if feedback_kbps > 0:
            self.reverse: Optional[Channel] = Channel(
                env, feedback_kbps, loss=feedback_loss, delay=delay
            )
        else:
            self.reverse = None

    def send_data(self, packet: Packet) -> None:
        self.forward.send(packet)

    def send_feedback(self, packet: Packet) -> bool:
        """Send on the reverse path; False if no feedback bandwidth exists."""
        if self.reverse is None:
            return False
        self.reverse.send(packet)
        return True
