"""Lossy channels: the paper's network model.

Section 3 models the network as a single FIFO server with service rate
``mu_ch`` (the session bandwidth) whose transmissions are independently
lost with probability ``p_l``.  :class:`Channel` implements exactly
that; :class:`MulticastChannel` extends it with per-receiver independent
loss, and :class:`DuplexPath` pairs a forward data channel with a
reverse feedback channel.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.des import Environment, Store
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet, kbps_to_pps
from repro.obs.trace import PACKET as _PACKET


class Channel:
    """A lossy FIFO server with a given bandwidth.

    Packets are serialized at ``rate_kbps``; after service, the loss
    model decides whether the packet reaches the subscriber(s).  An
    optional fixed propagation ``delay`` is added post-service.

    ``on_serviced`` hooks fire for every serviced packet with the loss
    outcome — protocols use this to account bandwidth and to drive
    per-transmission death processes.
    """

    def __init__(
        self,
        env: Environment,
        rate_kbps: float,
        loss: LossModel | None = None,
        delay: float = 0.0,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate_kbps must be positive, got {rate_kbps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.env = env
        self.rate_kbps = rate_kbps
        self.loss = loss if loss is not None else NoLoss()
        self.delay = delay
        self._queue: Store = Store(env)
        self._sinks: list[Callable[[Packet], None]] = []
        self._serviced_hooks: list[Callable[[Packet, bool], None]] = []
        self._completions: dict[int, Any] = {}
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bits_sent = 0
        env.process(self._pump())

    # -- wiring -------------------------------------------------------------
    def subscribe(self, sink: Callable[[Packet], None]) -> None:
        """Register a delivery callback for surviving packets."""
        self._sinks.append(sink)

    def on_serviced(self, hook: Callable[[Packet, bool], None]) -> None:
        """Register ``hook(packet, lost)`` called after every service."""
        self._serviced_hooks.append(hook)

    # -- sending ------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Enqueue ``packet``; the caller is never blocked."""
        packet.created_at = self.env.now
        tr = self.env._trace
        if tr is not None and tr.packet:
            tr.emit(
                _PACKET,
                "packet_enqueued",
                self.env.now,
                kind=packet.kind,
                seq=packet.seq,
                size_bits=packet.size_bits,
                backlog=len(self._queue),
            )
        self._queue.put(packet)

    def transmit(self, packet: Packet):
        """Enqueue ``packet`` and return an event for its service completion.

        The event's value is the loss outcome (True = lost).  This lets a
        sender run the channel in *pull* mode — schedule the next record
        only when the previous transmission finishes — which is how the
        protocol senders keep their own hot/cold queues authoritative.
        """
        done = self.env.event()
        self._completions[packet.uid] = done
        self.send(packet)
        return done

    @property
    def backlog(self) -> int:
        """Packets queued but not yet serviced."""
        return len(self._queue)

    def service_time(self, packet: Packet) -> float:
        return packet.size_bits / (self.rate_kbps * 1000.0)

    @property
    def service_rate_pps(self) -> float:
        """Service rate in default-size packets per second."""
        return kbps_to_pps(self.rate_kbps)

    # -- internals ----------------------------------------------------------
    def _pump(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(self.service_time(packet))
            self.packets_sent += 1
            self.bits_sent += packet.size_bits
            lost = self.loss.is_lost()
            tr = self.env._trace
            if tr is not None and tr.packet:
                tr.emit(
                    _PACKET,
                    "packet_sent",
                    self.env.now,
                    kind=packet.kind,
                    seq=packet.seq,
                    size_bits=packet.size_bits,
                    lost=lost,
                )
            for hook in self._serviced_hooks:
                hook(packet, lost)
            completion = self._completions.pop(packet.uid, None)
            if completion is not None:
                completion.succeed(lost)
            if lost:
                self.packets_dropped += 1
                if tr is not None and tr.packet:
                    tr.emit(
                        _PACKET,
                        "packet_lost",
                        self.env.now,
                        kind=packet.kind,
                        seq=packet.seq,
                    )
                continue
            self.packets_delivered += 1
            if self.delay > 0:
                self.env.process(self._deliver_after(packet, self.delay))
            else:
                self._deliver(packet)

    def _deliver_after(self, packet: Packet, delay: float):
        yield self.env.timeout(delay)
        self._deliver(packet)

    def _deliver(self, packet: Packet) -> None:
        tr = self.env._trace
        if tr is not None and tr.packet:
            tr.emit(
                _PACKET,
                "packet_delivered",
                self.env.now,
                kind=packet.kind,
                seq=packet.seq,
            )
        for sink in self._sinks:
            sink(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Empirical loss fraction over everything serviced so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


class MulticastChannel:
    """One sender queue, many receivers with independent loss.

    The sender serializes each announcement once (multicast: one
    transmission serves the whole group); each receiver then loses it
    independently according to its own loss model — the standard model
    for announce/listen sessions like SAP/sdr.
    """

    def __init__(
        self,
        env: Environment,
        rate_kbps: float,
        delay: float = 0.0,
        shared_loss: LossModel | None = None,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate_kbps must be positive, got {rate_kbps}")
        self.env = env
        self.rate_kbps = rate_kbps
        self.delay = delay
        #: Loss on the shared upstream path: one decision per packet
        #: affecting the whole group (correlated loss), applied before
        #: each receiver's independent last-hop loss.
        self.shared_loss = shared_loss if shared_loss is not None else NoLoss()
        self._queue: Store = Store(env)
        self._receivers: Dict[Any, tuple[LossModel, Callable[[Packet], None]]] = {}
        self._blocked: set[Any] = set()
        self._serviced_hooks: list[Callable[[Packet, Dict[Any, bool]], None]] = []
        self._completions: Dict[int, Any] = {}
        self.packets_sent = 0
        self.delivered_per_receiver: Dict[Any, int] = {}
        env.process(self._pump())

    def join(
        self,
        receiver_id: Any,
        sink: Callable[[Packet], None],
        loss: LossModel | None = None,
    ) -> None:
        """Add a receiver to the group with its own loss model.

        Re-joining after a :meth:`leave` (churn, a healed partition) is
        allowed and keeps the receiver's delivery count; joining while
        already a member is still an error.
        """
        if receiver_id in self._receivers:
            raise ValueError(f"receiver {receiver_id!r} already joined")
        self._receivers[receiver_id] = (loss if loss is not None else NoLoss(), sink)
        self.delivered_per_receiver.setdefault(receiver_id, 0)

    def leave(
        self, receiver_id: Any
    ) -> Optional[tuple[LossModel, Callable[[Packet], None]]]:
        """Remove a receiver (late leave, crash, partition).

        Returns the receiver's ``(loss, sink)`` pair so a later
        re-:meth:`join` can restore exactly the same wiring.
        """
        self._blocked.discard(receiver_id)
        return self._receivers.pop(receiver_id, None)

    def block(self, receiver_id: Any) -> None:
        """Partition a member: it stays joined but every packet is lost.

        Unlike per-receiver loss, blocking does not advance the
        receiver's loss model — no packet reaches its last hop at all.
        """
        self._blocked.add(receiver_id)

    def unblock(self, receiver_id: Any) -> None:
        """Heal a partition for one member."""
        self._blocked.discard(receiver_id)

    def on_serviced(
        self, hook: Callable[[Packet, Dict[Any, bool]], None]
    ) -> None:
        """Register ``hook(packet, {receiver: lost})`` after every service."""
        self._serviced_hooks.append(hook)

    def send(self, packet: Packet) -> None:
        packet.created_at = self.env.now
        self._queue.put(packet)

    def transmit(self, packet: Packet):
        """Enqueue and return an event firing after service (pull mode).

        The event's value is the per-receiver loss outcome dict.
        """
        done = self.env.event()
        self._completions[packet.uid] = done
        self.send(packet)
        return done

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def _pump(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(
                packet.size_bits / (self.rate_kbps * 1000.0)
            )
            self.packets_sent += 1
            outcomes: Dict[Any, bool] = {}
            upstream_lost = self.shared_loss.is_lost()
            tr = self.env._trace
            trace_packets = tr is not None and tr.packet
            for receiver_id, (loss, sink) in list(self._receivers.items()):
                if receiver_id in self._blocked:
                    outcomes[receiver_id] = True
                    continue
                lost = upstream_lost or loss.is_lost()
                outcomes[receiver_id] = lost
                if lost:
                    continue
                self.delivered_per_receiver[receiver_id] += 1
                delivery = packet.copy_for(receiver_id)
                if trace_packets:
                    tr.emit(
                        _PACKET,
                        "packet_delivered",
                        self.env.now,
                        kind=packet.kind,
                        seq=packet.seq,
                        receiver=receiver_id,
                    )
                if self.delay > 0:
                    self.env.process(self._deliver_after(delivery, sink))
                else:
                    sink(delivery)
            if trace_packets:
                tr.emit(
                    _PACKET,
                    "packet_sent",
                    self.env.now,
                    kind=packet.kind,
                    seq=packet.seq,
                    size_bits=packet.size_bits,
                    receivers=len(outcomes),
                    lost=sum(1 for v in outcomes.values() if v),
                )
            for hook in self._serviced_hooks:
                hook(packet, outcomes)
            completion = self._completions.pop(packet.uid, None)
            if completion is not None:
                completion.succeed(outcomes)

    def _deliver_after(self, packet: Packet, sink: Callable[[Packet], None]):
        yield self.env.timeout(self.delay)
        sink(packet)


class DuplexPath:
    """A forward data channel paired with a reverse feedback channel.

    Sections 5-6 allocate the session bandwidth between data (forward)
    and feedback (reverse NACKs / receiver reports).  Both directions
    are lossy; by default the reverse path shares the forward path's
    mean loss rate, matching a symmetric network.
    """

    def __init__(
        self,
        env: Environment,
        data_kbps: float,
        feedback_kbps: float,
        data_loss: LossModel | None = None,
        feedback_loss: LossModel | None = None,
        delay: float = 0.0,
    ) -> None:
        self.env = env
        self.forward = Channel(env, data_kbps, loss=data_loss, delay=delay)
        # A zero feedback allocation means feedback simply cannot be sent;
        # model it as a channel whose loss model drops everything.
        if feedback_kbps > 0:
            self.reverse: Optional[Channel] = Channel(
                env, feedback_kbps, loss=feedback_loss, delay=delay
            )
        else:
            self.reverse = None

    def send_data(self, packet: Packet) -> None:
        self.forward.send(packet)

    def send_feedback(self, packet: Packet) -> bool:
        """Send on the reverse path; False if no feedback bandwidth exists."""
        if self.reverse is None:
            return False
        self.reverse.send(packet)
        return True
