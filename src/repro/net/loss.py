"""Packet loss models.

The paper's analysis depends only on the *mean* per-transmission loss
rate (Section 3 argues the consistency metric is insensitive to the loss
pattern).  We provide a Bernoulli model matching that assumption plus a
bursty Gilbert-Elliott model, a deterministic model, and a trace-driven
model, so that the "loss-pattern insensitivity" claim can itself be
tested (see the loss-model ablation bench).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

from repro.des.rng import RngStreams

#: Stream family for models built without an explicit rng.  Every such
#: instance draws from its own substream: two channels constructed
#: side by side must not share one loss sequence (they used to — every
#: default was ``random.Random(0)``, so "independent" channels dropped
#: exactly the same packets).  Instance numbering makes this
#: deterministic within a process; code that needs cross-process
#: reproducibility should pass an explicit rng, as the sessions do.
_DEFAULT_STREAMS = RngStreams(seed=0x10_55)
_DEFAULT_COUNTER = itertools.count()


def _default_rng() -> random.Random:
    return _DEFAULT_STREAMS[f"model-{next(_DEFAULT_COUNTER)}"]


def rng_sources(model: "LossModel") -> Iterable[random.Random]:
    """Yield the :class:`random.Random` instances ``model`` draws from.

    Used by batched consumers (``CombinedLoss.draw_batch``, the multicast
    fan-out registry) to decide whether grouping draws by model is exact:
    reordering draws across models is safe only when no rng object is
    shared between them.
    """
    rng = getattr(model, "_rng", None)
    if rng is not None:
        yield rng
    for component in getattr(model, "models", ()):
        yield from rng_sources(component)


class LossModel:
    """Decides, per transmission, whether a packet is dropped."""

    def is_lost(self) -> bool:
        raise NotImplementedError

    def draw_batch(self, n: int) -> list[bool]:
        """Draw ``n`` consecutive loss outcomes in one call.

        Equivalence contract (pinned by ``tests/net/test_loss_batch.py``):
        the returned booleans and the model's post-call state — rng
        sequence, chain state, trace position — are *identical* to ``n``
        scalar :meth:`is_lost` calls, so scalar and batched consumers of
        a seeded model can be mixed freely without perturbing results.
        Subclasses override this with loop-hoisted implementations; the
        base version is the defining scalar loop.
        """
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        is_lost = self.is_lost
        return [is_lost() for _ in range(n)]

    @property
    def mean_loss_rate(self) -> float:
        """Long-run fraction of transmissions dropped."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the construction-time state, exactly.

        Stateful models rewind everything that affects future draws:
        trace position, chain state, and the rng sequence itself.  This
        is what lets a fault overlay (``repro.faults.LossEpisode``) put
        a channel's original model back untouched.  Note that a model
        sharing its rng with other consumers rewinds that shared stream.
        """


class NoLoss(LossModel):
    """A perfect channel."""

    def is_lost(self) -> bool:
        return False

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        return [False] * n

    @property
    def mean_loss_rate(self) -> float:
        return 0.0


class TotalLoss(LossModel):
    """A severed channel: every packet is dropped (outages, partitions)."""

    def is_lost(self) -> bool:
        return True

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        return [True] * n

    @property
    def mean_loss_rate(self) -> float:
        return 1.0


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability ``rate`` per packet."""

    def __init__(self, rate: float, rng: random.Random | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else _default_rng()
        self._initial_rng_state = self._rng.getstate()

    def is_lost(self) -> bool:
        if self.rate == 0.0:
            return False
        if self.rate == 1.0:
            return True
        return self._rng.random() < self.rate

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        rate = self.rate
        # The degenerate rates consume no randomness, exactly like the
        # scalar path.
        if rate == 0.0:
            return [False] * n
        if rate == 1.0:
            return [True] * n
        random = self._rng.random
        return [random() < rate for _ in range(n)]

    @property
    def mean_loss_rate(self) -> float:
        return self.rate

    def reset(self) -> None:
        self._rng.setstate(self._initial_rng_state)

    def __repr__(self) -> str:
        return f"BernoulliLoss(rate={self.rate})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott chain).

    The chain alternates between a ``good`` state (loss probability
    ``good_loss``, usually 0) and a ``bad`` state (loss probability
    ``bad_loss``, usually near 1).  ``p_gb`` is the per-packet
    good->bad transition probability and ``p_bg`` the bad->good one.

    The stationary bad-state probability is ``p_gb / (p_gb + p_bg)`` and
    the mean loss rate follows from mixing the two per-state rates.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        bad_loss: float = 1.0,
        good_loss: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        for name, value in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("bad_loss", bad_loss),
            ("good_loss", good_loss),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_gb + p_bg == 0:
            raise ValueError("chain must be able to move: p_gb + p_bg > 0")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.bad_loss = bad_loss
        self.good_loss = good_loss
        self._rng = rng if rng is not None else _default_rng()
        self._initial_rng_state = self._rng.getstate()
        self._bad = False

    @classmethod
    def with_mean(
        cls,
        mean_loss: float,
        burst_length: float = 5.0,
        rng: random.Random | None = None,
    ) -> "GilbertElliottLoss":
        """Build a chain with a target mean loss and mean burst length.

        With ``bad_loss=1`` and ``good_loss=0``, the mean loss rate equals
        the stationary bad probability ``pi_b = p_gb / (p_gb + p_bg)`` and
        the mean burst length is ``1 / p_bg``.
        """
        if not 0.0 <= mean_loss < 1.0:
            raise ValueError(f"mean_loss must be in [0, 1), got {mean_loss}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        p_bg = 1.0 / burst_length
        # pi_b = p_gb/(p_gb+p_bg) = mean_loss  =>  p_gb = p_bg*m/(1-m).
        # Feasibility: p_gb <= 1 requires mean <= burst/(burst+1); a
        # chain cannot spend e.g. 75% of its time in bursts of length 1.
        ceiling = burst_length / (burst_length + 1.0)
        if mean_loss > ceiling + 1e-12:
            raise ValueError(
                f"mean_loss {mean_loss} is unreachable with burst_length "
                f"{burst_length} (maximum {ceiling:.4f})"
            )
        p_gb = p_bg * mean_loss / (1.0 - mean_loss) if mean_loss > 0 else 0.0
        return cls(p_gb=min(p_gb, 1.0), p_bg=p_bg, rng=rng)

    def is_lost(self) -> bool:
        # Transition first, then draw loss from the new state, so that a
        # burst begins with the packet that triggered the transition.
        if self._bad:
            if self._rng.random() < self.p_bg:
                self._bad = False
        else:
            if self._rng.random() < self.p_gb:
                self._bad = True
        rate = self.bad_loss if self._bad else self.good_loss
        return self._rng.random() < rate

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        # Step the chain n times with everything bound to locals; two
        # rng draws per step, in the same order as the scalar path.
        random = self._rng.random
        p_gb = self.p_gb
        p_bg = self.p_bg
        bad_loss = self.bad_loss
        good_loss = self.good_loss
        bad = self._bad
        out = []
        append = out.append
        for _ in range(n):
            if bad:
                if random() < p_bg:
                    bad = False
            elif random() < p_gb:
                bad = True
            append(random() < (bad_loss if bad else good_loss))
        self._bad = bad
        return out

    @property
    def mean_loss_rate(self) -> float:
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return pi_bad * self.bad_loss + (1.0 - pi_bad) * self.good_loss

    def reset(self) -> None:
        self._bad = False
        self._rng.setstate(self._initial_rng_state)

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb:.4f}, p_bg={self.p_bg:.4f}, "
            f"mean={self.mean_loss_rate:.4f})"
        )


class DeterministicLoss(LossModel):
    """Drops every ``period``-th packet (useful for exact-count tests)."""

    def __init__(self, period: int, offset: int = 0) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self.offset = offset
        self._count = 0

    def is_lost(self) -> bool:
        lost = (self._count + self.offset) % self.period == self.period - 1
        self._count += 1
        return lost

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        period = self.period
        start = self._count + self.offset
        self._count += n
        target = period - 1
        return [(start + i) % period == target for i in range(n)]

    @property
    def mean_loss_rate(self) -> float:
        return 1.0 / self.period

    def reset(self) -> None:
        self._count = 0


class TraceLoss(LossModel):
    """Replays a recorded loss trace (True = lost), cycling at the end."""

    def __init__(self, trace: Sequence[bool] | Iterable[bool]) -> None:
        self.trace = list(trace)
        if not self.trace:
            raise ValueError("trace must not be empty")
        self._pos = 0

    def is_lost(self) -> bool:
        lost = bool(self.trace[self._pos])
        self._pos = (self._pos + 1) % len(self.trace)
        return lost

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        trace = self.trace
        length = len(trace)
        pos = self._pos
        self._pos = (pos + n) % length
        if pos + n <= length:
            return [bool(value) for value in trace[pos : pos + n]]
        out: list[bool] = []
        remaining = n
        while remaining:
            take = min(remaining, length - pos)
            out.extend(bool(value) for value in trace[pos : pos + take])
            remaining -= take
            pos = (pos + take) % length
        return out

    @property
    def mean_loss_rate(self) -> float:
        return sum(self.trace) / len(self.trace)

    def reset(self) -> None:
        self._pos = 0


class CombinedLoss(LossModel):
    """A packet survives only if it survives *every* component model."""

    def __init__(self, models: Sequence[LossModel]) -> None:
        if not models:
            raise ValueError("need at least one component model")
        self.models = list(models)

    def is_lost(self) -> bool:
        # Evaluate all components so stateful models keep advancing.
        results = [model.is_lost() for model in self.models]
        return any(results)

    def draw_batch(self, n: int) -> list[bool]:
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        models = self.models
        # Column-major (one sub-batch per component) reorders rng draws
        # relative to the scalar row-major interleave, so it is only exact
        # when no two components share a rng object.  ``models`` is public
        # and mutable, so re-check on every call rather than caching.
        sources: list[random.Random] = []
        for model in models:
            sources.extend(rng_sources(model))
        if len(sources) == len({id(rng) for rng in sources}):
            columns = [model.draw_batch(n) for model in models]
            return [any(row) for row in zip(*columns)]
        # Shared-rng fallback: the defining scalar interleave, packet by
        # packet, evaluating every component so state keeps advancing.
        out: list[bool] = []
        append = out.append
        for _ in range(n):
            append(any([model.is_lost() for model in models]))
        return out

    @property
    def mean_loss_rate(self) -> float:
        survive = 1.0
        for model in self.models:
            survive *= 1.0 - model.mean_loss_rate
        return 1.0 - survive

    def reset(self) -> None:
        for model in self.models:
            model.reset()
