"""Unified observability: structured tracing, metrics, run telemetry.

Three cooperating pieces, all zero-cost when unused:

* :mod:`repro.obs.trace` — a :class:`Tracer` records typed, timestamped
  events (process scheduled/resumed/interrupted, timer set/fired,
  packet sent/delivered/lost, record refreshed/expired, fault
  begin/end) to a ring buffer or a JSONL file, with per-category
  enable flags.  Install one with :func:`repro.obs.tracing` *before*
  building the model; every :class:`~repro.des.core.Environment`,
  table, and channel created inside the block traces into it.

* :mod:`repro.obs.metrics` — a :class:`Registry` of labeled
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments.
  The protocol ladder and SSTP publish into the ambient registry; the
  classic views (``BandwidthLedger``, ``LatencyRecorder``,
  ``RecoveryTracker``) are thin readers over it.

* :mod:`repro.obs.telemetry` — the parallel runner tags every cell
  with wall time, kernel event count, events/sec, RNG substream ids,
  and (opt-in) peak heap, and aggregates them into
  ``results/<experiment>/telemetry.json``.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, instrument
naming conventions, and how to add a new trace hook.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.profile import Profiler, ProfilingSink, profile_enabled
from repro.obs.runtime import (
    cell_context,
    current_profiler,
    current_tracer,
    install_profiler,
    install_tracer,
    profiling,
    registry,
    tracing,
    uninstall_profiler,
    uninstall_tracer,
)
from repro.obs.telemetry import (
    CellMeta,
    RunTelemetry,
    host_metadata,
    write_telemetry,
)
from repro.obs.trace import (
    CATEGORIES,
    FAULT,
    KERNEL,
    PACKET,
    RECORD,
    RUN,
    SPEC,
    WARNING,
    JsonlSink,
    RingBufferSink,
    Tracer,
    record_as_dict,
)

# Imported last: spans pulls in repro.spec (event iteration), whose
# checker imports back into repro.obs — by this point the submodules it
# needs (runtime, trace) are already bound on the package.
from repro.obs.spans import (  # noqa: E402
    Span,
    SpanBuilder,
    SpanReport,
    SpanSink,
    build_from_events,
    build_from_file,
    build_from_records,
)

__all__ = [
    "CATEGORIES",
    "CellMeta",
    "Counter",
    "FAULT",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KERNEL",
    "PACKET",
    "Profiler",
    "ProfilingSink",
    "RECORD",
    "RUN",
    "Registry",
    "RingBufferSink",
    "RunTelemetry",
    "SPEC",
    "Span",
    "SpanBuilder",
    "SpanReport",
    "SpanSink",
    "Tracer",
    "WARNING",
    "build_from_events",
    "build_from_file",
    "build_from_records",
    "cell_context",
    "current_profiler",
    "current_tracer",
    "host_metadata",
    "install_profiler",
    "install_tracer",
    "profile_enabled",
    "profiling",
    "record_as_dict",
    "registry",
    "tracing",
    "uninstall_profiler",
    "uninstall_tracer",
    "write_telemetry",
]
