"""Cross-run regression reports over telemetry + benchmark history.

``repro report`` gives ``make bench-*`` and the per-run
``results/*/telemetry.json`` files a consumer: it snapshots the current
performance surface, diffs it against the previous snapshot, and
renders the deltas with a configurable regression threshold.

Inputs:

* ``results/<exp>/telemetry.json`` — one per experiment run
  (``repro run-all``/``trace``/``stats`` all write them);
* ``BENCH_*.json`` — benchmark emissions carrying the bounded
  ``history`` list that ``benchmarks/annotate_bench.py`` maintains
  (schema v2); the last two history entries diff against each other.

State: the report keeps its own bounded history of telemetry
snapshots (``results/report_history.json`` by default), appended on
every invocation, so "vs the previous run" is well-defined even though
telemetry files are overwritten in place.

Direction heuristics: wall-clock metrics (``*wall_s*``, ``*seconds*``)
regress upward; throughput metrics (``*per_sec*``, ``*speedup*``,
``*ops*``) regress downward; anything else is reported as *changed*
but never counted as a regression.  No timestamps are recorded —
history entries are content-only, so reports stay byte-reproducible.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional, Tuple

REPORT_HISTORY_SCHEMA_VERSION = 1

#: Bounded history length, matching benchmarks/annotate_bench.py.
HISTORY_LIMIT = 20

_LOWER_BETTER = ("wall_s", "seconds", "_s.", "mean", "stddev", "median")
_HIGHER_BETTER = ("per_sec", "speedup", "ops", "rounds")


def metric_direction(path: str) -> int:
    """-1 when lower is better, +1 when higher is better, 0 neutral."""
    lowered = path.lower()
    for token in _HIGHER_BETTER:
        if token in lowered:
            return 1
    for token in _LOWER_BETTER:
        if token in lowered or lowered.endswith("_s"):
            return -1
    return 0


# -- collection ------------------------------------------------------------


def collect_telemetry(results_dir: str) -> Dict[str, Dict[str, float]]:
    """One metric row set per ``results/<exp>/telemetry.json``."""
    snapshot: Dict[str, Dict[str, float]] = {}
    pattern = os.path.join(results_dir, "*", "telemetry.json")
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        run = payload.get("run", {})
        experiment = payload.get("experiment") or os.path.basename(
            os.path.dirname(path)
        )
        metrics = {
            "wall_s": run.get("wall_s"),
            "events": run.get("events"),
            "events_per_sec": run.get("events_per_sec"),
            "cells": run.get("cells"),
        }
        snapshot[experiment] = {
            key: float(value)
            for key, value in metrics.items()
            if isinstance(value, (int, float))
        }
    return snapshot


def _flatten(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves as dotted paths, skipping metadata subtrees."""
    out: Dict[str, float] = {}
    skip = {"host", "history", "machine_info", "commit_info", "bench_schema_version"}
    if isinstance(payload, dict):
        if "benchmarks" in payload and isinstance(
            payload["benchmarks"], list
        ):
            # pytest-benchmark shape: one row per benchmark, keep the
            # stable stats rather than the full distribution dump.
            for bench in payload["benchmarks"]:
                name = bench.get("name", "?")
                stats = bench.get("stats", {})
                for stat in ("mean", "ops"):
                    value = stats.get(stat)
                    if isinstance(value, (int, float)):
                        out[f"{name}.{stat}"] = float(value)
            return out
        for key, value in payload.items():
            if key in skip:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[path] = float(value)
            elif isinstance(value, (dict, list)):
                out.update(_flatten(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            path = f"{prefix}[{index}]"
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[path] = float(value)
            elif isinstance(value, (dict, list)):
                out.update(_flatten(value, path))
    return out


def collect_bench(
    pattern: str = "BENCH_*.json",
) -> Dict[str, Tuple[Dict[str, float], Optional[Dict[str, float]]]]:
    """Latest and previous flattened metrics per benchmark file.

    Reads the bounded ``history`` list annotate_bench maintains; files
    without one (pre-v2) contribute a current snapshot but no deltas.
    """
    out: Dict[str, Tuple[Dict[str, float], Optional[Dict[str, float]]]] = {}
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        history = payload.get("history")
        if isinstance(history, list) and history:
            current = _flatten(history[-1].get("payload", {}))
            previous = (
                _flatten(history[-2].get("payload", {}))
                if len(history) > 1
                else None
            )
        else:
            current = _flatten(payload)
            previous = None
        out[os.path.basename(path)] = (current, previous)
    return out


# -- report history --------------------------------------------------------


def load_history(path: str) -> List[Dict[str, Any]]:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return []
    entries = doc.get("entries")
    return entries if isinstance(entries, list) else []


def append_history(
    path: str, entries: List[Dict[str, Any]], snapshot: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Append ``snapshot`` (unless identical to the tail) and rewrite."""
    if not entries or entries[-1] != snapshot:
        entries = entries + [snapshot]
    entries = entries[-HISTORY_LIMIT:]
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema_version": REPORT_HISTORY_SCHEMA_VERSION,
                "entries": entries,
            },
            handle,
            indent=1,
        )
        handle.write("\n")
    return entries


# -- deltas ----------------------------------------------------------------


def _diff_rows(
    source: str,
    current: Dict[str, float],
    previous: Optional[Dict[str, float]],
    threshold_pct: float,
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    if previous is None:
        return rows
    for metric in sorted(current):
        if metric not in previous:
            continue
        now, then = current[metric], previous[metric]
        if then == 0:
            continue
        delta_pct = 100.0 * (now - then) / abs(then)
        direction = metric_direction(metric)
        regression = False
        if direction < 0:
            regression = delta_pct > threshold_pct
        elif direction > 0:
            regression = delta_pct < -threshold_pct
        flag = "regression" if regression else (
            "improved"
            if direction != 0 and abs(delta_pct) > threshold_pct
            else ("changed" if abs(delta_pct) > threshold_pct else "ok")
        )
        rows.append(
            {
                "source": source,
                "metric": metric,
                "previous": then,
                "current": now,
                "delta_pct": delta_pct,
                "flag": flag,
            }
        )
    return rows


def build_report(
    results_dir: str = "results",
    bench_pattern: str = "BENCH_*.json",
    history_path: Optional[str] = None,
    threshold_pct: float = 5.0,
) -> Dict[str, Any]:
    """Collect, diff against the previous snapshot, update history."""
    if history_path is None:
        history_path = os.path.join(results_dir, "report_history.json")
    telemetry = collect_telemetry(results_dir)
    entries = load_history(history_path)
    previous_snapshot = entries[-1] if entries else None
    rows: List[Dict[str, Any]] = []
    for experiment, metrics in sorted(telemetry.items()):
        previous = (
            previous_snapshot.get(experiment)
            if previous_snapshot is not None
            else None
        )
        rows.extend(
            _diff_rows(experiment, metrics, previous, threshold_pct)
        )
    bench = collect_bench(bench_pattern)
    for name, (current, previous) in sorted(bench.items()):
        rows.extend(_diff_rows(name, current, previous, threshold_pct))
    append_history(history_path, entries, telemetry)
    return {
        "threshold_pct": threshold_pct,
        "experiments": sorted(telemetry),
        "bench_files": sorted(bench),
        "deltas": rows,
        "regressions": [r for r in rows if r["flag"] == "regression"],
        "had_previous": previous_snapshot is not None
        or any(prev is not None for _, prev in bench.values()),
    }


# -- rendering -------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_text(report: Dict[str, Any]) -> str:
    lines = [
        f"regression report (threshold {report['threshold_pct']:g}%)",
        f"experiments: {', '.join(report['experiments']) or '-'}",
        f"bench files: {', '.join(report['bench_files']) or '-'}",
    ]
    rows = report["deltas"]
    if not rows:
        lines.append(
            "no deltas: no previous snapshot to compare against "
            "(re-run after the next `repro run-all` / `make bench-*`)"
        )
        return "\n".join(lines)
    width = max(len(r["metric"]) for r in rows)
    source_w = max(len(r["source"]) for r in rows)
    for row in rows:
        lines.append(
            f"  {row['source']:<{source_w}}  {row['metric']:<{width}}  "
            f"{_format_value(row['previous']):>12} -> "
            f"{_format_value(row['current']):>12}  "
            f"{row['delta_pct']:+7.2f}%  {row['flag']}"
        )
    regressions = report["regressions"]
    lines.append(
        f"{len(rows)} deltas, {len(regressions)} regression(s)"
    )
    return "\n".join(lines)


def render_markdown(report: Dict[str, Any]) -> str:
    lines = [
        f"# Regression report",
        "",
        f"Threshold: {report['threshold_pct']:g}% — "
        f"{len(report['deltas'])} deltas, "
        f"{len(report['regressions'])} regression(s).",
        "",
        "| Source | Metric | Previous | Current | Δ% | Flag |",
        "|---|---|---:|---:|---:|---|",
    ]
    for row in report["deltas"]:
        lines.append(
            f"| {row['source']} | `{row['metric']}` | "
            f"{_format_value(row['previous'])} | "
            f"{_format_value(row['current'])} | "
            f"{row['delta_pct']:+.2f} | {row['flag']} |"
        )
    if not report["deltas"]:
        lines.append("| - | _no previous snapshot_ | | | | |")
    return "\n".join(lines)
