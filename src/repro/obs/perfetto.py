"""Chrome trace-event JSON export for span reports.

Converts a :class:`repro.obs.spans.SpanReport` into the Trace Event
Format that Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
both open: a ``{"traceEvents": [...]}`` document of complete events
(``ph: "X"``), instant events (``ph: "i"``) and counter events
(``ph: "C"``), with one *process* per runner cell and one *thread*
(track) per table / channel / repair lane.

Timestamps: trace-event ``ts``/``dur`` are microseconds; simulation
time is seconds, so everything is scaled by 1e6.  The export is
deterministic — events are ordered by span id / instant order, and no
wall-clock or RNG state is consulted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.spans import SpanReport

_US = 1_000_000.0


def _track_for(kind: str, label: str) -> str:
    return label if label else kind


def report_to_trace_events(report: SpanReport) -> Dict[str, Any]:
    """Build the trace-event document for one span report."""
    events: List[Dict[str, Any]] = []
    tids: Dict[Tuple[int, str], int] = {}
    cells_seen: set = set()

    def tid_for(cell: int, track: str) -> int:
        key = (cell, track)
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": cell,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        if cell not in cells_seen:
            cells_seen.add(cell)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": cell,
                    "tid": 0,
                    "args": {"name": f"cell {cell}"},
                }
            )
        return tid

    for span in report.spans:
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {
            "status": span.status,
            "key": repr(span.key),
        }
        if span.truncated:
            args["truncated"] = True
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        for name, value in span.fields.items():
            if isinstance(value, (bool, int, float, str)) or value is None:
                args[name] = value
            else:
                args[name] = repr(value)
        events.append(
            {
                "ph": "X",
                "name": f"{span.kind} {span.key!r}",
                "cat": span.kind,
                "ts": span.start * _US,
                "dur": max(0.0, end - span.start) * _US,
                "pid": span.cell,
                "tid": tid_for(span.cell, _track_for(span.kind, span.label)),
                "args": args,
            }
        )
    for cell, t, ev, fields in report.instants:
        if ev == "consistency_sample" and "value" in fields:
            session = fields.get("session", "session")
            events.append(
                {
                    "ph": "C",
                    "name": f"consistency {session}",
                    "cat": "run",
                    "ts": t * _US,
                    "pid": cell,
                    "tid": tid_for(cell, "consistency"),
                    "args": {"value": fields["value"]},
                }
            )
            continue
        args = {
            name: value
            if isinstance(value, (bool, int, float, str)) or value is None
            else repr(value)
            for name, value in fields.items()
        }
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": ev,
                "cat": "instant",
                "ts": t * _US,
                "pid": cell,
                "tid": tid_for(cell, "events"),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
