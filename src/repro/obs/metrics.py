"""The metric registry: counters, gauges, and fixed-bucket histograms.

Instrument model (deliberately Prometheus-shaped, but dependency-free):

* an instrument has a **name** (``repro_<noun>_<unit>[_total]``), a
  static **help** string, and a fixed tuple of **label names**;
* each distinct combination of label *values* is an independent
  **series** inside the instrument;
* a :class:`Counter` only goes up, a :class:`Gauge` holds the last
  value written, and a :class:`Histogram` buckets observations into
  fixed upper-edge buckets (counts are per-bucket, not cumulative,
  with an implicit overflow bucket past the last edge).

A :class:`Registry` owns instruments, renders a JSON-friendly,
deterministically ordered :meth:`Registry.snapshot`, and can
:meth:`Registry.merge` snapshots produced elsewhere — the parallel
experiment runner merges per-cell snapshots in cell order, which makes
the merged result identical for any ``--jobs`` value.

All of this is pure accounting: no instrument touches an RNG, the
simulation clock, or scheduling state, so instrumented runs produce
byte-identical simulation results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Registry"]

#: Default histogram upper edges, in seconds: spans the latency range the
#: paper's sessions produce (sub-100 ms hot-queue hits to multi-minute
#: cold-cycle repairs).
DEFAULT_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0
)


class _Instrument:
    """Common series bookkeeping for all three instrument kinds."""

    kind = "abstract"

    def __init__(self, name: str, help: str, labels: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    @property
    def cardinality(self) -> int:
        """Number of distinct label-value series in this instrument."""
        return len(self._series)

    def reset(self) -> None:
        """Drop every series (a fresh instrument keeps its definition)."""
        self._series.clear()

    def _describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
        }


class Counter(_Instrument):
    """A monotonically non-decreasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every series (all label combinations)."""
        return sum(self._series.values())


class Gauge(_Instrument):
    """A point-in-time value; the last write wins."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[self._key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._series.get(self._key(labels), 0.0)


class Histogram(_Instrument):
    """Observations bucketed by fixed upper edges.

    An observation lands in the first bucket whose edge is >= the value
    (upper edges are inclusive); values past the last edge land in the
    implicit overflow bucket.  Each series also tracks ``count`` and
    ``sum`` so means survive snapshot merges.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {edges}"
            )
        self.buckets = edges

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = {
                "count": 0,
                "sum": 0.0,
                "buckets": [0] * (len(self.buckets) + 1),
            }
            self._series[key] = series
        series["count"] += 1
        series["sum"] += value
        series["buckets"][self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                return i
        return len(self.buckets)

    def count(self, **labels: Any) -> int:
        series = self._series.get(self._key(labels))
        return series["count"] if series is not None else 0

    def mean(self, **labels: Any) -> float:
        series = self._series.get(self._key(labels))
        if series is None or series["count"] == 0:
            return float("nan")
        return series["sum"] / series["count"]

    def _describe(self) -> Dict[str, Any]:
        description = super()._describe()
        description["buckets"] = list(self.buckets)
        return description


class Registry:
    """A named collection of instruments with snapshot/merge/reset.

    Registration is idempotent: asking for an instrument that already
    exists returns it, provided kind, labels, and (for histograms)
    buckets match — a mismatch is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    # -- registration -------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labels))

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))

    def _register(self, candidate: _Instrument) -> _Instrument:
        existing = self._instruments.get(candidate.name)
        if existing is None:
            self._instruments[candidate.name] = candidate
            return candidate
        if type(existing) is not type(candidate) or (
            existing.label_names != candidate.label_names
        ):
            raise ValueError(
                f"instrument {candidate.name!r} already registered as "
                f"{existing.kind}{existing.label_names}; cannot re-register "
                f"as {candidate.kind}{candidate.label_names}"
            )
        if isinstance(candidate, Histogram) and (
            existing.buckets != candidate.buckets  # type: ignore[attr-defined]
        ):
            raise ValueError(
                f"histogram {candidate.name!r} already registered with "
                "different buckets"
            )
        return existing

    # -- access -------------------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument (definitions survive, series do not)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly, deterministically ordered dump.

        ``{name: {kind, help, labels, [buckets,] series: [{labels:
        [...], value: ...}, ...]}}`` with instruments and series sorted
        by name / label values.  Empty instruments are included, so a
        snapshot taken right after :meth:`reset` round-trips to the
        same set of definitions.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry = instrument._describe()
            entry["series"] = [
                {"labels": list(key), "value": instrument._series[key]}
                for key in sorted(instrument._series)
            ]
            out[name] = entry
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot into this registry.

        Counters and histogram buckets/sums add; gauges take the
        incoming value (last write wins).  Unknown instruments are
        created from the snapshot's own definition, so merging into an
        empty registry reconstructs the original exactly.  Merging the
        per-cell snapshots of a run in cell order therefore yields the
        same result for any worker count.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            labels = tuple(entry["labels"])
            if kind == "counter":
                instrument = self.counter(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    key = tuple(series["labels"])
                    instrument._series[key] = (
                        instrument._series.get(key, 0.0) + series["value"]
                    )
            elif kind == "gauge":
                instrument = self.gauge(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    instrument._series[tuple(series["labels"])] = series[
                        "value"
                    ]
            elif kind == "histogram":
                instrument = self.histogram(
                    name, entry.get("help", ""), labels, entry["buckets"]
                )
                for series in entry["series"]:
                    key = tuple(series["labels"])
                    mine = instrument._series.get(key)
                    if mine is None:
                        mine = {
                            "count": 0,
                            "sum": 0.0,
                            "buckets": [0] * (len(instrument.buckets) + 1),
                        }
                        instrument._series[key] = mine
                    value = series["value"]
                    mine["count"] += value["count"]
                    mine["sum"] += value["sum"]
                    for i, count in enumerate(value["buckets"]):
                        mine["buckets"][i] += count
            else:  # pragma: no cover - snapshots are produced by us
                raise ValueError(f"unknown instrument kind {kind!r}")
