"""A minimal JSON Schema validator (dependency-free, subset only).

CI validates emitted trace JSONL and ``telemetry.json`` files against
the schemas checked in under ``docs/``; pulling in the ``jsonschema``
package for that would add a runtime dependency the container may not
have, so this module implements exactly the draft-07 subset those
schemas use:

``type`` (string or list), ``properties``, ``required``,
``additionalProperties`` (bool or schema), ``items``, ``enum``,
``const``, ``minimum``, ``maximum``, ``minItems``, ``anyOf``, and
document-local ``$ref`` (``#/definitions/...`` pointers only).

Usage as a module::

    python -m repro.obs.schema results/figure3/trace.jsonl docs/trace.schema.json
    python -m repro.obs.schema results/figure3/telemetry.json docs/telemetry.schema.json

``.jsonl`` inputs are validated line by line; anything else is loaded
as a single JSON document.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

__all__ = ["SchemaError", "validate", "validate_file"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The instance does not conform to the schema."""


def _type_ok(value: Any, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    if expected is None:
        raise SchemaError(f"schema names unsupported type {name!r}")
    if expected is dict or expected is list or expected is str:
        return isinstance(value, expected)
    if expected is bool:
        return isinstance(value, bool)
    return value is None


def _resolve_ref(ref: str, root: Dict[str, Any], path: str) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaError(f"{path}: only document-local $ref supported, got {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        part = part.replace("~1", "/").replace("~0", "~")
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"{path}: unresolvable $ref {ref!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise SchemaError(f"{path}: $ref {ref!r} does not point at a schema")
    return node


def validate(
    instance: Any,
    schema: Dict[str, Any],
    path: str = "$",
    root: Optional[Dict[str, Any]] = None,
) -> None:
    """Raise :class:`SchemaError` if ``instance`` violates ``schema``."""
    if root is None:
        root = schema
    if "$ref" in schema:
        # Draft-07: $ref replaces any sibling keywords.
        validate(instance, _resolve_ref(schema["$ref"], root, path), path, root)
        return
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            f"{path}: expected const {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not one of {schema['enum']}"
        )
    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected type {names}, "
                f"got {type(instance).__name__} ({instance!r})"
            )
    if "anyOf" in schema:
        errors: List[str] = []
        for i, option in enumerate(schema["anyOf"]):
            try:
                validate(instance, option, f"{path}<anyOf:{i}>", root)
                break
            except SchemaError as exc:
                errors.append(str(exc))
        else:
            raise SchemaError(
                f"{path}: no anyOf branch matched ({'; '.join(errors)})"
            )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance} < minimum {schema['minimum']}"
            )
        if "maximum" in schema and instance > schema["maximum"]:
            raise SchemaError(
                f"{path}: {instance} > maximum {schema['maximum']}"
            )
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], f"{path}.{name}", root)
            else:
                extra = schema.get("additionalProperties", True)
                if extra is False:
                    raise SchemaError(f"{path}: unexpected key {name!r}")
                if isinstance(extra, dict):
                    validate(value, extra, f"{path}.{name}", root)
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise SchemaError(
                f"{path}: {len(instance)} items < minItems "
                f"{schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                validate(value, items, f"{path}[{i}]", root)


def validate_file(data_path: str, schema_path: str) -> int:
    """Validate a ``.json`` document or ``.jsonl`` stream; returns rows checked."""
    with open(schema_path, encoding="utf-8") as handle:
        schema = json.load(handle)
    checked = 0
    if data_path.endswith(".jsonl"):
        with open(data_path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SchemaError(
                        f"{data_path}:{lineno}: not valid JSON ({exc})"
                    ) from exc
                try:
                    validate(row, schema)
                except SchemaError as exc:
                    raise SchemaError(
                        f"{data_path}:{lineno}: {exc}"
                    ) from exc
                checked += 1
    else:
        with open(data_path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate(document, schema)
        checked = 1
    return checked


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: python -m repro.obs.schema <data.json|data.jsonl> "
            "<schema.json>",
            file=sys.stderr,
        )
        return 2
    data_path, schema_path = argv
    try:
        checked = validate_file(data_path, schema_path)
    except SchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    unit = "rows" if data_path.endswith(".jsonl") else "document(s)"
    print(f"OK: {data_path} — {checked} {unit} valid against {schema_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
