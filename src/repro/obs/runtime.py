"""Ambient observability state: the installed tracer, the default
metric registry, and the per-cell accounting context.

Every layer of the system reaches observability the same way: it reads
one module-level slot at *construction* time (an :class:`Environment`
caches the current tracer, a :class:`BandwidthLedger` binds instruments
from the current registry) and then uses plain guarded attributes on
the hot path.  Nothing here is imported conditionally and nothing costs
more than a ``None`` check when observability is off.

Three pieces of ambient state live here:

* the **tracer** (:func:`install_tracer` / :func:`current_tracer` /
  :func:`tracing`), picked up by every ``Environment``, table, and
  recorder created while it is installed;
* the **registry stack** (:func:`registry` / :func:`push_registry` /
  :func:`pop_registry`): the default :class:`~repro.obs.metrics.Registry`
  instruments publish into.  The experiment runner pushes a fresh
  registry around every cell so per-cell metrics never bleed into each
  other and can be merged deterministically afterwards;
* the **cell context** (:func:`cell_context`): wall-clock, kernel event
  counts, RNG substream ids, and session numbering for the cell the
  runner is currently executing.

This module deliberately imports nothing from the rest of ``repro`` so
that the kernel, the network model, and the metric views can all import
it without cycles.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Set

from repro.obs.metrics import Registry

__all__ = [
    "CellContext",
    "cell_context",
    "current_cell",
    "current_profiler",
    "current_tracer",
    "install_profiler",
    "install_tracer",
    "next_session_label",
    "next_trace_label",
    "note_events",
    "note_rng_stream",
    "note_shard",
    "pop_registry",
    "push_registry",
    "profiling",
    "registry",
    "tracing",
    "uninstall_profiler",
    "uninstall_tracer",
]


# -- tracer ----------------------------------------------------------------

_tracer = None


def install_tracer(tracer) -> None:
    """Make ``tracer`` the ambient tracer for everything created next.

    Objects cache the tracer at construction time (environments, tables,
    recorders), so install it *before* building the model to trace.
    """
    global _tracer
    # Ambient by design: tracing() saves and restores this slot around
    # every scoped use, and a cell's trace rides in its cached meta.
    _tracer = tracer  # repro-lint: disable=RPR104


def uninstall_tracer() -> None:
    global _tracer
    _tracer = None


def current_tracer():
    """The installed tracer, or ``None`` (the common, zero-cost case)."""
    return _tracer


@contextlib.contextmanager
def tracing(tracer) -> Iterator:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = _tracer
    install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


# -- profiler --------------------------------------------------------------
#
# Same contract as the tracer slot: an Environment caches the ambient
# profiler at construction and pays one slot load + jump per run() when
# none is installed.  The Profiler class itself lives in
# repro.obs.profile; this slot holds any object with the hook methods.

_profiler = None


def install_profiler(profiler) -> None:
    """Make ``profiler`` ambient for every Environment created next."""
    global _profiler
    _profiler = profiler


def uninstall_profiler() -> None:
    global _profiler
    _profiler = None


def current_profiler():
    """The installed profiler, or ``None`` (the zero-cost default)."""
    return _profiler


@contextlib.contextmanager
def profiling(profiler) -> Iterator:
    """Install ``profiler`` for the duration of a ``with`` block."""
    previous = _profiler
    install_profiler(profiler)
    try:
        yield profiler
    finally:
        install_profiler(previous)


# -- registry stack --------------------------------------------------------

_registries: List[Registry] = [Registry()]


def registry() -> Registry:
    """The registry instruments bind to when none is passed explicitly."""
    return _registries[-1]


def push_registry(reg: Optional[Registry] = None) -> Registry:
    """Make a (fresh by default) registry the ambient one; returns it."""
    if reg is None:
        reg = Registry()
    _registries.append(reg)
    return reg


def pop_registry() -> Registry:
    """Restore the previously ambient registry; returns the popped one."""
    if len(_registries) == 1:
        raise RuntimeError("cannot pop the root registry")
    return _registries.pop()


# -- cell context ----------------------------------------------------------


class CellContext:
    """Accounting scratchpad for one runner cell.

    The kernel reports processed-event counts here, ``RngStreams``
    reports the substream ids it derives, and metric views draw their
    per-cell session numbering from :meth:`next_session_id` so labels
    are deterministic regardless of how cells are distributed over
    worker processes.
    """

    __slots__ = (
        "events",
        "rng_streams",
        "registry",
        "shard",
        "_next_session",
        "_labels",
    )

    def __init__(self, registry: Registry) -> None:
        self.events = 0
        self.rng_streams: Set[str] = set()
        self.registry = registry
        #: Receiver-shard identity ({"index", "lo", "hi"}) when the cell
        #: simulates one shard of a partitioned population; None for
        #: ordinary cells.  Surfaced in the cell's telemetry meta.
        self.shard: Optional[Dict[str, int]] = None
        self._next_session = 0
        self._labels: Dict[str, int] = {}

    def next_session_id(self) -> int:
        sid = self._next_session
        self._next_session = sid + 1
        return sid

    def next_label_id(self, prefix: str) -> int:
        n = self._labels.get(prefix, 0)
        self._labels[prefix] = n + 1
        return n


_cell: Optional[CellContext] = None
#: Session numbering fallback used outside any cell context (direct
#: library use, unit tests): still unique, just process-global.
_global_session_counter = 0
_global_label_counters: Dict[str, int] = {}


def current_cell() -> Optional[CellContext]:
    return _cell


@contextlib.contextmanager
def cell_context() -> Iterator[CellContext]:
    """Run one cell under a fresh registry and a fresh accounting context.

    Nested use (a cell spawning sub-cells in-process) stacks cleanly:
    the inner context temporarily shadows the outer one.
    """
    global _cell
    previous = _cell
    reg = push_registry()
    _cell = ctx = CellContext(reg)
    try:
        yield ctx
    finally:
        _cell = previous
        pop_registry()


def note_events(count: int) -> None:
    """Credit ``count`` processed kernel events to the active cell."""
    if _cell is not None and count:
        # Accounting, not input: this feeds the cell's telemetry meta,
        # which the cache stores and replays alongside the result.
        _cell.events += count  # repro-lint: disable=RPR104


def note_rng_stream(stream_id: str) -> None:
    """Record that a deterministic RNG substream was derived."""
    if _cell is not None:
        _cell.rng_streams.add(stream_id)


def note_shard(info: Dict[str, int]) -> None:
    """Tag the active cell as simulating one receiver shard.

    Accounting, not input: the shard identity rides in the cell's
    telemetry meta so ``telemetry.json`` can attribute cost per shard.
    """
    if _cell is not None:
        # Accounting, not input: the shard tag never reaches the cached
        # result payload, and cached replays deliberately omit it.
        _cell.shard = dict(info)  # repro-lint: disable=RPR104


def next_session_label() -> str:
    """A deterministic per-cell session label (``s0``, ``s1``, ...).

    Inside a cell context the numbering restarts at ``s0`` for every
    cell, so labels are identical whether cells run sequentially in one
    process or forked over a pool.
    """
    global _global_session_counter
    if _cell is not None:
        return f"s{_cell.next_session_id()}"
    sid = _global_session_counter
    # Fallback branch only: under a cell context (every cacheable run)
    # the guarded branch above numbers from per-cell state instead.
    _global_session_counter = sid + 1  # repro-lint: disable=RPR104
    return f"s{sid}"


def next_trace_label(prefix: str) -> str:
    """A deterministic per-cell trace label (``c0``, ``t1``, ...).

    Channels and tables stamp their trace rows with these so events are
    attributable to a specific object.  Inside a cell context numbering
    restarts per cell per prefix — the ids a trace (and any checker
    verdict derived from it) contains are then invariant to ``--jobs``
    and to whatever ran earlier in the process.
    """
    if _cell is not None:
        return f"{prefix}{_cell.next_label_id(prefix)}"
    n = _global_label_counters.get(prefix, 0)
    # Fallback branch only: cacheable runs always execute under a cell
    # context, whose per-prefix numbering restarts deterministically.
    _global_label_counters[prefix] = n + 1  # repro-lint: disable=RPR104
    return f"{prefix}{n}"
