"""Structured tracing: typed, timestamped events from every layer.

A trace *record* is the compact tuple ``(t, category, event, fields)``:

* ``t`` — simulation time (``None`` for events with no clock in scope,
  e.g. a publisher-side delete issued from outside the kernel);
* ``category`` — one of :data:`CATEGORIES`; each category can be
  enabled or disabled independently;
* ``event`` — a short snake_case event name within the category (the
  taxonomy is documented in ``docs/OBSERVABILITY.md``);
* ``fields`` — a flat dict of JSON-serializable detail.

Hook sites follow one pattern — a *guarded attribute*::

    tr = self._trace            # cached at construction, often None
    if tr is not None and tr.kernel:
        tr.emit(KERNEL, "timer_set", self._now, delay=delay)

With no tracer installed the hook is a single load-and-jump; with a
tracer installed but the category disabled it is two.  Emitting never
touches an RNG or the event queue, so traced runs produce byte-identical
simulation results.

Sinks: :class:`RingBufferSink` keeps the last N records in memory;
:class:`JsonlSink` streams records to a JSON-Lines file whose rows
validate against ``docs/trace.schema.json``.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

__all__ = [
    "CATEGORIES",
    "FAULT",
    "JsonlSink",
    "KERNEL",
    "PACKET",
    "RECORD",
    "RUN",
    "RingBufferSink",
    "SPEC",
    "Tracer",
    "WARNING",
    "record_as_dict",
]

KERNEL = "kernel"
PACKET = "packet"
RECORD = "record"
FAULT = "fault"
RUN = "run"
WARNING = "warning"
SPEC = "spec"

CATEGORIES: Tuple[str, ...] = (KERNEL, PACKET, RECORD, FAULT, RUN, WARNING, SPEC)

TraceRecord = Tuple[Optional[float], str, str, Dict[str, Any]]


def record_as_dict(record: TraceRecord) -> Dict[str, Any]:
    """Flatten a trace tuple into the JSONL row shape."""
    t, category, event, fields = record
    row: Dict[str, Any] = {"t": t, "cat": category, "ev": event}
    row.update(fields)
    return row


def _jsonable(value: Any) -> Any:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory.

    ``capacity=None`` keeps everything — convenient for tests and short
    runs, dangerous for long ones.
    """

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        self._records: deque = deque(maxlen=capacity)
        self.total = 0

    def write(self, record: TraceRecord) -> None:
        self._records.append(record)
        self.total += 1

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records that have rotated out of the buffer."""
        return self.total - len(self._records)

    def flush(self) -> None:  # symmetric with JsonlSink
        pass

    def close(self) -> None:  # symmetric with JsonlSink
        pass


class JsonlSink:
    """Streams records to a JSON-Lines file, one object per line."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.total = 0

    def write(self, record: TraceRecord) -> None:
        row = {
            key: _jsonable(value)
            for key, value in record_as_dict(record).items()
        }
        self._file.write(json.dumps(row, separators=(",", ":")) + "\n")
        self.total += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class Tracer:
    """Dispatches trace records to a sink, with per-category gates.

    The per-category flags are plain bool attributes (``tracer.kernel``,
    ``tracer.packet``, ...) precomputed at construction so hook sites
    pay two attribute loads, not a set lookup, to discover a disabled
    category.
    """

    __slots__ = ("sink", "_enabled") + CATEGORIES

    def __init__(
        self,
        sink: Optional[Any] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.sink = sink if sink is not None else RingBufferSink()
        enabled = (
            set(CATEGORIES) if categories is None else set(categories)
        )
        unknown = enabled - set(CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown trace categories {sorted(unknown)}; "
                f"choose from {CATEGORIES}"
            )
        self._enabled = frozenset(enabled)
        for category in CATEGORIES:
            setattr(self, category, category in enabled)

    def enabled(self, category: str) -> bool:
        return category in self._enabled

    def emit(
        self,
        category: str,
        event: str,
        t: Optional[float],
        **fields: Any,
    ) -> None:
        """Write one record if ``category`` is enabled."""
        if category in self._enabled:
            self.sink.write((t, category, event, fields))

    # -- convenience for in-memory sinks ------------------------------------
    def records(
        self, category: Optional[str] = None
    ) -> List[TraceRecord]:
        """Buffered records (ring-buffer sinks only), optionally filtered."""
        records = self.sink.records()
        if category is None:
            return records
        return [record for record in records if record[1] == category]

    def counts(self) -> Dict[str, int]:
        """Buffered record tallies by category (ring-buffer sinks only)."""
        return dict(_TallyCounter(record[1] for record in self.sink.records()))

    def flush(self) -> None:
        """Push buffered records to durable storage without closing."""
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        self.sink.close()
