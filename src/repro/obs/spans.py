"""Causal lifecycle spans folded from the flat trace stream.

The tracer (docs/OBSERVABILITY.md) emits flat point events; the paper's
central quantities — consistency lag, false-expiry risk, repair latency
— are *lifecycle* properties of a record or a packet.  This module
folds the event stream into typed spans:

``record``
    ``record_inserted`` opens; ``record_updated`` / ``record_refreshed``
    / ``refresh_received`` mark refresh milestones; ``record_expired``
    or ``record_deleted`` closes.  A span still open when its cell ends
    closes with status ``live``.
``packet``
    ``packet_enqueued`` opens; ``packet_sent`` marks the queue →
    service transition (and closes multicast sends, whose per-receiver
    deliveries precede the aggregate ``packet_sent`` in the stream);
    ``packet_delivered`` / ``packet_lost`` close unicast sends.
``repair``
    ``repair_requested`` opens one span per requested target (a
    sequence number for NACK protocols, a namespace path for SSTP) and
    increments its depth on every re-request; ``repair_sent`` closes it
    when the sender commits the repair to its send queue.  Wire
    delivery of the repair rides ordinary packet spans.
``fault``
    ``fault_window`` is a closed span by construction (the injector
    emits its full interval).
``shard``
    ``shard_start`` opens one span per receiver-population shard of a
    sharded session (docs/SCALE.md); ``shard_end`` closes it with the
    shard's held-pair and false-expiry tallies in ``fields``.  The
    coordinator's ``shard_merge`` is an instant, not a span.

Spans carry parent links (a packet span parents the record install it
caused; an announce packet parents to the publisher's open record
span; a feedback packet parents to the newest open repair span) and a
per-span latency breakdown in ``fields`` (``queue_s``, ``delivery_s``,
``staleness_s``, ...).

Lossy input is first-class: events whose opening event was evicted
from a ring buffer (or cut off by a torn JSONL tail) produce spans
flagged ``truncated=True`` — reported, never silently dropped.

Use :class:`SpanBuilder` post-hoc (``repro spans <exp>``, or
:func:`build_from_file` / :func:`build_from_records`), or wrap a sink
with :class:`SpanSink` to fold spans live during a run, exactly like
the spec checker's ``CheckingSink``.  ``finalize()`` publishes the
derived metrics ``repro_record_staleness_seconds`` and
``repro_repair_chain_depth`` into the ambient registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs import runtime as _obs
from repro.spec.events import (
    TraceEvent,
    TruncatedTrace,
    iter_jsonl_events,
    iter_record_events,
)

#: Span kinds, in display order.
SPAN_KINDS = ("record", "packet", "repair", "fault", "shard")

#: Bucket edges for the derived staleness histogram (seconds of
#: sim-time between the last refresh and the expiry that closed the
#: span — the "how stale was it when it died" axis of Section 5).
STALENESS_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Bucket edges for the repair-chain-depth histogram (number of
#: requests a target needed before the sender serviced it).
DEPTH_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0)


@dataclass
class Span:
    """One reconstructed lifecycle interval.

    ``start``/``end`` are simulation seconds; ``end`` is ``None`` only
    while the span is still open inside the builder (finalize closes
    everything).  ``truncated`` marks spans whose opening event was
    missing from the input stream.
    """

    span_id: int
    kind: str
    cell: int
    label: str
    key: Any
    start: float
    end: Optional[float] = None
    status: str = "open"
    truncated: bool = False
    parent_id: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    marks: List[Tuple[float, str]] = field(default_factory=list)

    def duration(self) -> float:
        end = self.end if self.end is not None else self.start
        return max(0.0, end - self.start)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "cell": self.cell,
            "label": self.label,
            "key": self.key if _is_jsonable(self.key) else repr(self.key),
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "truncated": self.truncated,
            "parent_id": self.parent_id,
            "fields": {
                k: (v if _is_jsonable(v) else repr(v))
                for k, v in self.fields.items()
            },
            "marks": [[t, ev] for t, ev in self.marks],
        }


def _is_jsonable(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_jsonable(v) for v in value)
    return False


class SpanReport:
    """The outcome of folding one stream: spans plus reconciliation."""

    def __init__(
        self,
        spans: List[Span],
        counts: Dict[str, int],
        instants: List[Tuple[int, float, str, Dict[str, Any]]],
        truncated_input: bool,
    ) -> None:
        self.spans = spans
        self.counts = counts
        self.instants = instants
        self.truncated_input = truncated_input

    # -- aggregation -------------------------------------------------------

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.kind] = out.get(span.kind, 0) + 1
        return out

    def by_status(self, kind: Optional[str] = None) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            if kind is not None and span.kind != kind:
                continue
            out[span.status] = out.get(span.status, 0) + 1
        return out

    def truncated_spans(self) -> int:
        return sum(1 for span in self.spans if span.truncated)

    def reconciliation(self) -> Dict[str, Any]:
        """Span counts vs the raw event counts they must explain.

        Every ``record_inserted`` event must open exactly one
        non-truncated record span, and every ``refresh_received`` must
        land as a milestone on some record span — if either diverges
        the builder dropped a lifecycle on the floor.
        """
        record_spans = sum(
            1
            for span in self.spans
            if span.kind == "record" and not span.truncated
        )
        refresh_marks = sum(
            span.fields.get("refreshes_received", 0)
            for span in self.spans
            if span.kind == "record"
        )
        inserted = self.counts.get("record_inserted", 0)
        refreshed = self.counts.get("refresh_received", 0)
        return {
            "record_spans": record_spans,
            "record_inserted_events": inserted,
            "refresh_marks": refresh_marks,
            "refresh_received_events": refreshed,
            "reconciled": record_spans == inserted
            and refresh_marks == refreshed,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "spans": [span.as_dict() for span in self.spans],
            "counts": dict(sorted(self.counts.items())),
            "truncated_input": self.truncated_input,
            "truncated_spans": self.truncated_spans(),
            "reconciliation": self.reconciliation(),
        }

    def describe(self, limit: int = 10) -> str:
        """Human-readable summary for ``repro spans``."""
        lines: List[str] = []
        total = len(self.spans)
        lines.append(
            f"{total} spans"
            + (" (truncated input)" if self.truncated_input else "")
        )
        for kind in SPAN_KINDS:
            statuses = self.by_status(kind)
            if not statuses:
                continue
            breakdown = ", ".join(
                f"{count} {status}"
                for status, count in sorted(statuses.items())
            )
            lines.append(f"  {kind:<7} {breakdown}")
        truncated = self.truncated_spans()
        if truncated:
            lines.append(
                f"  {truncated} span(s) truncated: opening event missing "
                "from the input (ring eviction or torn tail)"
            )
        recon = self.reconciliation()
        mark = "ok" if recon["reconciled"] else "MISMATCH"
        lines.append(
            f"reconciliation [{mark}]: "
            f"{recon['record_spans']} record spans / "
            f"{recon['record_inserted_events']} record_inserted events; "
            f"{recon['refresh_marks']} refresh marks / "
            f"{recon['refresh_received_events']} refresh_received events"
        )
        longest = sorted(
            (s for s in self.spans if s.kind != "fault"),
            key=lambda s: -s.duration(),
        )[:limit]
        if longest:
            lines.append(f"longest {len(longest)} spans:")
            for span in longest:
                end = "…" if span.end is None else f"{span.end:.3f}"
                lines.append(
                    f"  #{span.span_id:<4} {span.kind:<7} "
                    f"{span.label:<5} key={span.key!r} "
                    f"[{span.start:.3f}, {end}] {span.duration():.3f}s "
                    f"{span.status}"
                    + (" truncated" if span.truncated else "")
                )
        return "\n".join(lines)


class SpanBuilder:
    """Fold a ``(t, cat, ev, fields)`` stream into lifecycle spans.

    Feed events with :meth:`feed_raw` (hot path, mirrors the spec
    checker's ``feed_raw``) or :meth:`feed`; call :meth:`finalize`
    once at the end.  Multi-cell streams are partitioned on the
    runner's ``run/cell_start`` marker, exactly like the checker: each
    cell restarts the clock, so open spans close at the boundary.
    """

    def __init__(self, truncated_input: bool = False) -> None:
        self.truncated_input = truncated_input
        self._spans: List[Span] = []
        self._counts: Dict[str, int] = {}
        self._instants: List[Tuple[int, float, str, Dict[str, Any]]] = []
        self._cell = 0
        self._last_t = 0.0
        # Open-span indexes.  Records key on (table, key); packets on
        # (chan, seq), with a FIFO per channel for seq-less packets
        # (NACKs/queries) since channels service strictly in order.
        self._open_records: Dict[Tuple[Any, Any], Span] = {}
        self._open_packets: Dict[Tuple[Any, Any], Span] = {}
        self._fifo_packets: Dict[Any, deque] = {}
        self._open_shards: Dict[Any, Span] = {}
        self._open_repairs: Dict[Tuple[str, Any], Span] = {}
        self._closed_repairs: Dict[Tuple[str, Any], Span] = {}
        self._repair_stack: List[Span] = []
        # Parent-link helpers: the publisher-side open record span per
        # key, and the most recent packet span seen carrying a key.
        self._publisher_record: Dict[Any, Span] = {}
        self._last_packet_by_key: Dict[Any, int] = {}
        self._dispatch = {
            "cell_start": self._on_cell_start,
            "record_inserted": self._on_record_inserted,
            "record_updated": self._on_record_touched,
            "record_refreshed": self._on_record_touched,
            "refresh_received": self._on_refresh_received,
            "record_deleted": self._on_record_closed,
            "record_expired": self._on_record_closed,
            "packet_enqueued": self._on_packet_enqueued,
            "packet_sent": self._on_packet_sent,
            "packet_delivered": self._on_packet_delivered,
            "packet_lost": self._on_packet_lost,
            "repair_requested": self._on_repair_requested,
            "repair_sent": self._on_repair_sent,
            "fault_window": self._on_fault_window,
            "shard_start": self._on_shard_start,
            "shard_end": self._on_shard_end,
            "shard_merge": self._on_instant,
            "summary_digest": self._on_instant,
            "summary_checked": self._on_instant,
            "fault_armed": self._on_instant,
            "consistency_sample": self._on_instant,
        }

    # -- feeding -----------------------------------------------------------

    def feed_raw(
        self, t: Optional[float], cat: str, ev: str, fields: Dict[str, Any]
    ) -> None:
        handler = self._dispatch.get(ev)
        if handler is None:
            return
        if t is not None and t > self._last_t:
            self._last_t = t
        self._counts[ev] = self._counts.get(ev, 0) + 1
        handler(t, ev, fields)

    def feed(self, event: TraceEvent) -> None:
        self.feed_raw(event.t, event.cat, event.ev, event.fields)

    # -- span bookkeeping --------------------------------------------------

    def _new_span(
        self,
        kind: str,
        label: Any,
        key: Any,
        start: Optional[float],
        truncated: bool = False,
        parent_id: Optional[int] = None,
    ) -> Span:
        span = Span(
            span_id=len(self._spans),
            kind=kind,
            cell=self._cell,
            label=str(label),
            key=key,
            start=self._last_t if start is None else start,
            truncated=truncated,
            parent_id=parent_id,
        )
        self._spans.append(span)
        return span

    def _close(self, span: Span, t: Optional[float], status: str) -> None:
        span.end = self._last_t if t is None else t
        span.status = status

    def _close_open_spans(self) -> None:
        """End-of-cell (or end-of-stream) closure of everything open."""
        for span in self._open_records.values():
            self._close(span, None, "live")
        for span in self._open_packets.values():
            self._close(span, None, "in_flight")
        for fifo in self._fifo_packets.values():
            for span in fifo:
                self._close(span, None, "in_flight")
        for span in self._open_repairs.values():
            self._close(span, None, "unrepaired")
        for span in self._open_shards.values():
            self._close(span, None, "running")
        self._open_records.clear()
        self._open_packets.clear()
        self._fifo_packets.clear()
        self._open_repairs.clear()
        self._open_shards.clear()
        self._closed_repairs.clear()
        self._repair_stack.clear()
        self._publisher_record.clear()
        self._last_packet_by_key.clear()

    # -- handlers ----------------------------------------------------------

    def _on_cell_start(self, t, ev, fields) -> None:
        self._close_open_spans()
        self._cell = fields.get("index", self._cell + 1)
        self._last_t = 0.0

    def _on_record_inserted(self, t, ev, fields) -> None:
        key = (fields.get("table"), fields.get("key"))
        parent = self._last_packet_by_key.get(fields.get("key"))
        span = self._new_span(
            "record", fields.get("table"), fields.get("key"), t,
            parent_id=parent,
        )
        span.fields["role"] = fields.get("role")
        span.fields["refreshes"] = 0
        span.fields["refreshes_received"] = 0
        span.fields["last_refresh"] = span.start
        self._open_records[key] = span
        if fields.get("role") == "publisher":
            self._publisher_record[fields.get("key")] = span

    def _orphan_record(self, t, fields) -> Span:
        """A lifecycle event for a record whose install we never saw."""
        span = self._new_span(
            "record", fields.get("table"), fields.get("key"), t,
            truncated=True,
        )
        span.fields["role"] = fields.get("role")
        span.fields["refreshes"] = 0
        span.fields["refreshes_received"] = 0
        span.fields["last_refresh"] = span.start
        self._open_records[(fields.get("table"), fields.get("key"))] = span
        return span

    def _touch_record(self, t, ev, fields, received: bool) -> None:
        key = (fields.get("table"), fields.get("key"))
        span = self._open_records.get(key)
        if span is None:
            span = self._orphan_record(t, fields)
        span.fields["refreshes"] += 1
        if received:
            span.fields["refreshes_received"] += 1
        if t is not None:
            span.fields["last_refresh"] = t
            span.marks.append((t, ev))

    def _on_record_touched(self, t, ev, fields) -> None:
        self._touch_record(t, ev, fields, received=False)

    def _on_refresh_received(self, t, ev, fields) -> None:
        self._touch_record(t, ev, fields, received=True)

    def _on_record_closed(self, t, ev, fields) -> None:
        key = (fields.get("table"), fields.get("key"))
        span = self._open_records.pop(key, None)
        if span is None:
            span = self._orphan_record(t, fields)
            self._open_records.pop(key, None)
        status = "expired" if ev == "record_expired" else "deleted"
        self._close(span, t, status)
        if ev == "record_expired" and not span.truncated:
            span.fields["staleness_s"] = max(
                0.0, span.end - span.fields["last_refresh"]
            )
        if self._publisher_record.get(fields.get("key")) is span:
            del self._publisher_record[fields.get("key")]

    def _on_packet_enqueued(self, t, ev, fields) -> None:
        chan = fields.get("chan")
        seq = fields.get("seq")
        key = fields.get("key")
        parent: Optional[int] = None
        if key is not None and key in self._publisher_record:
            parent = self._publisher_record[key].span_id
        elif fields.get("kind") in ("nack", "query") and self._repair_stack:
            parent = self._repair_stack[-1].span_id
        span = self._new_span("packet", chan, seq, t, parent_id=parent)
        span.fields["kind"] = fields.get("kind")
        span.fields["key"] = key
        span.fields["delivered"] = 0
        if seq is None:
            self._fifo_packets.setdefault(chan, deque()).append(span)
        else:
            self._open_packets[(chan, seq)] = span

    def _find_packet(self, fields, pop: bool) -> Optional[Span]:
        chan = fields.get("chan")
        seq = fields.get("seq")
        if seq is not None:
            if pop:
                return self._open_packets.pop((chan, seq), None)
            return self._open_packets.get((chan, seq))
        fifo = self._fifo_packets.get(chan)
        if not fifo:
            return None
        return fifo.popleft() if pop else fifo[0]

    def _orphan_packet(self, t, fields) -> Span:
        span = self._new_span(
            "packet", fields.get("chan"), fields.get("seq"), t,
            truncated=True,
        )
        span.fields["kind"] = fields.get("kind")
        span.fields["delivered"] = 0
        return span

    def _on_packet_sent(self, t, ev, fields) -> None:
        multicast = "receivers" in fields
        span = self._find_packet(fields, pop=multicast)
        if span is None:
            span = self._orphan_packet(t, fields)
            if not multicast:
                # Deliveries/losses for this packet may still follow.
                seq = fields.get("seq")
                if seq is None:
                    self._fifo_packets.setdefault(
                        fields.get("chan"), deque()
                    ).appendleft(span)
                else:
                    self._open_packets[(fields.get("chan"), seq)] = span
        if t is not None:
            span.fields["queue_s"] = max(0.0, t - span.start)
            span.marks.append((t, ev))
            span.fields["sent_at"] = t
        if multicast:
            receivers = fields.get("receivers", 0)
            lost = fields.get("lost", 0)
            span.fields["receivers"] = receivers
            span.fields["lost"] = lost
            status = "delivered" if lost < receivers else "lost"
            self._close(span, t, status if receivers else "sent")

    def _on_packet_delivered(self, t, ev, fields) -> None:
        if "receiver" in fields:
            # Multicast per-receiver delivery; the aggregate
            # packet_sent that closes the span follows in the stream.
            span = self._find_packet(fields, pop=False)
            if span is None:
                span = self._orphan_packet(t, fields)
                seq = fields.get("seq")
                if seq is not None:
                    self._open_packets[(fields.get("chan"), seq)] = span
            span.fields["delivered"] += 1
        else:
            span = self._find_packet(fields, pop=True)
            if span is None:
                span = self._orphan_packet(t, fields)
            span.fields["delivered"] += 1
            sent_at = span.fields.get("sent_at")
            if t is not None and sent_at is not None:
                span.fields["delivery_s"] = max(0.0, t - sent_at)
            self._close(span, t, "delivered")
        key = fields.get("key", span.fields.get("key"))
        if key is not None:
            self._last_packet_by_key[key] = span.span_id

    def _on_packet_lost(self, t, ev, fields) -> None:
        span = self._find_packet(fields, pop=True)
        if span is None:
            span = self._orphan_packet(t, fields)
        self._close(span, t, "lost")

    @staticmethod
    def _repair_targets(fields) -> List[Tuple[str, Any]]:
        if "seqs" in fields:
            return [("seq", seq) for seq in fields["seqs"]]
        if "seq" in fields:
            return [("seq", fields["seq"])]
        if "path" in fields:
            return [("path", fields["path"])]
        return []

    def _on_repair_requested(self, t, ev, fields) -> None:
        for target in self._repair_targets(fields):
            span = self._open_repairs.get(target)
            if span is None:
                span = self._new_span("repair", "repairs", target[1], t)
                span.fields["target_kind"] = target[0]
                span.fields["requests"] = 0
                self._open_repairs[target] = span
                self._repair_stack.append(span)
            span.fields["requests"] += 1
            if t is not None:
                span.marks.append((t, ev))

    def _on_repair_sent(self, t, ev, fields) -> None:
        for target in self._repair_targets(fields):
            span = self._open_repairs.pop(target, None)
            if span is None:
                previous = self._closed_repairs.get(target)
                if previous is not None:
                    # A second service for an already-repaired target
                    # (two requests in flight before the first repair
                    # landed): a real duplicate service, not data loss.
                    span = self._new_span(
                        "repair", "repairs", target[1], t,
                        parent_id=previous.span_id,
                    )
                    span.fields["duplicate"] = True
                else:
                    # Request evicted (or serviced from state predating
                    # the stream): still a repair, but a truncated one.
                    span = self._new_span(
                        "repair", "repairs", target[1], t, truncated=True
                    )
                span.fields["target_kind"] = target[0]
                span.fields["requests"] = 0
            else:
                self._repair_stack.remove(span)
            self._close(span, t, "repaired")
            span.fields["repair_s"] = span.duration()
            self._closed_repairs[target] = span

    def _on_fault_window(self, t, ev, fields) -> None:
        start = fields.get("start", t)
        end = fields.get("end", t)
        span = self._new_span("fault", "faults", fields.get("label"), start)
        span.fields["fault_kind"] = fields.get("kind")
        self._close(span, end, "window")

    def _on_shard_start(self, t, ev, fields) -> None:
        key = fields.get("shard")
        span = self._new_span("shard", "shards", key, t)
        span.fields["lo"] = fields.get("lo")
        span.fields["hi"] = fields.get("hi")
        span.fields["receivers"] = fields.get("receivers")
        self._open_shards[key] = span

    def _on_shard_end(self, t, ev, fields) -> None:
        key = fields.get("shard")
        span = self._open_shards.pop(key, None)
        if span is None:
            span = self._new_span("shard", "shards", key, t, truncated=True)
        span.fields["held"] = fields.get("held")
        span.fields["false_expiries"] = fields.get("false_expiries")
        self._close(span, t, "merged")

    def _on_instant(self, t, ev, fields) -> None:
        self._instants.append(
            (self._cell, self._last_t if t is None else t, ev, fields)
        )

    # -- finalisation ------------------------------------------------------

    def finalize(self, truncated: bool = False) -> SpanReport:
        """Close open spans, publish derived metrics, return the report."""
        self._close_open_spans()
        if truncated:
            self.truncated_input = True
        registry = _obs.registry()
        staleness = registry.histogram(
            "repro_record_staleness_seconds",
            "Sim-time gap between the last refresh and the expiry that "
            "closed a record span",
            ("role",),
            buckets=STALENESS_BUCKETS,
        )
        depth = registry.histogram(
            "repro_repair_chain_depth",
            "Requests a repair target needed before the sender serviced it",
            (),
            buckets=DEPTH_BUCKETS,
        )
        for span in self._spans:
            if span.kind == "record" and "staleness_s" in span.fields:
                staleness.observe(
                    span.fields["staleness_s"],
                    role=str(span.fields.get("role")),
                )
            elif (
                span.kind == "repair"
                and not span.truncated
                and not span.fields.get("duplicate")
            ):
                depth.observe(float(span.fields.get("requests", 0)))
        return SpanReport(
            self._spans,
            self._counts,
            self._instants,
            self.truncated_input,
        )


class SpanSink:
    """Sink wrapper that folds spans live while forwarding records.

    Mirror of the spec checker's ``CheckingSink``: wrap any sink, pass
    the wrapper to ``Tracer``, and every record is both persisted and
    fed to the builder.  Call :meth:`finalize` after the run.
    """

    def __init__(
        self, inner, builder: Optional[SpanBuilder] = None
    ) -> None:
        self.inner = inner
        self.builder = builder if builder is not None else SpanBuilder()
        self._inner_write = inner.write
        self._feed = self.builder.feed_raw

    def write(self, record) -> None:
        self._inner_write(record)
        t, cat, ev, fields = record
        self._feed(t, cat, ev, fields)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def finalize(self) -> SpanReport:
        return self.builder.finalize()


def build_from_events(
    events: Iterable[TraceEvent], truncated: bool = False
) -> SpanReport:
    builder = SpanBuilder()
    for event in events:
        builder.feed(event)
    return builder.finalize(truncated=truncated)


def build_from_records(records, dropped: int = 0) -> SpanReport:
    """Build spans from in-memory ``(t, cat, ev, fields)`` tuples.

    ``dropped`` is the ring-buffer eviction count
    (``RingBufferSink.dropped``); a non-zero value marks the report's
    input as truncated, and spans whose opening event was evicted come
    back flagged ``truncated=True`` rather than vanishing.
    """
    return build_from_events(
        iter_record_events(records), truncated=dropped > 0
    )


def build_from_file(path: str) -> SpanReport:
    """Build spans from a trace JSONL file, tolerating a torn tail."""
    builder = SpanBuilder()
    truncated = False
    with open(path, encoding="utf-8") as handle:
        try:
            for event in iter_jsonl_events(handle):
                builder.feed(event)
        except TruncatedTrace:
            truncated = True
    return builder.finalize(truncated=truncated)
