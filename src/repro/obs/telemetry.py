"""Run telemetry: per-cell cost accounting and the ``telemetry.json`` file.

The parallel runner wraps every cell in a
:func:`repro.obs.runtime.cell_context`; this module holds what comes
out of it — one :class:`CellMeta` per cell (wall time, kernel event
count, events/sec, optional peak heap, the RNG substream ids the cell
derived, and the cell's metric-registry snapshot) — plus the
:class:`RunTelemetry` collector that aggregates cells into the
machine-readable ``results/<experiment>/telemetry.json`` payload
(validated by ``docs/telemetry.schema.json``).

Peak-heap sampling uses :mod:`tracemalloc` and is opt-in via the
``REPRO_TRACEMALLOC=1`` environment variable because it slows cells
down noticeably; everything else is cheap enough to collect always.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Registry

__all__ = [
    "CellMeta",
    "RunTelemetry",
    "TELEMETRY_SCHEMA_VERSION",
    "active_run",
    "begin_run",
    "end_run",
    "host_metadata",
    "tracemalloc_enabled",
    "write_telemetry",
]

TELEMETRY_SCHEMA_VERSION = 1


def host_metadata() -> Dict[str, Any]:
    """Enough host identity to compare telemetry across machines."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
    }


def tracemalloc_enabled() -> bool:
    return os.environ.get("REPRO_TRACEMALLOC", "") not in ("", "0")


@dataclass
class CellMeta:
    """Cost accounting for one runner cell."""

    index: int
    wall_s: float
    events: int
    peak_heap_bytes: Optional[int] = None
    rng_streams: List[str] = field(default_factory=list)
    registry: Dict[str, Any] = field(default_factory=dict)
    #: True when the result-cache store served this cell (the events /
    #: rng_streams / registry fields are then replayed from the entry
    #: recorded at compute time; wall_s is the lookup cost, ~0).
    cached: bool = False
    #: Wall-time attribution snapshot (repro.obs.profile) — present
    #: only when the run opted in via REPRO_PROFILE=1.
    profile: Optional[Dict[str, Any]] = None
    #: Receiver-shard identity ({"index", "lo", "hi"}) for cells that
    #: simulate one shard of a partitioned population (repro.protocols
    #: .sharded); optional, schema version unchanged.
    shard: Optional[Dict[str, int]] = None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "index": self.index,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "peak_heap_bytes": self.peak_heap_bytes,
            "rng_streams": self.rng_streams,
            "cached": self.cached,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        if self.shard is not None:
            payload["shard"] = self.shard
        return payload


class RunTelemetry:
    """Per-run collector: cells arrive in submission order from the runner."""

    def __init__(self, experiment_id: str = "") -> None:
        self.experiment_id = experiment_id
        self.cells: List[CellMeta] = []
        self.wall_s = 0.0
        self.jobs = 1
        self.seed = 0
        self.quick = False
        #: Result-cache accounting (repro.cache): whether a store was
        #: active for this run, and its per-run hit/miss totals.
        self.cache_enabled = False
        self.cache_hits = 0
        self.cache_misses = 0

    def record_cell(self, meta: CellMeta) -> None:
        self.cells.append(meta)

    def note_cache(self, hits: int, misses: int) -> None:
        """Accumulate one ``map_cells`` round of store lookups."""
        self.cache_enabled = True
        self.cache_hits += hits
        self.cache_misses += misses

    def merged_registry(self) -> Registry:
        """Per-cell registry snapshots folded together, in cell order.

        Counters and histograms sum across cells; because the fold
        order is cell-submission order (not completion order), the
        merged registry is identical for any ``--jobs`` value.
        """
        merged = Registry()
        for meta in self.cells:
            merged.merge(meta.registry)
        return merged

    @property
    def events(self) -> int:
        return sum(meta.events for meta in self.cells)

    def merged_profile(self) -> Optional[Dict[str, Any]]:
        """Per-cell profile snapshots folded together, in cell order.

        ``None`` unless at least one cell carried a profile block
        (REPRO_PROFILE=1).  Raw sampled figures sum across cells.
        """
        from repro.obs.profile import Profiler

        merged: Optional[Dict[str, Any]] = None
        for meta in self.cells:
            if meta.profile is not None:
                merged = Profiler.merge(merged, meta.profile)
        if merged is not None:
            merged["enabled"] = True
        return merged

    def as_dict(self) -> Dict[str, Any]:
        events = self.events
        profile = self.merged_profile()
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "experiment": self.experiment_id,
            "host": host_metadata(),
            "run": {
                "jobs": self.jobs,
                "seed": self.seed,
                "quick": self.quick,
                "wall_s": self.wall_s,
                "cells": len(self.cells),
                "events": events,
                "events_per_sec": (
                    events / self.wall_s if self.wall_s > 0 else 0.0
                ),
                "cache": {
                    "enabled": self.cache_enabled,
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                },
            },
            "cells": [meta.as_dict() for meta in self.cells],
            "registry": self.merged_registry().snapshot(),
            **({"profile": profile} if profile is not None else {}),
        }


def write_telemetry(path: str, payload: Dict[str, Any]) -> None:
    """Write a telemetry payload as stable, human-diffable JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


# -- ambient run collector --------------------------------------------------
#
# ``run_experiment`` begins a run; ``map_cells`` feeds cell metas to the
# active collector (always from the parent process — pooled workers ship
# their metas back with the cell result).  Nested runs stack.

_runs: List[RunTelemetry] = []


def begin_run(experiment_id: str = "") -> RunTelemetry:
    run = RunTelemetry(experiment_id)
    _runs.append(run)
    return run


def end_run() -> RunTelemetry:
    if not _runs:
        raise RuntimeError("no active telemetry run")
    return _runs.pop()


def active_run() -> Optional[RunTelemetry]:
    return _runs[-1] if _runs else None
