"""Opt-in wall-time attribution: per DES process and per trace category.

``repro_stats``/telemetry answer *what the model did*; this module
answers *where the wall clock went*.  Two attribution axes:

* **per DES process** — :class:`Profiler` rides the kernel's event
  loop (``Environment._run_profiled``) and attributes callback wall
  time to the generator name of the process an event resumed (or the
  event type, for bare callbacks);
* **per trace category** — :class:`ProfilingSink` wraps any sink and
  times each ``write`` under the record's category, so a traced run
  shows what the JSONL/ring persistence itself costs.

Cost model: ``time.perf_counter()`` is comparable in cost to the
kernel's per-event work, so exact per-event timing would blow the CI
overhead budget.  The profiler therefore *samples*: every
``sample_every``-th event is timed and the estimate scales by the
sampling factor.  The countdown is a plain deterministic counter — no
RNG, no clock reads outside the sampled window — so a profiled run's
simulation results stay byte-identical to an unprofiled run
(``benchmarks/overhead_check.py`` gates the <10% enabled budget).

Enablement mirrors ``REPRO_TRACEMALLOC``: set ``REPRO_PROFILE=1`` and
the experiment runner installs a profiler around every cell, recording
a ``profile`` block per cell and an aggregate in ``telemetry.json``
(docs/telemetry.schema.json).  Programmatic use::

    from repro.obs import Profiler, profiling

    with profiling(Profiler()) as prof:
        run_experiment("figure3", quick=True)
    print(prof.snapshot())
"""

from __future__ import annotations

import os
from time import perf_counter as _perf_counter
from typing import Any, Dict, Optional

#: Default sampling factor: one in this many events is timed.  16 keeps
#: the measured enabled overhead a few percent on the kernel microbench
#: while still attributing thousands of samples per quick cell.
DEFAULT_SAMPLE_EVERY = 16


def profile_enabled() -> bool:
    """True when ``REPRO_PROFILE=1`` opts runs into wall-time profiling."""
    return os.environ.get("REPRO_PROFILE", "") == "1"


class Profiler:
    """Sampled wall-time accumulator keyed by process / category name.

    ``processes`` and ``categories`` map a name to ``[sampled_calls,
    sampled_wall_s]`` — *raw sampled* figures; multiply by
    ``sample_every`` for the estimate (:meth:`snapshot` reports both
    raw fields and the factor, so downstream consumers can scale or
    re-aggregate without losing information).
    """

    __slots__ = ("sample_every", "processes", "categories", "_countdown")

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.processes: Dict[str, list] = {}
        self.categories: Dict[str, list] = {}
        self._countdown = sample_every

    # -- hot-path hooks (called from guarded sites only) -------------------

    def account(self, key: str, seconds: float) -> None:
        """Credit one sampled callback batch to a process key."""
        entry = self.processes.get(key)
        if entry is None:
            self.processes[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def account_category(self, category: str, seconds: float) -> None:
        """Credit one (unsampled) sink write to a trace category."""
        entry = self.categories.get(category)
        if entry is None:
            self.categories[category] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: raw sampled figures plus the sampling factor.

        ``processes`` entries estimate via ``sample_every``;
        ``categories`` entries are exact (sink writes are rare enough
        to time each one).
        """
        return {
            "sample_every": self.sample_every,
            "processes": {
                key: {
                    "sampled_calls": calls,
                    "sampled_wall_s": wall,
                    "wall_s_est": wall * self.sample_every,
                }
                for key, (calls, wall) in sorted(self.processes.items())
            },
            "categories": {
                key: {"calls": calls, "wall_s": wall}
                for key, (calls, wall) in sorted(self.categories.items())
            },
        }

    @staticmethod
    def merge(
        aggregate: Optional[Dict[str, Any]], snapshot: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Fold one cell's snapshot into a run-level aggregate.

        Raw sampled figures sum; the sampling factor must agree (cells
        of one run share the env-var/default configuration).
        """
        if aggregate is None:
            aggregate = {
                "sample_every": snapshot["sample_every"],
                "processes": {},
                "categories": {},
            }
        for section in ("processes", "categories"):
            into = aggregate[section]
            for key, entry in snapshot.get(section, {}).items():
                target = into.setdefault(
                    key, {field: 0 for field in entry}
                )
                for field, value in entry.items():
                    target[field] = target.get(field, 0) + value
        return aggregate


class ProfilingSink:
    """Sink wrapper that times every ``write`` under its trace category.

    Composable with ``JsonlSink``/``RingBufferSink`` and the other
    wrappers (``CheckingSink``, ``SpanSink``): whatever ``inner`` does
    — serialise, check, fold spans — is attributed to the record's
    category in the profiler's ``categories`` table.
    """

    def __init__(self, inner, profiler: Profiler) -> None:
        self.inner = inner
        self.profiler = profiler
        self._inner_write = inner.write
        self._account = profiler.account_category

    def write(self, record) -> None:
        start = _perf_counter()  # repro-lint: disable=RPR002
        self._inner_write(record)
        self._account(record[1], _perf_counter() - start)  # repro-lint: disable=RPR002

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()
