"""Discrete-event simulation kernel.

A small, deterministic, process-interaction simulation engine in the style
of simpy (which is not available in this environment).  Simulation
processes are plain Python generators that yield *events*; the
:class:`~repro.des.core.Environment` advances virtual time and resumes
processes when the events they wait on are triggered.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def clock(env, ticks):
...     for _ in range(ticks):
...         yield env.timeout(1.0)
>>> _ = env.process(clock(env, 3))
>>> env.run()
>>> env.now
3.0
"""

from repro.des.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.des.resources import (
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)
from repro.des.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "Store",
    "Timeout",
]
