"""Deterministic random-number streams for simulations.

Simulations need several independent randomness sources (arrivals, loss,
lifetimes, scheduling lotteries, ...).  Drawing them all from one
generator couples unrelated parts of the model: adding a draw in one
place perturbs every other stream.  :class:`RngStreams` derives a named,
stable substream per purpose from a single root seed, so results are
reproducible and streams are decoupled.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

from repro.obs import runtime as _obs


class RngStreams:
    """A family of named, independently seeded ``random.Random`` streams.

    >>> streams = RngStreams(seed=42)
    >>> streams["loss"].random() == RngStreams(seed=42)["loss"].random()
    True
    >>> streams["loss"] is streams["arrivals"]
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def __getitem__(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive(name))
            self._streams[name] = stream
            # Run telemetry records which substreams a cell derived —
            # a no-op outside the experiment runner's cell context.
            _obs.note_rng_stream(f"{self.seed}:{name}")
        return stream

    def _derive(self, name: str) -> int:
        """Map (root seed, stream name) to a well-mixed 64-bit seed."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def spawn(self, name: str) -> "RngStreams":
        """Create a child family (e.g. one per receiver) with its own root."""
        return RngStreams(self._derive(f"spawn:{name}"))

    def __repr__(self) -> str:
        return f"<RngStreams seed={self.seed} streams={sorted(self._streams)}>"
