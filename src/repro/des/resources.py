"""Shared resources for the simulation kernel.

Provides the standard process-interaction resource types:

* :class:`Resource` — a counted resource with FIFO request queueing
  (``with resource.request() as req: yield req``).
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (lower value is served first).
* :class:`Store` — an unbounded-or-capacity-limited queue of arbitrary
  Python objects with blocking ``put``/``get``.
* :class:`FilterStore` — a :class:`Store` whose ``get`` takes a predicate.
* :class:`Container` — a continuous level (e.g. tokens of bandwidth
  credit) with blocking ``put``/``get`` of amounts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.des.core import Environment, Event, SimulationError


class _Request(Event):
    """Pending claim on a :class:`Resource` slot.  Context-manager aware."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw the queued request)."""
        self.resource._do_release(self)


class _PriorityRequest(_Request):
    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        self.priority = priority
        self.order = resource._next_order()
        super().__init__(resource)


class Resource:
    """A resource with ``capacity`` slots and FIFO waiters."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: list[_Request] = []
        self._waiters: list[_Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> _Request:
        return _Request(self)

    def _do_request(self, request: _Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiters.append(request)

    def _do_release(self, request: _Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        elif request in self._waiters:
            self._waiters.remove(request)

    def _pop_next(self) -> Optional[_Request]:
        return self._waiters.pop(0) if self._waiters else None

    def _grant_next(self) -> None:
        while len(self._users) < self.capacity:
            nxt = self._pop_next()
            if nxt is None:
                return
            self._users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served by ascending priority."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._order = 0

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    def request(self, priority: int = 0) -> _PriorityRequest:  # type: ignore[override]
        return _PriorityRequest(self, priority)

    def _pop_next(self) -> Optional[_Request]:
        if not self._waiters:
            return None
        best = min(self._waiters, key=lambda r: (r.priority, r.order))
        self._waiters.remove(best)
        return best


class Store:
    """A queue of items with blocking put/get.

    ``capacity`` bounds the number of stored items; ``put`` blocks while
    full, ``get`` blocks while empty.  Items come out in FIFO order.
    """

    def __init__(
        self, env: Environment, capacity: float = float("inf")
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        # A deque: the overwhelmingly common case is FIFO head removal,
        # which must be O(1) — channels can build deep backlogs.
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is stored."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        self._getters.append(event)
        self._serve_getters()
        return event

    def _eligible(self, event: Event) -> Optional[Any]:
        """Pick the item ``event`` may take, or None.  Hook for subclasses."""
        return self.items[0] if self.items else None

    def _serve_getters(self) -> None:
        served = True
        while served:
            served = False
            for getter in list(self._getters):
                item = self._eligible(getter)
                if item is None:
                    continue
                if self.items and self.items[0] is item:
                    self.items.popleft()  # O(1) FIFO fast path
                else:
                    self.items.remove(item)
                self._getters.remove(getter)
                getter.succeed(item)
                served = True
                self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


class _FilterGet(Event):
    """A pending filtered ``get``; carries its predicate (Event is slotted)."""

    __slots__ = ("_filter",)

    def __init__(self, env: Environment, filter: Callable[[Any], bool]) -> None:
        super().__init__(env)
        self._filter = filter


class FilterStore(Store):
    """A :class:`Store` whose ``get`` accepts only matching items."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> Event:  # type: ignore[override]
        event = _FilterGet(self.env, filter)
        self._getters.append(event)
        self._serve_getters()
        return event

    def _eligible(self, event: Event) -> Optional[Any]:
        predicate = getattr(event, "_filter", lambda item: True)
        for item in self.items:
            if predicate(item):
                return item
        return None


class Container:
    """A continuous quantity with blocking put/get of amounts."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: list[tuple[Event, float]] = []
        self._getters: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed()
                    progressed = True
