"""Core of the discrete-event simulation kernel.

The design follows the classic process-interaction style: an
:class:`Environment` owns a priority queue of scheduled events, and
:class:`Process` objects wrap Python generators that ``yield`` events to
wait on.  When a yielded event is *triggered*, the process is resumed with
the event's value (or the event's exception is thrown into it).

Determinism: events scheduled for the same simulation time are processed
in (priority, insertion-order), so a seeded simulation is fully
reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Event priority for "urgent" bookkeeping events (process resumption
#: after an interrupt, condition bookkeeping).  Lower sorts first.
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation API (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A happening at a point in simulation time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it onto the environment's queue; when the
    environment pops it, all registered callbacks run and the event
    becomes *processed*.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: True once a failure has been delivered to at least one waiter.
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        status = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulation time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    returns (successfully, with the generator's return value) or raises
    (as a failure).  This lets processes wait on each other:

    >>> result = yield env.process(child(env))
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process must currently be waiting on an event; the interrupt
        is delivered as an urgent event so that it takes effect at the
        current simulation time.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self!r} has not started; cannot interrupt")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, URGENT, 0.0)

    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s outcome."""
        self.env._active_process = self
        while True:
            # Detach from the event we were waiting for.  If an interrupt
            # arrived while we waited on a still-pending event, we must
            # deregister our callback from it.
            if self._target is not None and self._target is not event:
                if self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-not-processed:
                # register to be resumed when it is processed.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Event already processed: loop immediately with its outcome.
            event = next_event

        self.env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"


class Condition(Event):
    """Waits for a boolean combination of events (base for All/AnyOf)."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
            if self.triggered:
                break

    def _evaluate(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect_values())

    def _collect_values(self) -> dict:
        # Only events whose callbacks have already run count as "arrived";
        # a Timeout carries its value from birth but has not happened yet.
        return {
            i: event._value
            for i, event in enumerate(self._events)
            if event.processed and event._ok
        }


class AllOf(Condition):
    """Triggers when *all* constituent events have triggered."""

    def _evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers when *any* constituent event has triggered."""

    def _evaluate(self, count: int, total: int) -> bool:
        return count >= 1


class Environment:
    """Execution environment: the event queue and the simulation clock."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling & stepping ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._eid, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (stop when
        the clock would pass it), or an :class:`Event` (stop when it is
        processed and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ran out of events before the awaited event fired"
                )
            if not stop_event.ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
