"""Core of the discrete-event simulation kernel.

The design follows the classic process-interaction style: an
:class:`Environment` owns a priority queue of scheduled events, and
:class:`Process` objects wrap Python generators that ``yield`` events to
wait on.  When a yielded event is *triggered*, the process is resumed with
the event's value (or the event's exception is thrown into it).

Determinism: events scheduled for the same simulation time are processed
in (priority, insertion-order), so a seeded simulation is fully
reproducible run-to-run.

Performance: this is the hottest loop in the repository, so the kernel
takes a few deliberate liberties with style (see docs/KERNEL.md,
"Performance"):

* every core class declares ``__slots__`` — attribute access on events
  is the single most frequent operation in a run;
* :meth:`Environment.timeout`, :meth:`Event.succeed` and
  :meth:`Event.fail` append to the queue directly (the "fast-append"
  path) instead of going through :meth:`Environment._schedule`, and
  ``env.timeout()`` builds the :class:`Timeout` with ``__new__`` plus
  direct slot stores, skipping the chained-``__init__`` churn;
* process start schedules a bare pre-triggered :class:`Event` built the
  same way (the old ``Initialize`` bookkeeping subclass is gone);
* :meth:`Environment.run` inlines the body of :meth:`Environment.step`
  and binds hot globals/attributes to locals.

None of this changes scheduling order: entries still sort by
``(time, priority, insertion-order)`` with insertion-order assigned by
the same single counter, so seeded traces are bit-for-bit identical to
the straightforward implementation.
"""

from __future__ import annotations

import heapq
from time import perf_counter as _perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import runtime as _obs
from repro.obs.trace import KERNEL as _KERNEL

#: Event priority for "urgent" bookkeeping events (process resumption
#: after an interrupt, condition bookkeeping).  Lower sorts first.
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1

_INF = float("inf")
_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """Raised for misuse of the simulation API (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A happening at a point in simulation time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it onto the environment's queue; when the
    environment pops it, all registered callbacks run and the event
    becomes *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: True once a failure has been delivered to at least one waiter.
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now, NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now, NORMAL, eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._value is PENDING:
            raise SimulationError(
                f"cannot propagate the state of {event!r}: "
                "it has not been triggered yet"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        status = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulation time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now + delay, NORMAL, eid, self))
        if env._trace_kernel:
            env._trace.emit(
                _KERNEL, "timer_set", env._now, delay=delay, eid=eid
            )

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    returns (successfully, with the generator's return value) or raises
    (as a failure).  This lets processes wait on each other:

    >>> result = yield env.process(child(env))
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        # Start the process via a bare pre-triggered event (the fast-path
        # replacement for the old ``Initialize`` bookkeeping subclass).
        init = Event.__new__(Event)
        init.env = env
        init.callbacks = [self._resume]
        init._value = None
        init._ok = True
        init._defused = False
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now, URGENT, eid, init))
        if env._trace_kernel:
            env._trace.emit(
                _KERNEL,
                "proc_scheduled",
                env._now,
                proc=getattr(generator, "__name__", str(generator)),
                eid=eid,
            )

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process must currently be waiting on an event; the interrupt
        is delivered as an urgent event so that it takes effect at the
        current simulation time.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self!r} has not started; cannot interrupt")

        env = self.env
        interrupt_event = Event.__new__(Event)
        interrupt_event.env = env
        interrupt_event.callbacks = [self._resume]
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now, URGENT, eid, interrupt_event))
        if env._trace_kernel:
            env._trace.emit(
                _KERNEL,
                "proc_interrupted",
                env._now,
                proc=getattr(self._generator, "__name__", "?"),
                cause=cause,
            )

    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        generator = self._generator
        if env._trace_kernel:
            env._trace.emit(
                _KERNEL,
                "proc_resumed",
                env._now,
                proc=getattr(generator, "__name__", "?"),
                ok=event._ok,
            )
        while True:
            # Detach from the event we were waiting for.  If an interrupt
            # arrived while we waited on a still-pending event, we must
            # deregister our callback from it.
            target = self._target
            if target is not None and target is not event:
                if target.callbacks is not None:
                    try:
                        target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
            self._target = None
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._eid = eid = env._eid + 1
                _heappush(env._queue, (env._now, NORMAL, eid, self))
                if env._trace_kernel:
                    env._trace.emit(
                        _KERNEL,
                        "proc_ended",
                        env._now,
                        proc=getattr(generator, "__name__", "?"),
                        ok=True,
                    )
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._eid = eid = env._eid + 1
                _heappush(env._queue, (env._now, NORMAL, eid, self))
                if env._trace_kernel:
                    env._trace.emit(
                        _KERNEL,
                        "proc_ended",
                        env._now,
                        proc=getattr(generator, "__name__", "?"),
                        ok=False,
                        error=repr(exc),
                    )
                break

            if type(next_event) is not Timeout and not isinstance(
                next_event, Event
            ):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event.__new__(Event)
                event.env = env
                event.callbacks = []
                event._ok = False
                event._value = exc
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-not-processed:
                # register to be resumed when it is processed.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Event already processed: loop immediately with its outcome.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"


class Condition(Event):
    """Waits for a boolean combination of events (base for All/AnyOf)."""

    __slots__ = ("_events", "_count", "_total")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._total = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
            if self._value is not PENDING:
                break

    def _evaluate(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, self._total):
            self.succeed(self._collect_values())

    def _collect_values(self) -> dict:
        # Only events whose callbacks have already run count as "arrived";
        # a Timeout carries its value from birth but has not happened yet.
        return {
            i: event._value
            for i, event in enumerate(self._events)
            if event.callbacks is None and event._ok
        }


class AllOf(Condition):
    """Triggers when *all* constituent events have triggered."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers when *any* constituent event has triggered."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count >= 1


class Environment:
    """Execution environment: the event queue and the simulation clock."""

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "_trace",
        "_trace_kernel",
        "_profile",
        "_eid_noted",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: The ambient tracer, cached at construction (guarded attribute:
        #: hooks are no-ops unless a tracer was installed via repro.obs).
        tracer = _obs.current_tracer()
        self._trace = tracer
        #: Precomputed ``tracer is not None and tracer.kernel`` — the
        #: kernel's hook sites run per event, so their disabled cost must
        #: be a single attribute load and jump, not two.
        self._trace_kernel = tracer is not None and tracer.kernel
        #: The ambient wall-time profiler, cached like the tracer; when
        #: None (the default), run() never reads a clock.
        self._profile = _obs.current_profiler()
        #: Events already credited to run telemetry (see _note_events).
        self._eid_noted = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def tracer(self):
        """The attached tracer, or None (tracing disabled)."""
        return self._trace

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._trace = tracer
        self._trace_kernel = tracer is not None and tracer.kernel

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now.

        Fast path: builds the :class:`Timeout` with direct slot stores
        and appends it to the queue without intermediate calls — this is
        the most frequently executed factory in any model.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = delay
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (self._now + delay, NORMAL, eid, event))
        if self._trace_kernel:
            self._trace.emit(
                _KERNEL, "timer_set", self._now, delay=delay, eid=eid
            )
        return event

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that triggers at absolute time ``when``.

        Unlike ``timeout(when - now)``, the heap key is exactly ``when``
        — no float round-trip through a delay subtraction — so a caller
        that stored a due time ``now + delay`` earlier can hit the same
        instant, to the ulp, that ``timeout(delay)`` would have hit then.
        The channels' persistent delivery loops rely on this to keep
        delayed deliveries byte-identical to the per-packet process spawn
        they replaced.
        """
        if when < self._now:
            raise SimulationError(
                f"timeout_at({when}) is in the past (now={self._now})"
            )
        event = Event.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = when - self._now
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (when, NORMAL, eid, event))
        if self._trace_kernel:
            self._trace.emit(
                _KERNEL, "timer_set", self._now, delay=event._delay, eid=eid
            )
        return event

    def timeout_many(
        self,
        delays: Iterable[float],
        values: Optional[list[Any]] = None,
    ) -> list[Timeout]:
        """Create one :class:`Timeout` per delay in a single pass.

        Equivalent to ``[self.timeout(d, v) for d, v in zip(delays,
        values)]`` — same eid range, same heap entries, same trace emits —
        but with the queue, push, clock, and eid counter bound to locals
        once for the whole batch.  Bulk scheduling sites (slot-timer
        arming, late-join batches, refresh/expiry fans) use this to cut
        per-timer factory overhead.
        """
        delays = list(delays)
        for delay in delays:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
        if values is not None and len(values) != len(delays):
            raise SimulationError(
                f"got {len(delays)} delays but {len(values)} values"
            )
        queue = self._queue
        push = _heappush
        now = self._now
        eid = self._eid
        new = Event.__new__
        events: list[Timeout] = []
        append = events.append
        for index, delay in enumerate(delays):
            event = new(Timeout)
            event.env = self
            event.callbacks = []
            event._value = None if values is None else values[index]
            event._ok = True
            event._defused = False
            event._delay = delay
            eid += 1
            push(queue, (now + delay, NORMAL, eid, event))
            append(event)
        self._eid = eid
        if self._trace_kernel:
            tr = self._trace
            base = eid - len(delays)
            for index, delay in enumerate(delays):
                tr.emit(
                    _KERNEL, "timer_set", now, delay=delay, eid=base + index + 1
                )
        return events

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling & stepping ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _, _, event = _heappop(self._queue)
        self._now = when
        if self._trace_kernel:
            self._emit_fired(self._trace, when, event)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event._value
        # run() credits telemetry once per run; step-driven consumers
        # (tests, examples, REPL exploration) would otherwise report 0
        # kernel events, so credit after every manual step too.
        self._note_events()

    def _emit_fired(self, tr, when: float, event: Event) -> None:
        """Trace one popped event (timer_fired for timeouts)."""
        kind = type(event).__name__
        tr.emit(
            _KERNEL,
            "timer_fired" if kind == "Timeout" else "event_fired",
            when,
            kind=kind,
            ok=event._ok,
        )

    def _note_events(self) -> None:
        """Credit newly scheduled kernel events to run telemetry."""
        _obs.note_events(self._eid - self._eid_noted)
        self._eid_noted = self._eid

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (stop when
        the clock would pass it), or an :class:`Event` (stop when it is
        processed and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        try:
            if self._profile is not None:
                # Profiling on: a dedicated loop that samples callback
                # wall time.  Scheduling order and timestamps are
                # identical to every other loop — only clock reads and
                # (if kernel tracing is also on) emits differ.
                return self._run_profiled(
                    self._profile,
                    self._trace if self._trace_kernel else None,
                    stop_event,
                    stop_time,
                )
            if self._trace_kernel:
                # Tracing on: the dedicated loop below emits one record
                # per popped event.  Scheduling order and timestamps are
                # identical to the fast loops — only the emits differ.
                return self._run_traced(self._trace, stop_event, stop_time)

            # The inlined body of step() below is the hottest loop in the
            # repository; `queue` and `pop` are bound to locals on purpose.
            queue = self._queue
            pop = _heappop

            if stop_event is None and stop_time == _INF:
                # Fast drain: no stop condition to re-check per event.
                while queue:
                    when, _, _, event = pop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                return None

            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value

            return self._finish(stop_event, stop_time)
        finally:
            self._note_events()

    def _run_traced(
        self, tr, stop_event: Optional[Event], stop_time: float
    ) -> Any:
        """The general event loop plus a per-event trace emit.

        Pop order, clock updates, and stop handling mirror :meth:`run`'s
        untraced loops exactly, so a traced run's simulation results are
        byte-identical to an untraced run of the same seed.
        """
        queue = self._queue
        pop = _heappop
        emit_fired = self._emit_fired
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                break
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _, _, event = pop(queue)
            self._now = when
            emit_fired(tr, when, event)
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        return self._finish(stop_event, stop_time)

    def _run_profiled(
        self,
        prof,
        tr,
        stop_event: Optional[Event],
        stop_time: float,
    ) -> Any:
        """The general event loop plus sampled wall-time attribution.

        Every ``prof.sample_every``-th event's callback batch is timed
        and credited to the resumed process's generator name (or the
        event type for bare callbacks).  The countdown is a plain
        counter — no RNG, and no clock reads outside the sampled
        window — so pop order, sim clock updates, and stop handling
        stay byte-identical to the other loops.  ``tr`` is the tracer
        when kernel tracing is also enabled, else None.
        """
        queue = self._queue
        pop = _heappop
        emit_fired = self._emit_fired
        perf = _perf_counter
        account = prof.account
        sample = prof.sample_every
        countdown = prof._countdown
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, _, _, event = pop(queue)
                self._now = when
                if tr is not None:
                    emit_fired(tr, when, event)
                callbacks = event.callbacks
                event.callbacks = None
                countdown -= 1
                if countdown <= 0:
                    countdown = sample
                    start = perf()  # repro-lint: disable=RPR002
                    for callback in callbacks:
                        callback(event)
                    elapsed = perf() - start  # repro-lint: disable=RPR002
                    if callbacks:
                        owner = getattr(callbacks[0], "__self__", None)
                        if type(owner) is Process:
                            key = getattr(
                                owner._generator, "__name__", "?"
                            )
                        else:
                            key = type(event).__name__
                    else:
                        key = type(event).__name__
                    account(key, elapsed)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return self._finish(stop_event, stop_time)
        finally:
            # Persist the countdown so sampling continues seamlessly
            # across the many short run() calls one cell makes.
            prof._countdown = countdown

    def _finish(self, stop_event: Optional[Event], stop_time: float) -> Any:
        """Common run() epilogue once the loop exits."""
        if stop_event is not None:
            if stop_event._value is PENDING:
                raise SimulationError(
                    "run() ran out of events before the awaited event fired"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != _INF:
            self._now = stop_time
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
