"""repro: soft state-based communication, reproduced.

A from-scratch implementation of Raman & McCanne, "A Model, Analysis,
and Protocol Framework for Soft State-based Communication" (SIGCOMM
1999): the soft-state data model and consistency metric, the Jackson
queueing analysis of open-loop announce/listen, the two-queue and
NACK-feedback protocol variants, and the SSTP transport framework --
plus every substrate they need (simulation kernel, lossy network,
proportional-share schedulers, workloads, and a hard-state baseline).

Start with :mod:`repro.analysis` for the closed forms,
:mod:`repro.protocols` for the protocol ladder, and :mod:`repro.sstp`
for the transport framework; ``python -m repro.experiments`` reproduces
every table and figure in the paper.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "des",
    "experiments",
    "net",
    "protocols",
    "sched",
    "sstp",
    "workloads",
]
