"""Content-hash AST cache shared by the line-local and deep passes.

Both ``repro lint`` and ``repro lint --deep`` walk the same files, and
the deep pass additionally revisits every file while building its call
graph.  Parsing dominates the cost of a lint run, so each file is
parsed **once per content digest**: the tree is keyed by the SHA-256 of
the source bytes (not by path or mtime), which makes the cache immune
to touch-without-change and correct under edit-and-relint loops inside
one process (the benchmark's warm pass, editor integrations).

The cache also memoizes the two derived structures every pass needs —
the :class:`~repro.lint.rules.FileContext` (import tables, parent map)
and the inline-suppression table — because building the parent map is
itself an ``ast.walk`` over the whole tree.

Everything here is in-process state; nothing is written to disk.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, Optional, Set, Tuple

__all__ = ["ParsedFile", "clear", "load", "parse_source", "stats"]


class ParsedFile:
    """One parsed source file plus its lazily built derived structures."""

    __slots__ = (
        "path",
        "source",
        "digest",
        "tree",
        "_ctx",
        "_suppressions",
        "findings",
    )

    def __init__(
        self, path: str, source: str, digest: str, tree: ast.Module
    ) -> None:
        self.path = path
        self.source = source
        self.digest = digest
        self.tree = tree
        self._ctx = None
        self._suppressions: Optional[Dict[int, Set[str]]] = None
        #: memoized full-rule-set findings (set by ``engine.lint_file``);
        #: valid for exactly this path + content, like everything here.
        self.findings: Optional[tuple] = None

    @property
    def ctx(self):
        """The rule-facing :class:`FileContext`, built once per file."""
        if self._ctx is None:
            from repro.lint.engine import normalize_path
            from repro.lint.rules import FileContext

            self._ctx = FileContext(
                normalize_path(self.path), self.source, self.tree
            )
        return self._ctx

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """Line -> suppressed codes, built once per file."""
        if self._suppressions is None:
            from repro.lint.engine import collect_suppressions

            self._suppressions = collect_suppressions(self.source)
        return self._suppressions


#: digest -> parsed tree (or the SyntaxError to re-raise).
_trees: Dict[str, object] = {}
#: path -> ParsedFile, revalidated against the content digest on load.
_files: Dict[str, ParsedFile] = {}
_parses = 0
_hits = 0
_generation = 0


def parse_source(source: str) -> Tuple[str, ast.Module]:
    """Parse ``source``, memoized by content digest.

    Returns ``(digest, tree)``; re-raises the original
    :class:`SyntaxError` (also memoized — an unparseable file stays
    unparseable until its content changes).
    """
    global _parses, _hits
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    cached = _trees.get(digest)
    if cached is not None:
        _hits += 1
        if isinstance(cached, SyntaxError):
            raise cached
        return digest, cached  # type: ignore[return-value]
    _parses += 1
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        _trees[digest] = exc
        raise
    _trees[digest] = tree
    return digest, tree


def load(path: str) -> ParsedFile:
    """Read and parse ``path``; hits require an identical content digest.

    The source is re-read every call (cheap), the parse and derived
    structures are reused whenever the bytes are unchanged.  Raises
    ``OSError`` for unreadable files and ``SyntaxError`` for
    unparseable ones.
    """
    global _hits
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    cached = _files.get(path)
    if cached is not None and cached.source == source:
        _hits += 1
        return cached
    digest, tree = parse_source(source)
    parsed = ParsedFile(path, source, digest, tree)
    _files[path] = parsed
    return parsed


def stats() -> Dict[str, int]:
    """Parse/hit counters (pinned by tests and the lint benchmark)."""
    return {"parses": _parses, "hits": _hits, "trees": len(_trees)}


def generation() -> int:
    """Monotone counter bumped by :func:`clear`.

    Downstream memos keyed on cache contents (the deep pass's
    last-program cache) include this in their keys so ``clear()``
    invalidates *everything* derived from the cache — the benchmark's
    cold pass really is cold.
    """
    return _generation


def clear() -> None:
    """Drop every cached tree and counter (test isolation)."""
    global _parses, _hits, _generation
    _trees.clear()
    _files.clear()
    _parses = 0
    _hits = 0
    _generation += 1
