"""SARIF 2.1.0 (subset) emission for ``repro lint --format sarif``.

SARIF is the interchange format CI forges ingest for code-scanning
annotations.  This emitter produces the minimal conforming subset the
repo needs — one run, one driver, the rule table, and one result per
finding — and nothing environment-dependent: no timestamps, no
absolute paths, no tool invocation block.  The output is therefore
**byte-identical across runs** on the same findings, which CI asserts
(two SARIF passes over the fixture tree must diff clean).

Interprocedural findings (the deep pass's RPR1xx) carry their
source-to-sink chain as a ``codeFlow`` with a single ``threadFlow``,
one location per :class:`~repro.lint.findings.TraceStep` — the shape
viewers render as a stepable path.

The emitted document validates against the checked-in subset schema
``docs/sarif.schema.json`` (see ``tests/lint/deep/test_sarif.py``),
the same arrangement used for trace exports (``docs/trace.schema.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["sarif_document", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF ``level`` per repro-lint severity.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_table() -> List[Tuple[str, str, str, str]]:
    """(code, name, severity, description) for every known rule code."""
    from repro.lint.deep.engine import DEEP_CODES
    from repro.lint.rules import RULES

    rows: List[Tuple[str, str, str, str]] = []
    for code in sorted(RULES):
        rule = RULES[code]
        doc = (rule.__doc__ or "").strip().splitlines()
        description = doc[0].strip() if doc else rule.name
        rows.append((code, rule.name, rule.severity, description))
    for code in sorted(DEEP_CODES):
        name, severity, description = DEEP_CODES[code]
        rows.append((code, name, severity, description))
    rows.sort()
    return rows


def _location(path: str, line: int, col: int) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {
                "startLine": max(line, 1),
                "startColumn": col + 1,  # SARIF columns are 1-based
            },
        }
    }


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": {
                                    **_location(step.path, step.line, 0),
                                    "message": {"text": step.note},
                                }
                            }
                            for step in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def sarif_document(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The findings as one SARIF run (a plain dict, ready to dump)."""
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": _LEVELS.get(severity, "warning")},
        }
        for code, name, severity, description in _rule_table()
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINT.md",
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding)
                    for finding in sorted(findings, key=Finding.sort_key)
                ],
            }
        ],
    }


def sarif_json(findings: Iterable[Finding]) -> str:
    """Deterministic serialized form (stable key order, no timestamps)."""
    return json.dumps(sarif_document(list(findings)), indent=1) + "\n"
