"""The rule pack: registry plus the RPR001…RPR009 determinism rules.

Each rule is a class with a unique ``code``, a short ``name``, a
``severity``, an optional path scope (``applies``), and a ``check``
method that yields :class:`~repro.lint.findings.Finding` objects for
one parsed file.  Rules receive a :class:`FileContext` — the parsed
AST plus import tables, a parent map, and per-scope set-variable
inference — so individual rules stay small.

Adding a rule: subclass :class:`Rule`, decorate with
:func:`register`, document the code in docs/LINT.md (a meta-test
enforces this), and add positive/negative/suppressed fixtures in
``tests/lint/``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.findings import Finding

RULES: Dict[str, Type["Rule"]] = {}

#: Engine-reserved code for files that fail to parse; not a Rule
#: subclass because it has no AST to check.
PARSE_ERROR_CODE = "RPR000"


def register(cls: Type["Rule"]) -> Type["Rule"]:
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_codes() -> List[str]:
    """Every checkable code, engine-reserved ones included."""
    return [PARSE_ERROR_CODE] + sorted(RULES)


class FileContext:
    """Everything a rule needs to know about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: ``import x [as y]`` → {local name: top-level dotted module}
        self.module_aliases: Dict[str, str] = {}
        #: ``from m import x [as y]`` → {local name: (module, original)}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: child node → parent node, for ancestor walks
        self.parents: Dict[ast.AST, ast.AST] = {}
        #: every function/method definition in the module, by name.
        #: A name can be defined by several classes (e.g. ``run``), so
        #: each maps to the full candidate list.
        self.functions: Dict[str, List[ast.AST]] = {}

        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.functions.setdefault(node.name, []).append(node)

    # -- name resolution ---------------------------------------------------
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its imported dotted form.

        ``random.random`` (via ``import random``) → ``"random.random"``;
        ``datetime.now`` (via ``from datetime import datetime``) →
        ``"datetime.datetime.now"``.  Returns None when the base name is
        not an import (a local variable, a parameter, ...).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.from_imports:
            module, original = self.from_imports[base]
            resolved = f"{module}.{original}"
        elif base in self.module_aliases:
            resolved = self.module_aliases[base]
        else:
            return None
        return ".".join([resolved] + list(reversed(parts)))

    # -- structural helpers ------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        seen = node
        while seen in self.parents:
            seen = self.parents[seen]
            yield seen

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                return ancestor
        return None


def _identifiers(node: ast.AST) -> Set[str]:
    """All Name ids and Attribute attrs appearing under ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: one invariant, one code."""

    code: str = ""
    name: str = ""
    severity: str = "error"
    #: substrings of the posix path this rule is restricted to
    #: (empty = applies everywhere the engine lints)
    path_scope: Tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        if not self.path_scope:
            return True
        return any(fragment in path for fragment in self.path_scope)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            severity=self.severity,
            message=message,
        )


@register
class GlobalRandomRule(Rule):
    """RPR001: global / fixed-seed-cloned RNG instead of injected streams.

    Simulation randomness must come from ``repro.des.rng.RngStreams``
    substreams (or an explicitly injected ``random.Random``) so that
    (a) seeding reproduces a run exactly and (b) adding a draw in one
    component never perturbs another's stream.  Three shapes violate
    that:

    * calls to module-level ``random.*`` functions (the process-global
      shared generator);
    * ``from random import <fn>`` (the same generator, renamed);
    * ``random.Random(<literal>)`` inside a function body — a
      fixed-seed *clone*: every instance built through that code path
      replays the same sequence, so "independent" components are
      perfectly correlated (the historical LossModel default bug);
    * calls to module-level ``numpy.random.*`` functions (the legacy
      global ``RandomState`` — the same shared-stream hazard with a
      numpy accent);
    * un-injected ``numpy.random.default_rng()`` / ``Generator()``
      construction inside a function — no seed argument draws OS
      entropy (irreproducible), a literal seed is the fixed-seed clone
      again; derive the generator from the cell's ``RngStreams`` family
      and pass it in.
    """

    code = "RPR001"
    name = "global-rng"
    severity = "error"

    _ALLOWED = {"random.Random", "random.SystemRandom"}
    #: Generator/bit-generator constructors: flagged only when built
    #: un-injected (no arg or a literal seed) inside a function, never
    #: as module-level draws.
    _NUMPY_CTORS = {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in {"Random", "SystemRandom"}:
                        yield self.finding(
                            ctx,
                            node,
                            f"'from random import {alias.name}' pulls in "
                            "the process-global RNG; inject a stream from "
                            "repro.des.rng.RngStreams instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random.") and dotted not in self._ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"call to global '{dotted}' in simulation code; draw "
                    "from an injected repro.des.rng stream instead",
                )
            elif (
                dotted == "random.Random"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and ctx.enclosing_function(node) is not None
            ):
                yield self.finding(
                    ctx,
                    node,
                    "fixed-literal-seed random.Random() inside a function: "
                    "every instance replays the same stream; derive a "
                    "per-instance substream via RngStreams (see "
                    "repro.net.loss._default_rng)",
                )
            elif dotted in self._NUMPY_CTORS:
                first = node.args[0] if node.args else None
                if (
                    first is None or isinstance(first, ast.Constant)
                ) and ctx.enclosing_function(node) is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"un-injected '{dotted}' inside a function: no "
                        "seed draws OS entropy (irreproducible), a "
                        "literal seed clones one stream into every "
                        "instance; derive the generator from the cell's "
                        "RngStreams family and inject it",
                    )
            elif dotted.startswith("numpy.random."):
                yield self.finding(
                    ctx,
                    node,
                    f"call to global '{dotted}' in simulation code: the "
                    "legacy numpy global RandomState is process-shared; "
                    "draw from an injected numpy Generator derived from "
                    "repro.des.rng streams instead",
                )


@register
class WallClockRule(Rule):
    """RPR002: wall-clock reads on the simulation/results path.

    Simulation time is ``env.now``; host time leaking into model code
    makes results irreproducible.  Telemetry that deliberately measures
    host wall time suppresses this inline with a reason.
    """

    code = "RPR002"
    name = "wall-clock"
    severity = "error"

    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in self._BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call '{dotted}': simulation code must use "
                    "env.now; intentional host-time telemetry needs an "
                    "inline suppression stating why",
                )


@register
class ProcessGeneratorRule(Rule):
    """RPR003: malformed DES process generators.

    A function handed to ``env.process(...)`` / ``Process(env, ...)``
    must be a generator that yields kernel events.  A target that never
    yields dies instantly at start (the kernel raises); a bare
    ``yield`` or a yielded literal is a non-Event the kernel rejects at
    runtime — both are statically detectable.
    """

    code = "RPR003"
    name = "process-generator"
    severity = "error"

    def _target_candidates(
        self, ctx: FileContext, call: ast.Call
    ) -> Optional[List[ast.AST]]:
        func = call.func
        is_process_method = (
            isinstance(func, ast.Attribute) and func.attr == "process"
        )
        is_process_ctor = (
            isinstance(func, ast.Name) and func.id == "Process"
        ) or (
            isinstance(func, ast.Attribute) and func.attr == "Process"
        )
        if not (is_process_method or is_process_ctor):
            return None
        index = 1 if is_process_ctor else 0
        if len(call.args) <= index:
            return None
        arg = call.args[index]
        if not isinstance(arg, ast.Call):
            return None
        target = arg.func
        if isinstance(target, ast.Name):
            return ctx.functions.get(target.id)
        # Only ``self.<method>()`` resolves within this module; a deeper
        # receiver (``self.workload.run()``) names code defined
        # elsewhere, which this single-file analysis cannot see.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return ctx.functions.get(target.attr)
        return None

    @staticmethod
    def _yields(fn: ast.AST) -> List[ast.AST]:
        return [
            sub
            for sub in _own_nodes(fn)
            if isinstance(sub, (ast.Yield, ast.YieldFrom))
        ]

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        checked: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = self._target_candidates(ctx, node)
            if not candidates:
                continue
            # The call names a method; several classes in the module may
            # define it.  Only flag when *no* candidate is a generator —
            # if any yields, assume the call resolves to that one.
            per_candidate = [(fn, self._yields(fn)) for fn in candidates]
            if all(not ys for _, ys in per_candidate):
                name = candidates[0].name
                if id(node) not in checked:
                    checked.add(id(node))
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}' is spawned as a DES process but never "
                        "yields: it is not a generator and the kernel "
                        "will reject it",
                    )
                continue
            for fn, yields in per_candidate:
                if not yields or id(fn) in checked:
                    continue
                checked.add(id(fn))
                for sub in yields:
                    if isinstance(sub, ast.YieldFrom):
                        continue
                    if sub.value is None:
                        yield self.finding(
                            ctx,
                            sub,
                            f"bare 'yield' in process '{fn.name}': "
                            "processes must yield kernel events "
                            "(env.timeout(...), env.event(), ...)",
                        )
                    elif isinstance(sub.value, ast.Constant):
                        yield self.finding(
                            ctx,
                            sub,
                            f"process '{fn.name}' yields the literal "
                            f"{sub.value.value!r}, which is not a kernel "
                            "event",
                        )


#: Consumers whose result does not depend on iteration order.
_ORDER_FREE_CALLS = {
    "sorted", "sum", "min", "max", "any", "all", "set", "frozenset", "len",
}

_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}


@register
class UnsortedSetIterationRule(Rule):
    """RPR004: order-unstable iteration over sets.

    Python string hashing is salted per process, so set iteration
    order differs between worker processes.  Anything iterated out of
    a set and folded into results, merged registry snapshots, or
    written files breaks the ``--jobs 1`` vs ``--jobs N``
    byte-identical guarantee.  Wrap the set in ``sorted(...)`` (or
    consume it with an order-insensitive reducer).
    """

    code = "RPR004"
    name = "unsorted-set-iteration"
    severity = "error"

    def _set_names(self, scope: ast.AST) -> Set[str]:
        """Names bound to set-valued expressions within one scope."""
        names: Set[str] = set()
        for node in _own_nodes(scope):
            if isinstance(node, ast.Assign):
                value_is_set = self._is_set_expr(node.value, names)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if value_is_set:
                            names.add(target.id)
                        else:
                            names.discard(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                annotation = ast.dump(node.annotation)
                if "'set'" in annotation or "'Set'" in annotation:
                    names.add(node.target.id)
        return names

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {
                "set",
                "frozenset",
            }:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value, set_names)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(
                node.left, set_names
            ) or self._is_set_expr(node.right, set_names)
        return False

    def _consumer_is_order_free(
        self, ctx: FileContext, node: ast.AST
    ) -> bool:
        """True when the iteration feeds an order-insensitive call."""
        parent = ctx.parents.get(node)
        # A comprehension's iter hangs off the comprehension node, which
        # hangs off the GeneratorExp/ListComp/...; look through those to
        # find a directly wrapping order-insensitive call.
        while isinstance(
            parent,
            (ast.comprehension, ast.GeneratorExp, ast.ListComp,
             ast.SetComp, ast.DictComp),
        ):
            if isinstance(parent, ast.SetComp):
                return True  # a set again: order does not escape
            node = parent
            parent = ctx.parents.get(parent)
        if isinstance(parent, ast.Call):
            func = parent.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_FREE_CALLS
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        scopes: List[ast.AST] = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        reported: Set[Tuple[int, int]] = set()
        for scope in scopes:
            set_names = self._set_names(scope)
            for node in _own_nodes(scope):
                iter_expr = None
                if isinstance(node, ast.For):
                    iter_expr = node.iter
                elif isinstance(node, ast.comprehension):
                    iter_expr = node.iter
                elif isinstance(node, ast.Call):
                    func = node.func
                    takes_order = (
                        isinstance(func, ast.Name)
                        and func.id in {"list", "tuple", "enumerate"}
                    ) or (
                        isinstance(func, ast.Attribute)
                        and func.attr == "join"
                    )
                    if takes_order and node.args:
                        iter_expr = node.args[0]
                if iter_expr is None:
                    continue
                if not self._is_set_expr(iter_expr, set_names):
                    continue
                anchor = node if not isinstance(
                    node, ast.comprehension
                ) else iter_expr
                if self._consumer_is_order_free(ctx, anchor):
                    continue
                key = (anchor.lineno, anchor.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    ctx,
                    anchor,
                    "iteration over a set without sorted(): set order is "
                    "process-dependent and breaks jobs=1 vs jobs=N "
                    "byte-identical results",
                )


@register
class UnguardedTraceEmitRule(Rule):
    """RPR005: tracer emits in hot paths without the precomputed guard.

    The < 3% disabled-overhead CI gate holds only because every kernel
    and channel emit sits behind a precomputed bool
    (``env._trace_kernel``, ``tr is not None and tr.packet``, a hoisted
    ``trace_*`` local) — one load and one jump when tracing is off.  An
    unguarded ``*.emit(...)`` pays argument construction on every event.
    A tracer received as a function parameter counts as guarded: the
    caller hoisted the check (e.g. ``Environment._run_traced``).
    """

    code = "RPR005"
    name = "unguarded-trace-emit"
    severity = "error"
    path_scope = ("repro/des/", "repro/net/")

    def _receiver_token(self, func: ast.Attribute) -> Optional[str]:
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        return None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "emit"
            ):
                continue
            token = self._receiver_token(func)
            guarded = False
            for ancestor in ctx.ancestors(node):
                if isinstance(
                    ancestor,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    # Injected-tracer contract: a parameter named like
                    # the receiver means the caller holds the guard.
                    args = getattr(ancestor, "args", None)
                    if args is not None and token is not None:
                        params = {
                            a.arg
                            for a in (
                                args.posonlyargs + args.args + args.kwonlyargs
                            )
                        }
                        if token in params:
                            guarded = True
                    break
                if not isinstance(ancestor, (ast.If, ast.IfExp)):
                    continue
                idents = _identifiers(ancestor.test)
                if token is not None and token in idents:
                    guarded = True
                    break
                if any("trace" in ident for ident in idents):
                    guarded = True
                    break
            if not guarded:
                yield self.finding(
                    ctx,
                    node,
                    "tracer emit not dominated by a precomputed trace-flag "
                    "check (e.g. 'if env._trace_kernel:'); hot-path hooks "
                    "must cost one load + one jump when tracing is off",
                )


@register
class MutableDefaultRule(Rule):
    """RPR006: mutable default arguments.

    A mutable default is created once at definition time and shared by
    every call — cross-run and cross-instance state that silently
    couples simulations.  Use ``None`` and materialise inside.
    """

    code = "RPR006"
    name = "mutable-default"
    severity = "error"

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"}
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in '{label}': shared "
                        "across calls and instances; default to None and "
                        "create per call",
                    )


_TIMESTAMP_SUFFIXES = ("_at", "_time")
_TIMESTAMP_NAMES = {"now", "_now", "deadline", "timestamp", "expiry"}


@register
class FloatTimestampEqualityRule(Rule):
    """RPR007: exact == / != on simulation timestamps.

    Timestamps are accumulated floats (``env.now`` sums of delays);
    exact equality silently turns false under reordering or refactors
    that change the summation. Compare with tolerance or with ordering
    (<=, >=).
    """

    code = "RPR007"
    name = "float-timestamp-equality"
    severity = "warning"

    def _is_timestampish(self, node: ast.AST) -> bool:
        ident: Optional[str] = None
        if isinstance(node, ast.Attribute):
            ident = node.attr
        elif isinstance(node, ast.Name):
            ident = node.id
        if ident is None:
            return False
        return ident in _TIMESTAMP_NAMES or ident.endswith(
            _TIMESTAMP_SUFFIXES
        )

    def _is_inf_sentinel(self, node: ast.AST) -> bool:
        """``x == _INF`` / ``float('inf')`` is exact, not accumulated."""
        if isinstance(node, ast.Name) and "inf" in node.id.lower():
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and str(node.args[0].value).lower() in {"inf", "-inf"}
        ):
            return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(right, ast.Constant) and right.value is None:
                    continue
                if self._is_inf_sentinel(left) or self._is_inf_sentinel(
                    right
                ):
                    continue
                if self._is_timestampish(left) or self._is_timestampish(
                    right
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= on a simulation timestamp: "
                        "accumulated-float equality is fragile; compare "
                        "with ordering or a tolerance",
                    )
                    break


@register
class UnguardedSpanHookRule(Rule):
    """RPR009: span/profiler hook calls in hot paths without a guard.

    The span layer (``SpanBuilder.feed``/``feed_raw``) and the wall-time
    profiler (``Profiler.account``/``account_category``) ride the same
    hot paths as the tracer, and the CI overhead gate budgets them the
    same way: every call in kernel or channel code must be dominated by
    a precomputed flag check (``if self._profile is not None:``, a
    hoisted ``span``/``prof`` local test) so a run without observers
    pays one load and one jump.  As with RPR005, a builder/profiler
    received as a function parameter counts as guarded — the caller
    hoisted the check (``Environment._run_profiled``).
    """

    code = "RPR009"
    name = "unguarded-span-hook"
    severity = "error"
    path_scope = ("repro/des/", "repro/net/")

    _HOOKS = {"feed", "feed_raw", "account", "account_category"}
    _GUARD_TOKENS = ("trace", "prof", "span")

    def _receiver_token(self, func: ast.Attribute) -> Optional[str]:
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        return None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._HOOKS
            ):
                continue
            token = self._receiver_token(func)
            guarded = False
            for ancestor in ctx.ancestors(node):
                if isinstance(
                    ancestor,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    args = getattr(ancestor, "args", None)
                    if args is not None and token is not None:
                        params = {
                            a.arg
                            for a in (
                                args.posonlyargs + args.args + args.kwonlyargs
                            )
                        }
                        if token in params:
                            guarded = True
                    break
                if not isinstance(ancestor, (ast.If, ast.IfExp)):
                    continue
                idents = _identifiers(ancestor.test)
                if token is not None and token in idents:
                    guarded = True
                    break
                if any(
                    guard in ident
                    for ident in idents
                    for guard in self._GUARD_TOKENS
                ):
                    guarded = True
                    break
            if not guarded:
                yield self.finding(
                    ctx,
                    node,
                    f"span/profiler hook '.{func.attr}(...)' not dominated "
                    "by a precomputed observer check (e.g. 'if "
                    "self._profile is not None:'); hot-path hooks must "
                    "cost one load + one jump when observability is off",
                )


_METRIC_NAME = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_EVENT_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


@register
class NamingConventionRule(Rule):
    """RPR008: metric / trace-event naming conventions.

    docs/OBSERVABILITY.md fixes the contract: instruments are
    ``repro_<noun>_<unit>`` with counters ending ``_total`` (and only
    counters), and trace event names are lower_snake_case.  Drift here
    breaks downstream dashboards and the trace schema.
    """

    code = "RPR008"
    name = "naming-convention"
    severity = "warning"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            kind: Optional[str] = None
            name_arg: Optional[ast.expr] = None
            if isinstance(func, ast.Attribute) and func.attr in {
                "counter",
                "gauge",
                "histogram",
            }:
                kind = func.attr
                if node.args:
                    name_arg = node.args[0]
            elif isinstance(func, ast.Attribute) and func.attr == "emit":
                if len(node.args) >= 2 and isinstance(
                    node.args[1], ast.Constant
                ):
                    value = node.args[1].value
                    if isinstance(value, str) and not _EVENT_NAME.match(
                        value
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"trace event name {value!r} is not "
                            "lower_snake_case (see docs/OBSERVABILITY.md "
                            "event taxonomy)",
                        )
                continue
            else:
                dotted = ctx.dotted_name(func)
                if dotted and dotted.startswith("repro.obs"):
                    tail = dotted.rsplit(".", 1)[-1]
                    if tail in {"Counter", "Gauge", "Histogram"}:
                        kind = tail.lower()
                        if node.args:
                            name_arg = node.args[0]
            if kind is None or not isinstance(name_arg, ast.Constant):
                continue
            value = name_arg.value
            if not isinstance(value, str):
                continue
            if not _METRIC_NAME.match(value):
                yield self.finding(
                    ctx,
                    node,
                    f"instrument name {value!r} must match "
                    "'repro_<noun>_<unit>' (docs/OBSERVABILITY.md)",
                )
            elif kind == "counter" and not value.endswith("_total"):
                yield self.finding(
                    ctx,
                    node,
                    f"counter {value!r} must end in '_total'",
                )
            elif kind != "counter" and value.endswith("_total"):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} {value!r} must not end in '_total' "
                    "(reserved for counters)",
                )
