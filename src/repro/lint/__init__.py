"""``repro.lint`` — AST-based determinism & simulation-safety analyzer.

Every quantitative claim this reproduction makes — the Section 3
consistency curves, the fault-recovery results, byte-identical
``--jobs 1`` vs ``--jobs N`` merges, traced-vs-untraced equality —
rests on invariants no example-based test can fully enforce:
simulation code must never touch wall-clock time, global or
fixed-seed-cloned RNG, or order-unstable iteration on its results
path, and observability hooks must stay behind their precomputed
guards.  This package checks those invariants statically, using only
the standard library (``ast`` + ``tokenize``).

Public surface::

    from repro.lint import lint_paths, lint_source, RULES
    findings = lint_paths(["src", "benchmarks", "examples"])

Rule catalogue, suppression syntax, and exit codes: docs/LINT.md.
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding, SEVERITIES
from repro.lint.rules import RULES, Rule, all_codes

__all__ = [
    "Finding",
    "SEVERITIES",
    "RULES",
    "Rule",
    "all_codes",
    "lint_paths",
    "lint_file",
    "lint_source",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
