"""RPR103: same-time races between DES process generators.

The kernel breaks timestamp ties deterministically ((time, priority,
insertion order)), but *insertion order* is a property of setup code —
two generators that can be scheduled at the identical instant and both
write the same shared state produce results that silently depend on
the order they happened to be registered.  Reordering two
``env.process(...)`` lines is supposed to be a no-op; with such a pair
it is not.

The detector computes, per process generator (``yield from`` folded
in, plus a bounded closure over the helper methods it calls):

* its **same-time capability** — ``timeout(0)`` (reschedule *now*),
  ``timeout_at(t)`` (an absolute instant other generators can also
  name), ``timeout_many(...)`` (a batch of delays, any of which can
  collide);
* its **write set** over shared objects — ``self.<attr>`` stores,
  mutations of ``self.<attr>`` objects (item stores, mutator-method
  calls on channels / tables / registries), and module-global
  registries.

It then flags (a) pairs of generators spawned on the *same instance*
(both via ``env.process(self.m())`` from one class) whose instants can
coincide and whose write sets overlap, and (b) generators spawned in a
loop (many concurrent instances) that are same-time capable and write
instance-shared or global state.  A documented tie-break is expressed
as an inline ``# repro-lint: disable=RPR103`` with a justifying
comment at the spawn site.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.deep.graph import (
    FunctionInfo,
    Program,
    own_nodes,
)
from repro.lint.findings import Finding, TraceStep

__all__ = ["analyze_races"]

#: Method names treated as mutating their receiver.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "delete",
    "dequeue",
    "discard",
    "enqueue",
    "expire",
    "extend",
    "insert",
    "pop",
    "popleft",
    "push",
    "put",
    "register",
    "remove",
    "send",
    "set",
    "setdefault",
    "touch",
    "unregister",
    "update",
}

#: How deep the helper-call closure follows ``self`` methods.
_CLOSURE_DEPTH = 3


class _Effects:
    """Writes and same-time instants of one function body."""

    __slots__ = ("writes", "instants")

    def __init__(self) -> None:
        #: write key -> (description, TraceStep)
        self.writes: Dict[Tuple, Tuple[str, TraceStep]] = {}
        #: instant kind -> TraceStep; kinds: "zero", ("at", text), "many"
        self.instants: Dict[object, TraceStep] = {}


def _step(fn: FunctionInfo, node: ast.AST, note: str) -> TraceStep:
    return TraceStep(
        path=fn.path, line=getattr(node, "lineno", fn.lineno), note=note
    )


def _local_names(fn: FunctionInfo) -> Set[str]:
    names = set(fn.params())
    for node in own_nodes(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
    return names


class _RacePass:
    def __init__(self, program: Program) -> None:
        self.program = program
        self._effects: Dict[str, _Effects] = {}

    # -- per-function effects ----------------------------------------------
    def effects(self, fn: FunctionInfo) -> _Effects:
        cached = self._effects.get(fn.id)
        if cached is not None:
            return cached
        eff = _Effects()
        self._effects[fn.id] = eff
        locals_ = _local_names(fn)
        for node in own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._write_target(fn, eff, target, locals_)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._write_target(fn, eff, node.target, locals_)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._write_target(fn, eff, target, locals_)
            elif isinstance(node, ast.Call):
                self._call_effects(fn, eff, node, locals_)
        return eff

    def _write_target(
        self,
        fn: FunctionInfo,
        eff: _Effects,
        target: ast.expr,
        locals_: Set[str],
    ) -> None:
        key_desc = self._write_key(fn, target, locals_)
        if key_desc is None:
            return
        key, desc = key_desc
        eff.writes.setdefault(key, (desc, _step(fn, target, desc)))

    def _write_key(
        self, fn: FunctionInfo, target: ast.expr, locals_: Set[str]
    ) -> Optional[Tuple[Tuple, str]]:
        """Classify a store/delete target as a shared-state write."""
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                return (("attr", target.attr), f"writes self.{target.attr}")
            # self.<obj>.<field> = ... mutates the shared object.
            root = self._self_root(base)
            if root is not None:
                return (
                    ("obj", root),
                    f"mutates self.{root} (.{target.attr} store)",
                )
            gkey = self._global_root(fn, base, locals_)
            if gkey is not None:
                return (gkey, f"mutates global {gkey[2]}")
            return None
        if isinstance(target, ast.Subscript):
            base = target.value
            root = self._self_root(base)
            if root is not None:
                return (("obj", root), f"mutates self.{root} (item store)")
            gkey = self._global_root(fn, base, locals_)
            if gkey is not None:
                return (gkey, f"mutates global {gkey[2]} (item store)")
        return None

    def _self_root(self, node: ast.expr) -> Optional[str]:
        """``self.<attr>`` (possibly under further attrs/items) -> attr."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _global_root(
        self, fn: FunctionInfo, node: ast.expr, locals_: Set[str]
    ) -> Optional[Tuple]:
        """A Name rooted in module scope or an import -> global key."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Name) or node.id in locals_:
            return None
        ctx = fn.module.ctx
        if node.id in ctx.from_imports:
            source, original = ctx.from_imports[node.id]
            return ("global", source, original)
        if node.id in ctx.module_aliases:
            return None  # a module object, not a registry
        if node.id in fn.module.functions or node.id in fn.module.classes:
            return None
        return ("global", fn.module.name, node.id)

    def _call_effects(
        self,
        fn: FunctionInfo,
        eff: _Effects,
        call: ast.Call,
        locals_: Set[str],
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        name = func.attr
        if name == "timeout":
            if (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value in (0, 0.0)
            ):
                eff.instants.setdefault(
                    "zero", _step(fn, call, "timeout(0): reschedules at now")
                )
            return
        if name == "timeout_at":
            text = ast.unparse(call.args[0]) if call.args else "<t>"
            eff.instants.setdefault(
                ("at", text),
                _step(fn, call, f"timeout_at({text}): absolute instant"),
            )
            return
        if name == "timeout_many":
            eff.instants.setdefault(
                "many",
                _step(
                    fn, call, "timeout_many(...): batch of colliding delays"
                ),
            )
            return
        if name in _MUTATORS:
            root = self._self_root(func.value)
            if root is not None:
                eff.writes.setdefault(
                    ("obj", root),
                    (
                        f"mutates self.{root} (.{name}())",
                        _step(fn, call, f"mutates self.{root} via .{name}()"),
                    ),
                )
                return
            gkey = self._global_root(fn, func.value, locals_)
            if gkey is not None:
                eff.writes.setdefault(
                    gkey,
                    (
                        f"mutates global {gkey[2]} (.{name}())",
                        _step(
                            fn, call, f"mutates global {gkey[2]} via .{name}()"
                        ),
                    ),
                )

    # -- generator closure -------------------------------------------------
    def closure_effects(self, gen: FunctionInfo) -> _Effects:
        """Effects of ``gen`` plus yield-from'd generators and helpers."""
        merged = _Effects()
        seen: Set[str] = set()
        frontier: List[Tuple[FunctionInfo, int]] = [(gen, 0)]
        while frontier:
            fn, depth = frontier.pop()
            if fn.id in seen:
                continue
            seen.add(fn.id)
            eff = self.effects(fn)
            for key in sorted(eff.writes, key=repr):
                merged.writes.setdefault(key, eff.writes[key])
            for kind in sorted(eff.instants, key=repr):
                merged.instants.setdefault(kind, eff.instants[kind])
            if depth >= _CLOSURE_DEPTH:
                continue
            for callee, _node in self.program.callees(fn):
                # Sub-generators only matter when delegated to
                # (``yield from``); called helpers always execute.
                if callee.is_generator and not _is_delegated(fn, callee):
                    continue
                frontier.append((callee, depth + 1))
        return merged


def _is_delegated(fn: FunctionInfo, callee: FunctionInfo) -> bool:
    for node in own_nodes(fn.node):
        if (
            isinstance(node, ast.YieldFrom)
            and isinstance(node.value, ast.Call)
        ):
            func = node.value.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name == callee.name:
                return True
    return False


class _Spawn:
    """One ``env.process(...)`` site."""

    __slots__ = ("generator", "spawner", "node", "in_loop", "on_self")

    def __init__(
        self,
        generator: FunctionInfo,
        spawner: FunctionInfo,
        node: ast.Call,
        in_loop: bool,
        on_self: bool,
    ) -> None:
        self.generator = generator
        self.spawner = spawner
        self.node = node
        self.in_loop = in_loop
        self.on_self = on_self


def _collect_spawns(program: Program) -> List[_Spawn]:
    spawns: List[_Spawn] = []
    for fn in program.sorted_functions():
        parents = fn.module.ctx.parents
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            inner: Optional[ast.expr] = None
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "process":
                inner = node.args[0] if node.args else None
            elif isinstance(func, ast.Name) and func.id == "Process":
                inner = node.args[1] if len(node.args) > 1 else None
            if not isinstance(inner, ast.Call):
                continue
            targets = program.call_targets(fn, inner)
            for target in targets:
                if not target.is_generator:
                    continue
                on_self = (
                    isinstance(inner.func, ast.Attribute)
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == "self"
                )
                spawns.append(
                    _Spawn(
                        target,
                        fn,
                        node,
                        _inside_loop(parents, node, fn.node),
                        on_self,
                    )
                )
    return spawns


def _inside_loop(
    parents: Dict[ast.AST, ast.AST], node: ast.AST, stop: ast.AST
) -> bool:
    current = parents.get(node)
    while current is not None and current is not stop:
        if isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
            return True
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return False
        current = parents.get(current)
    return False


def _compatible(
    a: Dict[object, TraceStep], b: Dict[object, TraceStep]
) -> Optional[Tuple[TraceStep, TraceStep]]:
    """A pair of instants at which both generators can be scheduled."""
    if not a or not b:
        return None
    for kind in sorted(a, key=repr):
        if kind == "many" and b:
            other = sorted(b, key=repr)[0]
            return a[kind], b[other]
        if "many" in b:
            return a[kind], b["many"]
        if kind in b:  # zero-zero or identical timeout_at expression
            return a[kind], b[kind]
        if kind == "zero":
            for okind in sorted(b, key=repr):
                if isinstance(okind, tuple) and okind[0] == "at":
                    return a[kind], b[okind]
        if isinstance(kind, tuple) and kind[0] == "at" and "zero" in b:
            return a[kind], b["zero"]
    return None


def _suppressed(spawn: _Spawn) -> bool:
    for fn, node in (
        (spawn.spawner, spawn.node),
        (spawn.generator, spawn.generator.node),
    ):
        codes = fn.module.suppressions.get(getattr(node, "lineno", 0))
        if codes and ("all" in codes or "RPR103" in codes):
            return True
    return False


def analyze_races(program: Program) -> List[Finding]:
    race_pass = _RacePass(program)
    spawns = [s for s in _collect_spawns(program) if not _suppressed(s)]
    findings: List[Finding] = []
    reported: Set[Tuple] = set()

    effects: Dict[str, _Effects] = {}
    for spawn in spawns:
        if spawn.generator.id not in effects:
            effects[spawn.generator.id] = race_pass.closure_effects(
                spawn.generator
            )

    # -- (a) same-instance pairs with colliding instants + write overlap.
    by_class: Dict[str, List[_Spawn]] = {}
    for spawn in spawns:
        if spawn.on_self and spawn.spawner.cls is not None:
            by_class.setdefault(spawn.spawner.cls.id, []).append(spawn)
    for cls_id in sorted(by_class):
        group = by_class[cls_id]
        for i, left in enumerate(group):
            for right in group[i + 1 :]:
                if left.generator.id == right.generator.id:
                    continue
                pair_key = tuple(
                    sorted((left.generator.id, right.generator.id))
                )
                if ("pair", cls_id, pair_key) in reported:
                    continue
                eff_l = effects[left.generator.id]
                eff_r = effects[right.generator.id]
                instant = _compatible(eff_l.instants, eff_r.instants)
                if instant is None:
                    continue
                overlap = sorted(
                    set(eff_l.writes) & set(eff_r.writes), key=repr
                )
                if not overlap:
                    continue
                reported.add(("pair", cls_id, pair_key))
                what = ", ".join(
                    eff_l.writes[key][0] for key in overlap[:3]
                )
                trace = (
                    _step(
                        left.spawner,
                        left.node,
                        f"{left.generator.qualname} spawned here",
                    ),
                    _step(
                        right.spawner,
                        right.node,
                        f"{right.generator.qualname} spawned here",
                    ),
                    instant[0],
                    instant[1],
                    eff_l.writes[overlap[0]][1],
                    eff_r.writes[overlap[0]][1],
                )
                findings.append(
                    Finding(
                        path=left.spawner.path,
                        line=left.node.lineno,
                        col=left.node.col_offset,
                        code="RPR103",
                        rule="same-time-race",
                        severity="warning",
                        message=(
                            f"generators {left.generator.qualname}() and "
                            f"{right.generator.qualname}() can be scheduled "
                            "at the same instant and both touch shared "
                            f"state ({what}); the outcome depends on "
                            "registration order — document the tie-break "
                            "or stagger the instants"
                        ),
                        trace=trace,
                    )
                )

    # -- (b) loop-spawned generators: many concurrent instances.
    seen_loops: Set[str] = set()
    for spawn in spawns:
        if not spawn.in_loop or spawn.generator.id in seen_loops:
            continue
        eff = effects[spawn.generator.id]
        if not eff.instants:
            continue
        shared = sorted(
            (
                key
                for key in eff.writes
                if key[0] == "global" or spawn.on_self
            ),
            key=repr,
        )
        if not shared:
            continue
        seen_loops.add(spawn.generator.id)
        instant_step = eff.instants[sorted(eff.instants, key=repr)[0]]
        what = ", ".join(eff.writes[key][0] for key in shared[:3])
        findings.append(
            Finding(
                path=spawn.spawner.path,
                line=spawn.node.lineno,
                col=spawn.node.col_offset,
                code="RPR103",
                rule="same-time-race",
                severity="warning",
                message=(
                    f"{spawn.generator.qualname}() is spawned per loop "
                    "iteration, so several instances can be scheduled at "
                    f"the same instant while sharing state ({what}); "
                    "results then depend on spawn order — document the "
                    "tie-break or derive per-instance state"
                ),
                trace=(
                    _step(
                        spawn.spawner,
                        spawn.node,
                        "spawned inside a loop (many concurrent instances)",
                    ),
                    instant_step,
                    eff.writes[shared[0]][1],
                ),
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings
