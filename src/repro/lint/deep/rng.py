"""RPR101/RPR102: interprocedural RNG substream provenance.

``RngStreams`` (repro.des.rng) exists so every component draws from its
own named substream — adding a draw in one place must never perturb
another component's sequence.  That contract has two statically
checkable failure shapes this module hunts across the whole program:

* **RPR101 substream aliasing** — the same ``(family, name)`` substream
  is drawn at two or more independent sites (two components handed the
  same stream are order-coupled: whichever draws first eats the other's
  numbers, so an unrelated code change reorders results).  Families are
  tracked from their injection point (``RngStreams(...)`` construction
  or ``.spawn(...)`` derivation) through assignments, ``self``
  attributes, and **function-call argument bindings** to every draw
  site ``family["name"]``; the finding carries the injection-to-draw
  chain.

* **RPR102 derivation cycles** — a family re-derived from itself
  (``streams = streams.spawn(...)`` loop-carried, or a ``self`` attr
  re-spawned outside ``__init__``): substream identity then depends on
  iteration count or call order, which defeats the "stable name ->
  stable stream" guarantee.

The family abstraction is keyed by *static identity*: a construction
site, a spawn of a parent key, or a per-class ``self.<attr>`` slot.
Families returned out of helper functions are re-keyed per call site so
two callers of ``make_streams(...)`` are never conflated.

numpy ``Generator`` objects (``default_rng(...)`` / ``Generator(...)``
construction sites) are tracked through the same binding machinery: a
Generator holds a *single* stream, so one instance whose draw methods
(``.random()``, ``.normal()``, ...) are reached from two or more
distinct functions is the RPR101 aliasing hazard again, just without
the subscript syntax.  Sequential draws inside one function are normal
use and are never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.deep.graph import (
    ClassInfo,
    FunctionInfo,
    Program,
    own_nodes,
)
from repro.lint.findings import Finding, TraceStep

__all__ = ["analyze_rng"]

#: Class names treated as stream-family constructors.  Terminal-name
#: matching keeps fixtures analyzable without repro on the path.
_FAMILY_CTORS = {"RngStreams"}

#: Constructors recognized as numpy Generator injection points
#: (terminal-name matched, so both ``np.random.default_rng`` and a
#: bare ``default_rng`` import resolve).
_NPGEN_CTORS = {"default_rng", "Generator", "RandomState"}

#: numpy Generator draw methods — each call advances the instance's
#: single underlying stream.
_NPGEN_DRAWS = {
    "random", "integers", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
    "geometric", "bytes",
}

#: Pseudo-substream name grouping all method draws on one Generator.
_NPGEN_NAME = "<numpy draws>"

#: Cap on interprocedural chain length (and propagation depth).
_MAX_CHAIN = 8


class _Ref:
    """Abstract family value: concrete key, parameter, or self-attr."""

    __slots__ = ("kind", "key", "chain", "param", "attr")

    def __init__(
        self,
        kind: str,
        key: Optional[Tuple] = None,
        chain: Tuple[TraceStep, ...] = (),
        param: Optional[str] = None,
        attr: Optional[str] = None,
    ) -> None:
        self.kind = kind  # "concrete" | "param" | "attr"
        self.key = key
        self.chain = chain
        self.param = param
        self.attr = attr


def _step(fn: FunctionInfo, node: ast.AST, note: str) -> TraceStep:
    return TraceStep(
        path=fn.path, line=getattr(node, "lineno", fn.lineno), note=note
    )


def _name_repr(node: Optional[ast.expr]) -> str:
    if node is None:
        return "<none>"
    if isinstance(node, ast.Constant):
        return repr(node.value)
    try:
        return f"dyn:{ast.unparse(node)}"
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "dyn:<expr>"


class _Summary:
    """Per-function facts gathered in one ordered pass."""

    __slots__ = ("fn", "bindings", "draws", "passes", "returns", "cycles")

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.bindings: Dict[str, _Ref] = {}
        #: (ref, substream name repr, is_const, subscript node)
        self.draws: List[Tuple[_Ref, str, bool, ast.AST]] = []
        #: (callee, param name, ref, call node)
        self.passes: List[Tuple[FunctionInfo, str, _Ref, ast.Call]] = []
        #: what the function returns, family-wise: None, a _Ref, or
        #: ("spawnofparam", param, name_repr).
        self.returns: Optional[object] = None
        #: (node, message) RPR102 precursors.
        self.cycles: List[Tuple[ast.AST, str]] = []


class _RngPass:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: Dict[str, _Summary] = {}
        self._in_progress: Set[str] = set()

    # -- per-function scan -------------------------------------------------
    def summary(self, fn: FunctionInfo) -> _Summary:
        cached = self.summaries.get(fn.id)
        if cached is not None:
            return cached
        summary = _Summary(fn)
        self.summaries[fn.id] = summary
        if fn.id in self._in_progress:
            return summary
        self._in_progress.add(fn.id)
        scanner = _Scanner(self, fn, summary)
        scanner.run()
        self._in_progress.discard(fn.id)
        return summary

    def callee_returns(self, fn: FunctionInfo) -> Optional[object]:
        return self.summary(fn).returns


class _Scanner:
    """One ordered walk of a function body, tracking family bindings."""

    def __init__(
        self, owner: _RngPass, fn: FunctionInfo, summary: _Summary
    ) -> None:
        self.owner = owner
        self.program = owner.program
        self.fn = fn
        self.summary = summary
        self.loop_depth = 0
        self._params = set(fn.params())

    def run(self) -> None:
        self._stmts(self.fn.node.body)

    # -- family evaluation -------------------------------------------------
    def family_of(self, expr: ast.AST) -> Optional[_Ref]:
        fn = self.fn
        if isinstance(expr, ast.Name):
            bound = self.summary.bindings.get(expr.id)
            if bound is not None:
                return bound
            if expr.id in self._params:
                return _Ref("param", param=expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return _Ref("attr", attr=expr.attr)
            return None
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        # RngStreams(...) construction — the injection point.
        ctor_name = None
        if isinstance(func, ast.Name):
            ctor_name = func.id
        elif isinstance(func, ast.Attribute):
            ctor_name = func.attr
        if ctor_name in _FAMILY_CTORS:
            key = ("ctor", fn.path, expr.lineno)
            return _Ref(
                "concrete",
                key=key,
                chain=(
                    _step(fn, expr, "RngStreams family constructed here"),
                ),
            )
        if ctor_name in _NPGEN_CTORS:
            key = ("npgen", fn.path, expr.lineno)
            return _Ref(
                "concrete",
                key=key,
                chain=(
                    _step(fn, expr, "numpy Generator constructed here"),
                ),
            )
        # <family>.spawn(name) — derivation.
        if isinstance(func, ast.Attribute) and func.attr == "spawn":
            parent = self.family_of(func.value)
            if parent is None:
                return None
            name = _name_repr(expr.args[0] if expr.args else None)
            parent_key = self._key_of(parent)
            key = ("spawn", parent_key, name)
            chain = parent.chain + (
                _step(fn, expr, f"child family spawned with name {name}"),
            )
            return _Ref("concrete", key=key, chain=chain[-_MAX_CHAIN:])
        # A helper returning a family: re-key per call site so separate
        # callers are never conflated.
        for target in self.program.call_targets(fn, expr):
            returned = self.owner.callee_returns(target)
            if returned is None:
                continue
            if isinstance(returned, _Ref) and returned.kind == "concrete":
                key = ("via", fn.path, expr.lineno, returned.key)
                chain = returned.chain + (
                    _step(fn, expr, f"family returned by {target.qualname}"),
                )
                return _Ref("concrete", key=key, chain=chain[-_MAX_CHAIN:])
            if (
                isinstance(returned, tuple)
                and returned
                and returned[0] == "spawnofparam"
            ):
                _, param, name = returned
                for bound_param, arg in self.program.bind_arguments(
                    fn, expr, target
                ):
                    if bound_param != param:
                        continue
                    base = self.family_of(arg)
                    if base is None:
                        return None
                    key = ("spawn", self._key_of(base), name)
                    chain = base.chain + (
                        _step(
                            fn,
                            expr,
                            f"family spawned via {target.qualname}"
                            f" with name {name}",
                        ),
                    )
                    return _Ref(
                        "concrete", key=key, chain=chain[-_MAX_CHAIN:]
                    )
        return None

    def _key_of(self, ref: _Ref) -> Tuple:
        if ref.kind == "concrete":
            return ref.key  # type: ignore[return-value]
        if ref.kind == "param":
            return ("param", self.fn.id, ref.param)
        cls = self._owner_class()
        cls_id = cls.id if cls is not None else self.fn.id
        return ("attr", cls_id, ref.attr)

    def _owner_class(self) -> Optional[ClassInfo]:
        if self.fn.cls is not None:
            return self.fn.cls
        scope = self.fn.parent
        while scope is not None:
            if scope.cls is not None:
                return scope.cls
            scope = scope.parent
        return None

    # -- expression effects ------------------------------------------------
    def _effects(self, expr: ast.AST) -> None:
        """Record draws and family-argument passes inside ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Subscript) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                ref = self.family_of(node.value)
                if ref is not None:
                    index = node.slice
                    is_const = isinstance(index, ast.Constant) and isinstance(
                        index.value, str
                    )
                    self.summary.draws.append(
                        (ref, _name_repr(index), is_const, node)
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _NPGEN_DRAWS
                ):
                    ref = self.family_of(func.value)
                    if ref is not None:
                        self.summary.draws.append(
                            (ref, _NPGEN_NAME, True, node)
                        )
                for target in self.program.call_targets(self.fn, node):
                    for param, arg in self.program.bind_arguments(
                        self.fn, node, target
                    ):
                        ref = self.family_of(arg)
                        if ref is not None:
                            self.summary.passes.append(
                                (target, param, ref, node)
                            )

    # -- statement walk ----------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._effects(stmt.value)
            self._assign(stmt.targets[0], stmt.value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._effects(stmt.value)
            self._assign(stmt.target, stmt.value, stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._effects(stmt.value)
                returned = self.family_of(stmt.value)
                if returned is not None and self.summary.returns is None:
                    self.summary.returns = self._returned_shape(
                        stmt.value, returned
                    )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._effects(stmt.iter)
            self.loop_depth += 1
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            self.loop_depth -= 1
            return
        if isinstance(stmt, ast.While):
            self._effects(stmt.test)
            self.loop_depth += 1
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            self.loop_depth -= 1
            return
        if isinstance(stmt, ast.If):
            self._effects(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._effects(item.context_expr)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        # Everything else: record effects of any contained expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._effects(child)

    def _returned_shape(self, value: ast.expr, ref: _Ref) -> object:
        """Summarize a returned family for call-site substitution."""
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "spawn"
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id in self._params
        ):
            name = _name_repr(value.args[0] if value.args else None)
            return ("spawnofparam", value.func.value.id, name)
        return ref

    def _assign(
        self, target: ast.expr, value: ast.expr, stmt: ast.stmt
    ) -> None:
        ref = self.family_of(value)
        self._check_cycle(target, value, stmt)
        if isinstance(target, ast.Name):
            if ref is not None:
                self.summary.bindings[target.id] = ref
            else:
                self.summary.bindings.pop(target.id, None)

    def _check_cycle(
        self, target: ast.expr, value: ast.expr, stmt: ast.stmt
    ) -> None:
        """RPR102: family re-derived from itself."""
        base = _spawn_base(value)
        if base is None:
            # One-hop helper: ``s = derive(s)`` where derive returns
            # ``param.spawn(...)``.
            if isinstance(value, ast.Call):
                for callee in self.program.call_targets(self.fn, value):
                    returned = self.owner.callee_returns(callee)
                    if (
                        isinstance(returned, tuple)
                        and returned
                        and returned[0] == "spawnofparam"
                    ):
                        for param, arg in self.program.bind_arguments(
                            self.fn, value, callee
                        ):
                            if param == returned[1]:
                                base = arg
                                break
            if base is None:
                return
        same = False
        if isinstance(target, ast.Name) and isinstance(base, ast.Name):
            same = target.id == base.id
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(base, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and isinstance(base.value, ast.Name)
        ):
            same = (
                target.value.id == base.value.id == "self"
                and target.attr == base.attr
            )
        if not same:
            return
        label = ast.unparse(target)
        if self.loop_depth > 0:
            self.summary.cycles.append(
                (
                    stmt,
                    f"derivation cycle: {label!r} is re-spawned from "
                    "itself inside a loop, so every substream derived "
                    "from it depends on the iteration count",
                )
            )
        elif (
            isinstance(target, ast.Attribute)
            and self._owner_class() is not None
            and self.fn.name not in ("__init__", "__new__")
        ):
            self.summary.cycles.append(
                (
                    stmt,
                    f"derivation cycle: {label!r} is re-spawned from "
                    f"itself in {self.fn.qualname}(), which can run more "
                    "than once per instance — substream identity then "
                    "depends on call order",
                )
            )


def _spawn_base(value: ast.expr) -> Optional[ast.expr]:
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "spawn"
    ):
        return value.func.value
    return None


def _suppressed(fn: FunctionInfo, node: ast.AST, code: str) -> bool:
    codes = fn.module.suppressions.get(getattr(node, "lineno", 0))
    return bool(codes) and ("all" in codes or code in codes)


def analyze_rng(program: Program) -> List[Finding]:
    """Run the provenance pass; returns RPR101 + RPR102 findings."""
    rng_pass = _RngPass(program)
    for fn in program.sorted_functions():
        rng_pass.summary(fn)

    # -- interprocedural propagation: concrete families into parameters.
    param_values: Dict[Tuple[str, str], Dict[Tuple, Tuple[TraceStep, ...]]]
    param_values = {}
    worklist: List[Tuple[str, str, Tuple, Tuple[TraceStep, ...]]] = []

    def offer(
        callee: FunctionInfo,
        param: str,
        key: Tuple,
        chain: Tuple[TraceStep, ...],
    ) -> None:
        slot = param_values.setdefault((callee.id, param), {})
        if key in slot:
            return
        slot[key] = chain[-_MAX_CHAIN:]
        worklist.append((callee.id, param, key, slot[key]))

    for fn in program.sorted_functions():
        summary = rng_pass.summaries[fn.id]
        for callee, param, ref, call in summary.passes:
            if ref.kind == "concrete":
                step = _step(
                    fn, call, f"passed to {callee.qualname}({param}=...)"
                )
                offer(callee, param, ref.key, ref.chain + (step,))
            elif ref.kind == "attr":
                scanner = _Scanner(rng_pass, fn, summary)
                key = scanner._key_of(ref)
                step = _step(
                    fn, call, f"passed to {callee.qualname}({param}=...)"
                )
                offer(callee, param, key, (step,))

    while worklist:
        fn_id, param, key, chain = worklist.pop()
        fn = program.functions.get(fn_id)
        if fn is None or len(chain) >= _MAX_CHAIN:
            continue
        summary = rng_pass.summaries[fn_id]
        for callee, callee_param, ref, call in summary.passes:
            if ref.kind == "param" and ref.param == param:
                step = _step(
                    fn,
                    call,
                    f"forwarded to {callee.qualname}({callee_param}=...)",
                )
                offer(callee, callee_param, key, chain + (step,))

    # -- expand draws into (key, name) groups.
    groups: Dict[
        Tuple[Tuple, str],
        Dict[Tuple[str, int], Tuple[FunctionInfo, ast.AST, Tuple]],
    ] = {}

    def record(
        key: Tuple,
        name: str,
        fn: FunctionInfo,
        node: ast.AST,
        chain: Tuple[TraceStep, ...],
    ) -> None:
        site = (fn.path, getattr(node, "lineno", fn.lineno))
        groups.setdefault((key, name), {}).setdefault(
            site, (fn, node, chain)
        )

    findings: List[Finding] = []
    for fn in program.sorted_functions():
        summary = rng_pass.summaries[fn.id]
        for node, message in summary.cycles:
            if _suppressed(fn, node, "RPR102"):
                continue
            findings.append(
                Finding(
                    path=fn.path,
                    line=getattr(node, "lineno", fn.lineno),
                    col=getattr(node, "col_offset", 0),
                    code="RPR102",
                    rule="rng-derivation-cycle",
                    severity="error",
                    message=message,
                    trace=(
                        _step(fn, node, f"in {fn.qualname}"),
                    ),
                )
            )
        for ref, name, is_const, node in summary.draws:
            if not is_const:
                continue  # dynamic substream names cannot be aliased
            if _suppressed(fn, node, "RPR101"):
                continue
            draw_step = _step(
                fn, node, f"substream {name} drawn in {fn.qualname}"
            )
            if ref.kind == "concrete":
                record(ref.key, name, fn, node, ref.chain + (draw_step,))
            elif ref.kind == "param":
                for key, chain in sorted(
                    param_values.get((fn.id, ref.param), {}).items(),
                    key=lambda item: repr(item[0]),
                ):
                    record(key, name, fn, node, chain + (draw_step,))
            else:  # self.<attr>
                scanner = _Scanner(rng_pass, fn, summary)
                cls = scanner._owner_class()
                key = scanner._key_of(ref)
                chain: Tuple[TraceStep, ...] = ()
                if cls is not None:
                    assign = program.attr_assignment(cls, ref.attr or "")
                    if assign is not None:
                        owner, assign_node = assign
                        chain = (
                            _step(
                                owner,
                                assign_node,
                                f"family bound to self.{ref.attr} in "
                                f"{owner.qualname}",
                            ),
                        )
                record(key, name, fn, node, chain + (draw_step,))

    for (key, name) in sorted(groups, key=lambda item: repr(item)):
        sites = groups[(key, name)]
        if len(sites) < 2:
            continue
        ordered = sorted(sites)
        if name == _NPGEN_NAME:
            # Sequential draws within one function are normal Generator
            # use; the hazard is one instance reached from several
            # consumers.
            qualnames = {sites[site][0].qualname for site in ordered}
            if len(qualnames) < 2:
                continue
        anchor_fn, anchor_node, anchor_chain = sites[ordered[0]]
        site_list = ", ".join(f"{path}:{line}" for path, line in ordered)
        trace: List[TraceStep] = list(anchor_chain)
        for site in ordered[1:]:
            other_fn, other_node, _ = sites[site]
            trace.append(
                _step(
                    other_fn,
                    other_node,
                    f"also drawn in {other_fn.qualname}",
                )
            )
        if name == _NPGEN_NAME:
            message = (
                f"one numpy Generator is drawn from at {len(ordered)} "
                f"independent sites ({site_list}); a Generator holds a "
                "single stream, so consumers sharing it are "
                "order-coupled — derive one generator per consumer from "
                "the RngStreams family"
            )
        else:
            message = (
                f"substream {name} of one RngStreams family is drawn "
                f"at {len(ordered)} independent sites ({site_list}); "
                "components sharing a substream are order-coupled — "
                "derive one named substream per consumer"
            )
        findings.append(
            Finding(
                path=anchor_fn.path,
                line=getattr(anchor_node, "lineno", anchor_fn.lineno),
                col=getattr(anchor_node, "col_offset", 0),
                code="RPR101",
                rule="substream-aliasing",
                severity="error",
                message=message,
                trace=tuple(trace),
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings
