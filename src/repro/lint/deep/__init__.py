"""Whole-program dataflow analyses behind ``repro lint --deep``.

The line-local rule pack (RPR001-RPR009) checks what a single file can
prove.  This package adds the interprocedural layer: a call-graph and
module-dependency builder over the linted file set (:mod:`.graph`,
sharing the AST import walker with ``repro.cache.fingerprint`` so
analyzer scope and cache-fingerprint scope never drift), and three
analyses that run over it:

* :mod:`.rng` — RPR101 substream aliasing / RPR102 derivation cycles:
  ``RngStreams`` families are tracked from injection point to draw
  site, across calls, and two independent components drawing the same
  substream are flagged with the full chain;
* :mod:`.races` — RPR103 same-time races: per-process-generator write
  sets over shared objects, intersected across generators that can be
  scheduled at an identical timestamp;
* :mod:`.purity` — RPR104 cache purity: every ``@memoize``\\ d solver
  and every cacheable experiment cell is proved to read only its
  parameters and fingerprinted code, or the escaping read is flagged
  with the call chain that reaches it.

Entry point: :func:`deep_lint_paths`.
"""

from repro.lint.deep.engine import (
    DEEP_CODES,
    deep_lint_paths,
    deep_lint_program,
)
from repro.lint.deep.graph import Program, build_program

__all__ = [
    "DEEP_CODES",
    "Program",
    "build_program",
    "deep_lint_paths",
    "deep_lint_program",
]
