"""Deep-pass orchestration: build the program, run the analyses.

:func:`deep_lint_paths` is the entry the CLI (``repro lint --deep``)
and the benchmark harness call.  It builds one :class:`~.graph.Program`
over the requested paths (every file parsed at most once per content
digest, shared with the line-local pass via ``repro.lint.astcache``)
and runs the three whole-program analyses over it.

Each analysis already honours inline suppressions at its own anchor
and sink sites; this layer adds a final anchor-line filter so a
``# repro-lint: disable=RPR1xx`` next to any reported line always
wins, matching the line-local engine's contract exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.deep import graph as _graph
from repro.lint.deep.purity import analyze_purity
from repro.lint.deep.races import analyze_races
from repro.lint.deep.rng import analyze_rng
from repro.lint.findings import Finding

__all__ = ["DEEP_CODES", "deep_lint_paths", "deep_lint_program"]

#: code -> (rule name, severity, one-line description).  The registry
#: the CLI, SARIF emitter, and docs table all read from.
DEEP_CODES: Dict[str, Tuple[str, str, str]] = {
    "RPR101": (
        "substream-aliasing",
        "error",
        "two independent sites draw the same named RngStreams substream,"
        " coupling their draw order",
    ),
    "RPR102": (
        "rng-derivation-cycle",
        "error",
        "an RNG family is re-spawned from itself, making substream"
        " identity depend on iteration or call order",
    ),
    "RPR103": (
        "same-time-race",
        "warning",
        "process generators schedulable at one instant write overlapping"
        " shared state with no documented tie-break",
    ),
    "RPR104": (
        "cache-impurity",
        "error",
        "a memoized solver or cacheable cell reads state outside its"
        " cache key (environ, files, module globals, closures)",
    ),
}

_ANALYSES = (analyze_rng, analyze_races, analyze_purity)


def deep_lint_program(
    program: "_graph.Program", codes: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run every deep analysis over an already-built program.

    Results are memoized on the program: analyses are pure functions
    of it, and :func:`~.graph.build_program` returns the same object
    for an unchanged file set (the benchmark's warm pass).
    """
    wanted = set(codes) if codes is not None else None
    memo = getattr(program, "_deep_findings", None)
    if memo is None:
        memo = program._deep_findings = {}
    memo_key = frozenset(wanted) if wanted is not None else None
    if memo_key in memo:
        return list(memo[memo_key])
    by_path = {
        module.rel_path: module for module in program.sorted_modules()
    }
    findings: List[Finding] = []
    for analyze in _ANALYSES:
        for finding in analyze(program):
            if wanted is not None and finding.code not in wanted:
                continue
            module = by_path.get(finding.path)
            if module is not None:
                suppressed = module.suppressions.get(finding.line)
                if suppressed and (
                    "all" in suppressed or finding.code in suppressed
                ):
                    continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    memo[memo_key] = tuple(findings)
    return findings


def deep_lint_paths(
    paths: Sequence[str], codes: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Build the whole-program view of ``paths`` and deep-lint it."""
    program = _graph.build_program(paths)
    return deep_lint_program(program, codes=codes)
