"""RPR104: cache purity of memoized solvers and cacheable cells.

Both cache layers key a computation on *parameters plus fingerprinted
code* (``repro.cache``): ``@memoize`` tables key on the call arguments,
and the content-addressed store keys cells on their kwargs and the
transitive source closure.  Any input that reaches the computation
outside that key — an environment variable, a file read, mutable
module state, a closure capture — silently poisons the cache: two
processes with different surroundings share one entry.

This pass finds every **cache root**:

* functions decorated with ``@memoize`` / ``@memoize(...)``;
* cell functions passed as the callable to ``map_cells`` /
  ``run_cells`` (the cacheable execution primitive);

and walks the resolved call graph beneath each root looking for
**escaping reads**:

* ``os.environ`` / ``os.getenv`` access;
* file reads (``open``, ``.read_text()``, ``.read_bytes()``) — file
  content is not part of any cache key;
* mutable module-global state: ``global`` writes, item stores or
  mutator calls on module-level objects (reads through such state are
  then order-dependent);
* closure captures: a nested cached function reading a variable from
  its enclosing scope (captured values are invisible to the key).

``self``-attribute reads are deliberately allowed: the instance is part
of the memo key (by identity), and cached instances are expected to be
frozen.  Each finding is anchored at the escaping read and carries the
root-to-sink call chain; an intentional escape is suppressed *at the
sink* with ``# repro-lint: disable=RPR104`` plus a justification.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.deep.graph import (
    FunctionInfo,
    Program,
    own_nodes,
)
from repro.lint.findings import Finding, TraceStep

__all__ = ["analyze_purity"]

#: Call-graph depth explored beneath each cache root.
_MAX_DEPTH = 6

#: Receiver methods that read file content.
_FILE_READERS = {"read_text", "read_bytes"}

#: Mutator method names on module-global objects (shared with the race
#: detector's intent: these mutate their receiver).
_GLOBAL_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "extend",
    "insert",
    "pop",
    "popleft",
    "register",
    "remove",
    "setdefault",
    "update",
}

_BUILTIN_NAMES = frozenset(dir(builtins))


class _Effect:
    """One escaping read inside one function."""

    __slots__ = ("kind", "node", "detail")

    def __init__(self, kind: str, node: ast.AST, detail: str) -> None:
        self.kind = kind
        self.node = node
        self.detail = detail


def _step(fn: FunctionInfo, node: ast.AST, note: str) -> TraceStep:
    return TraceStep(
        path=fn.path, line=getattr(node, "lineno", fn.lineno), note=note
    )


def _local_names(fn: FunctionInfo) -> Set[str]:
    names = set(fn.params())
    for node in own_nodes(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def _is_os_ref(fn: FunctionInfo, node: ast.expr, attr: str) -> bool:
    """Does ``node`` denote ``os.<attr>`` or a from-import of it?"""
    ctx = fn.module.ctx
    if isinstance(node, ast.Attribute) and node.attr == attr:
        base = node.value
        return (
            isinstance(base, ast.Name)
            and ctx.module_aliases.get(base.id) == "os"
        )
    if isinstance(node, ast.Name) and node.id == attr:
        return ctx.from_imports.get(attr, (None, None))[0] == "os"
    if isinstance(node, ast.Name):
        source, original = ctx.from_imports.get(node.id, (None, None))
        return source == "os" and original == attr
    return False


def _function_effects(program: Program, fn: FunctionInfo) -> List[_Effect]:
    effects: List[_Effect] = []
    locals_ = _local_names(fn)
    global_decls: Set[str] = set()
    for node in own_nodes(fn.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
    for node in own_nodes(fn.node):
        # -- environment reads.
        if isinstance(node, ast.Attribute) or isinstance(node, ast.Name):
            if _is_os_ref(fn, node, "environ"):
                effects.append(
                    _Effect(
                        "environ",
                        node,
                        "reads os.environ (not part of any cache key)",
                    )
                )
                continue
        if isinstance(node, ast.Call):
            func = node.func
            if _is_os_ref(fn, func, "getenv"):
                effects.append(
                    _Effect(
                        "environ",
                        node,
                        "reads os.getenv (not part of any cache key)",
                    )
                )
                continue
            # -- file reads.
            if (
                isinstance(func, ast.Name)
                and func.id == "open"
                and "open" not in locals_
            ):
                effects.append(
                    _Effect(
                        "file-read",
                        node,
                        "opens a file (content escapes the cache key)",
                    )
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _FILE_READERS
            ):
                effects.append(
                    _Effect(
                        "file-read",
                        node,
                        f".{func.attr}() reads a file (content escapes "
                        "the cache key)",
                    )
                )
                continue
            # -- mutator call on a module-global object.
            if isinstance(func, ast.Attribute) and (
                func.attr in _GLOBAL_MUTATORS
            ):
                gname = _global_name(fn, func.value, locals_)
                if gname is not None:
                    effects.append(
                        _Effect(
                            "global-state",
                            node,
                            f"mutates module-global {gname!r} via "
                            f".{func.attr}()",
                        )
                    )
                    continue
        # -- global-statement writes and stores into globals.
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in global_decls:
                effects.append(
                    _Effect(
                        "global-state",
                        node,
                        f"rebinds module-global {node.id!r} "
                        "(declared global)",
                    )
                )
                continue
        if isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ):
            base: ast.expr = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(base, ast.Name)
                and base.id in ("self", "cls")
            ):
                continue  # instance state is part of the memo key
            gname = _global_name(fn, base, locals_)
            if gname is not None:
                effects.append(
                    _Effect(
                        "global-state",
                        node,
                        f"stores into module-global {gname!r}",
                    )
                )
    return effects


def _global_name(
    fn: FunctionInfo, node: ast.expr, locals_: Set[str]
) -> Optional[str]:
    """Name of the module-level object ``node`` is rooted at, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if not isinstance(node, ast.Name) or node.id in locals_:
        return None
    name = node.id
    if name in _BUILTIN_NAMES or name in ("self", "cls"):
        return None
    ctx = fn.module.ctx
    if name in ctx.module_aliases:
        return None  # module object, not mutable program state
    if name in fn.module.functions or name in fn.module.classes:
        return None
    if name in ctx.from_imports:
        source, original = ctx.from_imports[name]
        return f"{source}.{original}"
    if _bound_at_module_scope(fn.module, name):
        return name
    return None


def _bound_at_module_scope(module, name: str) -> bool:
    for stmt in module.parsed.tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return True
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name) and element.id == name:
                        return True
    return False


def _closure_captures(fn: FunctionInfo) -> List[_Effect]:
    """Free variables a nested cached function reads from its closure."""
    if fn.parent is None:
        return []
    enclosing: Set[str] = set()
    scope = fn.parent
    while scope is not None:
        enclosing.update(_local_names(scope))
        scope = scope.parent
    locals_ = _local_names(fn)
    effects: List[_Effect] = []
    seen: Set[str] = set()
    for node in own_nodes(fn.node):
        if not (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in locals_
            and node.id not in _BUILTIN_NAMES
            and node.id in enclosing
            and node.id not in seen
        ):
            continue
        seen.add(node.id)
        effects.append(
            _Effect(
                "closure-capture",
                node,
                f"captures {node.id!r} from the enclosing scope "
                "(invisible to the cache key)",
            )
        )
    return effects


def _roots(program: Program) -> List[Tuple[FunctionInfo, str, ast.AST]]:
    """(function, kind, anchor node) for every cache root."""
    roots: List[Tuple[FunctionInfo, str, ast.AST]] = []
    seen: Set[str] = set()
    for fn in program.sorted_functions():
        for decorator in getattr(fn.node, "decorator_list", []):
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "memoize" and fn.id not in seen:
                seen.add(fn.id)
                roots.append((fn, "@memoize'd solver", decorator))
    for fn in program.sorted_functions():
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name not in ("map_cells", "run_cells") or not node.args:
                continue
            cell = program.resolve_expr(fn, node.args[0])
            if isinstance(cell, FunctionInfo) and cell.id not in seen:
                seen.add(cell.id)
                roots.append((cell, "cacheable cell", node))
    return roots


def _suppressed(fn: FunctionInfo, node: ast.AST) -> bool:
    codes = fn.module.suppressions.get(getattr(node, "lineno", 0))
    return bool(codes) and ("all" in codes or "RPR104" in codes)


def analyze_purity(program: Program) -> List[Finding]:
    effect_cache: Dict[str, List[_Effect]] = {}

    def effects_of(fn: FunctionInfo) -> List[_Effect]:
        cached = effect_cache.get(fn.id)
        if cached is None:
            cached = _function_effects(program, fn)
            effect_cache[fn.id] = cached
        return cached

    findings: List[Finding] = []
    reported: Set[Tuple] = set()

    for root, root_kind, _anchor in _roots(program):
        # BFS with predecessor tracking for chain recovery.
        frontier: List[Tuple[FunctionInfo, Tuple[TraceStep, ...]]] = [
            (
                root,
                (
                    _step(
                        root,
                        root.node,
                        f"{root_kind} {root.qualname}() is cached on its "
                        "parameters",
                    ),
                ),
            )
        ]
        visited: Set[str] = set()
        depth = 0
        while frontier and depth <= _MAX_DEPTH:
            next_frontier: List[
                Tuple[FunctionInfo, Tuple[TraceStep, ...]]
            ] = []
            for fn, chain in frontier:
                if fn.id in visited:
                    continue
                visited.add(fn.id)
                fn_effects = list(effects_of(fn))
                if fn is root:
                    fn_effects.extend(_closure_captures(fn))
                for effect in fn_effects:
                    site = (
                        fn.path,
                        getattr(effect.node, "lineno", fn.lineno),
                        effect.kind,
                    )
                    if site in reported or _suppressed(fn, effect.node):
                        continue
                    reported.add(site)
                    findings.append(
                        Finding(
                            path=fn.path,
                            line=getattr(effect.node, "lineno", fn.lineno),
                            col=getattr(effect.node, "col_offset", 0),
                            code="RPR104",
                            rule="cache-impurity",
                            severity="error",
                            message=(
                                f"{effect.detail}, but this code is "
                                f"reachable from {root_kind} "
                                f"{root.qualname}() — the cached result "
                                "can then depend on state outside the "
                                "cache key"
                            ),
                            trace=chain
                            + (_step(fn, effect.node, effect.detail),),
                        )
                    )
                for callee, call_node in program.callees(fn):
                    if callee.id in visited:
                        continue
                    next_frontier.append(
                        (
                            callee,
                            chain
                            + (
                                _step(
                                    fn,
                                    call_node,
                                    f"calls {callee.qualname}()",
                                ),
                            ),
                        )
                    )
            frontier = next_frontier
            depth += 1
    findings.sort(key=Finding.sort_key)
    return findings
