"""Program model for the deep pass: modules, classes, call graph.

:func:`build_program` walks a set of files/directories (the same walk
as the line-local engine), assigns each file a dotted module name by
climbing its ``__init__.py`` package chain, and builds:

* a **module-dependency graph** discovered through
  :func:`repro.cache.fingerprint.imported_modules` — the exact AST
  import walker the result cache fingerprints with, so "what the deep
  pass analyzes" and "what invalidates the cache" are one definition;
* a **symbol table** per module (functions, classes, imported names);
* a **call graph**: per-function callee lists resolved conservatively
  (direct names, imported names, ``self.method`` through the MRO,
  locals and ``self.<attr>`` with inferred class types, constructor
  calls, ``yield from``).

Resolution is deliberately *under*-approximate: an edge exists only
when the target is certain.  The analyses built on top are therefore
quiet rather than noisy — they miss dynamic dispatch, but every edge
they do traverse is real, which is what lets findings carry an exact
source-to-sink chain.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cache.fingerprint import imported_modules_from_tree
from repro.lint import astcache
from repro.lint.engine import iter_python_files, normalize_path

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "build_program",
    "module_name_for",
]


def module_name_for(path: str) -> str:
    """Dotted module name derived from the package (``__init__.py``) chain.

    ``src/repro/net/loss.py`` -> ``repro.net.loss``;
    ``fixtures/aliaspkg/core.py`` -> ``aliaspkg.core`` (the climb stops
    at the first directory without an ``__init__.py``).
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
        if not package:  # filesystem root
            break
    return ".".join(reversed(parts)) or stem


class FunctionInfo:
    """One function/method definition (nested defs included)."""

    __slots__ = (
        "id",
        "module",
        "qualname",
        "node",
        "cls",
        "parent",
        "nested",
        "is_generator",
        "local_types",
        "_callees",
    )

    def __init__(
        self,
        module: "ModuleInfo",
        qualname: str,
        node: ast.AST,
        cls: Optional["ClassInfo"],
        parent: Optional["FunctionInfo"],
    ) -> None:
        self.id = f"{module.name}:{qualname}"
        self.module = module
        self.qualname = qualname
        self.node = node
        self.cls = cls
        self.parent = parent
        self.nested: Dict[str, "FunctionInfo"] = {}
        self.is_generator = any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for sub in own_nodes(node)
        )
        self.local_types: Optional[Dict[str, "ClassInfo"]] = None
        self._callees: Optional[List[Tuple["FunctionInfo", ast.Call]]] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def path(self) -> str:
        return self.module.rel_path

    def params(self) -> List[str]:
        args = self.node.args
        return [
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<fn {self.id}>"


class ClassInfo:
    """One class definition plus its inferred ``self.<attr>`` types."""

    __slots__ = ("id", "module", "qualname", "node", "base_refs", "methods",
                 "attr_types", "attr_assigns")

    def __init__(
        self, module: "ModuleInfo", qualname: str, node: ast.ClassDef
    ) -> None:
        self.id = f"{module.name}:{qualname}"
        self.module = module
        self.qualname = qualname
        self.node = node
        self.base_refs: List[ast.expr] = list(node.bases)
        self.methods: Dict[str, FunctionInfo] = {}
        #: attr -> ClassInfo inferred from ``self.attr = Cls(...)``.
        self.attr_types: Dict[str, "ClassInfo"] = {}
        #: attr -> (FunctionInfo, assign node) of its first assignment.
        self.attr_assigns: Dict[str, Tuple[FunctionInfo, ast.AST]] = {}

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<class {self.id}>"


class ModuleInfo:
    """One parsed module in the analyzed program."""

    __slots__ = ("name", "path", "rel_path", "parsed", "functions",
                 "classes", "deps")

    def __init__(self, name: str, path: str, parsed) -> None:
        self.name = name
        self.path = path
        self.rel_path = normalize_path(path)
        self.parsed = parsed
        #: every function in the module by dotted qualname
        #: ("fn", "Cls.meth", "outer.inner").
        self.functions: Dict[str, FunctionInfo] = {}
        #: every class by dotted qualname.
        self.classes: Dict[str, ClassInfo] = {}
        #: in-program module names this module imports.
        self.deps: Set[str] = set()

    @property
    def ctx(self):
        return self.parsed.ctx

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        return self.parsed.suppressions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<module {self.name} ({self.rel_path})>"


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class Program:
    """The resolved whole-program view the deep analyses run over."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction ------------------------------------------------------
    def _add_module(self, name: str, path: str, parsed) -> ModuleInfo:
        module = ModuleInfo(name, path, parsed)
        self.modules[name] = module
        self._collect_defs(module)
        return module

    def _collect_defs(self, module: ModuleInfo) -> None:
        def visit(
            node: ast.AST,
            prefix: str,
            cls: Optional[ClassInfo],
            parent: Optional[FunctionInfo],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    info = FunctionInfo(module, qual, child, cls, parent)
                    module.functions[qual] = info
                    self.functions[info.id] = info
                    if cls is not None and parent is None:
                        cls.methods[child.name] = info
                    if parent is not None:
                        parent.nested[child.name] = info
                    visit(child, f"{qual}.", None, info)
                elif isinstance(child, ast.ClassDef):
                    qual = f"{prefix}{child.name}"
                    cinfo = ClassInfo(module, qual, child)
                    module.classes[qual] = cinfo
                    self.classes[cinfo.id] = cinfo
                    visit(child, f"{qual}.", cinfo, None)
                else:
                    visit(child, prefix, cls, parent)

        visit(module.parsed.tree, "", None, None)

    def _link_deps(self) -> None:
        for module in self.modules.values():
            is_package = module.path.endswith("__init__.py")
            for imported in imported_modules_from_tree(
                module.parsed.tree, module.name, is_package
            ):
                if imported in self.modules and imported != module.name:
                    module.deps.add(imported)

    def _infer_attr_types(self) -> None:
        """``self.attr = Cls(...)`` anywhere in a class -> attr type."""
        for cls in self.classes.values():
            for method in cls.methods.values():
                for node in own_nodes(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign) and node.value:
                        target, value = node.target, node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    cls.attr_assigns.setdefault(attr, (method, node))
                    if isinstance(value, ast.Call):
                        resolved = self.resolve_expr(method, value.func)
                        if isinstance(resolved, ClassInfo):
                            cls.attr_types.setdefault(attr, resolved)

    # -- name resolution ---------------------------------------------------
    def resolve_dotted(self, dotted: str):
        """``pkg.mod.Sym[.sub]`` -> ModuleInfo / ClassInfo / FunctionInfo."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return module
            return self._symbol_in(module, rest)
        return None

    def _symbol_in(self, module: ModuleInfo, parts: List[str]):
        qual = ".".join(parts)
        if qual in module.functions:
            return module.functions[qual]
        if qual in module.classes:
            return module.classes[qual]
        # Follow one level of re-export (``from .core import Thing``).
        head = parts[0]
        target = self._imported_symbol(module, head)
        if target is not None and len(parts) == 1:
            return target
        if isinstance(target, ClassInfo) and len(parts) == 2:
            return target.methods.get(parts[1])
        return None

    def _imported_symbol(self, module: ModuleInfo, name: str, depth: int = 0):
        """Resolve ``name`` as an import binding of ``module``."""
        if depth > 4:
            return None
        ctx = module.ctx
        if name in ctx.from_imports:
            source, original = ctx.from_imports[name]
            source = self._absolutize(module, source)
            target_module = self.modules.get(source)
            if target_module is not None:
                if original in target_module.functions:
                    return target_module.functions[original]
                if original in target_module.classes:
                    return target_module.classes[original]
                # ``from pkg import submodule`` or a re-export chain.
                sub = self.modules.get(f"{source}.{original}")
                if sub is not None:
                    return sub
                return self._imported_symbol(
                    target_module, original, depth + 1
                )
            sub = self.modules.get(f"{source}.{original}")
            if sub is not None:
                return sub
        if name in ctx.module_aliases:
            return self.modules.get(ctx.module_aliases[name])
        return None

    def _absolutize(self, module: ModuleInfo, source: str) -> str:
        """Best-effort: map a from-import module string to program scope."""
        if source in self.modules:
            return source
        # FileContext flattens ``from . import x`` / ``from .m import x``
        # into the bare module string; resolve against the package.
        package = (
            module.name
            if module.path.endswith("__init__.py")
            else module.name.rsplit(".", 1)[0]
        )
        candidate = f"{package}.{source}" if source else package
        if candidate in self.modules:
            return candidate
        return source

    def _local_lookup(self, fn: FunctionInfo, name: str):
        """Nested defs visible from ``fn`` (its own, then enclosing)."""
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            if name in scope.nested:
                return scope.nested[name]
            scope = scope.parent
        return None

    def resolve_expr(self, fn: FunctionInfo, node: ast.AST):
        """Resolve an expression to a ModuleInfo/ClassInfo/FunctionInfo.

        Handles ``Name`` (local defs, module symbols, imports) and
        ``Attribute`` chains rooted at a module alias, an imported
        module, a class, ``self``, or a typed local/attribute.
        """
        if isinstance(node, ast.Name):
            local = self._local_lookup(fn, node.id)
            if local is not None:
                return local
            module = fn.module
            if node.id in module.functions and "." not in node.id:
                return module.functions[node.id]
            if node.id in module.classes and "." not in node.id:
                return module.classes[node.id]
            return self._imported_symbol(module, node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                if fn.cls is None and fn.parent is not None:
                    cls = fn.parent.cls
                else:
                    cls = fn.cls
                if cls is None:
                    return None
                method = self.method_of(cls, node.attr)
                if method is not None:
                    return method
                attr_cls = self.attr_type(cls, node.attr)
                return attr_cls
            resolved = self.resolve_expr(fn, base)
            if isinstance(resolved, ModuleInfo):
                if node.attr in resolved.functions:
                    return resolved.functions[node.attr]
                if node.attr in resolved.classes:
                    return resolved.classes[node.attr]
                sub = self.modules.get(f"{resolved.name}.{node.attr}")
                if sub is not None:
                    return sub
                return self._imported_symbol(resolved, node.attr)
            if isinstance(resolved, ClassInfo):
                method = self.method_of(resolved, node.attr)
                if method is not None:
                    return method
                return self.attr_type(resolved, node.attr)
        return None

    def expr_type(self, fn: FunctionInfo, node: ast.AST) -> Optional[ClassInfo]:
        """The ClassInfo an expression evaluates to, when statically known."""
        if isinstance(node, ast.Name):
            types = self._local_types(fn)
            if node.id in types:
                return types[node.id]
            if node.id == "self":
                return fn.cls or (fn.parent.cls if fn.parent else None)
            return None
        if isinstance(node, ast.Attribute):
            base_type = self.expr_type(fn, node.value)
            if base_type is not None:
                return self.attr_type(base_type, node.attr)
            return None
        if isinstance(node, ast.Call):
            resolved = self.resolve_expr(fn, node.func)
            if isinstance(resolved, ClassInfo):
                return resolved
        return None

    def _local_types(self, fn: FunctionInfo) -> Dict[str, ClassInfo]:
        """Var -> class for ``v = Cls(...)`` bindings and annotations."""
        if fn.local_types is not None:
            return fn.local_types
        types: Dict[str, ClassInfo] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                resolved = self._annotation_class(fn, arg.annotation)
                if resolved is not None:
                    types[arg.arg] = resolved
        for node in own_nodes(fn.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                resolved = self.resolve_expr(fn, value.func)
                if isinstance(resolved, ClassInfo):
                    types[target.id] = resolved
                    continue
            types.pop(target.id, None)
        fn.local_types = types
        return types

    def _annotation_class(
        self, fn: FunctionInfo, annotation: ast.expr
    ) -> Optional[ClassInfo]:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            resolved = self.resolve_dotted(annotation.value)
            if isinstance(resolved, ClassInfo):
                return resolved
            # Bare class name in a string annotation: same module first.
            cls = fn.module.classes.get(annotation.value)
            return cls
        resolved = self.resolve_expr(fn, annotation)
        return resolved if isinstance(resolved, ClassInfo) else None

    # -- class structure ---------------------------------------------------
    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Linearized ancestors (simple DFS; diamonds deduplicated)."""
        seen: List[ClassInfo] = []

        def walk(current: ClassInfo) -> None:
            if current in seen:
                return
            seen.append(current)
            owner_fn = _module_scope_fn(current.module)
            for base in current.base_refs:
                resolved = self.resolve_expr(owner_fn, base)
                if isinstance(resolved, ClassInfo):
                    walk(resolved)

        walk(cls)
        return seen

    def method_of(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for ancestor in self.mro(cls):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    def attr_type(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        for ancestor in self.mro(cls):
            if attr in ancestor.attr_types:
                return ancestor.attr_types[attr]
        return None

    def attr_assignment(
        self, cls: ClassInfo, attr: str
    ) -> Optional[Tuple[FunctionInfo, ast.AST]]:
        for ancestor in self.mro(cls):
            if attr in ancestor.attr_assigns:
                return ancestor.attr_assigns[attr]
        return None

    # -- call graph --------------------------------------------------------
    def callees(
        self, fn: FunctionInfo
    ) -> List[Tuple[FunctionInfo, ast.Call]]:
        """Resolved outgoing call edges of ``fn`` (memoized)."""
        if fn._callees is not None:
            return fn._callees
        edges: List[Tuple[FunctionInfo, ast.Call]] = []
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for target in self.call_targets(fn, node):
                edges.append((target, node))
        fn._callees = edges
        return edges

    def call_targets(
        self, fn: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        """Functions a call may invoke (constructors -> ``__init__``)."""
        resolved = self.resolve_expr(fn, call.func)
        targets: List[FunctionInfo] = []
        if isinstance(resolved, FunctionInfo):
            targets.append(resolved)
        elif isinstance(resolved, ClassInfo):
            init = self.method_of(resolved, "__init__")
            if init is not None:
                targets.append(init)
        elif resolved is None and isinstance(call.func, ast.Attribute):
            # Typed receiver: ``obj.m(...)`` with obj's class inferred.
            receiver = self.expr_type(fn, call.func.value)
            if receiver is not None:
                method = self.method_of(receiver, call.func.attr)
                if method is not None:
                    targets.append(method)
        return targets

    def bind_arguments(
        self, fn: FunctionInfo, call: ast.Call, callee: FunctionInfo
    ) -> List[Tuple[str, ast.expr]]:
        """Map call arguments to callee parameter names (best effort).

        Bound method calls (``obj.m(...)``, constructors) skip the
        ``self`` parameter; unbound calls (``Cls.m(inst, ...)``) and
        plain functions bind positionally from the start.
        """
        params = callee.params()
        if callee.cls is not None and params and params[0] in ("self", "cls"):
            bound = not (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id
                in (callee.cls.name, callee.cls.qualname)
            )
            if bound:
                params = params[1:]
        pairs: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                pairs.append((params[index], arg))
        names = set(callee.params())
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                pairs.append((keyword.arg, keyword.value))
        return pairs

    # -- traversal helpers -------------------------------------------------
    def sorted_functions(self) -> List[FunctionInfo]:
        return [self.functions[key] for key in sorted(self.functions)]

    def sorted_modules(self) -> List[ModuleInfo]:
        return [self.modules[key] for key in sorted(self.modules)]


_SCOPE_FNS: Dict[str, FunctionInfo] = {}


def _module_scope_fn(module: ModuleInfo) -> FunctionInfo:
    """A pseudo-function for module-scope name resolution (base classes)."""
    fn = _SCOPE_FNS.get(module.name)
    if fn is None or fn.module is not module:
        fake = ast.parse("def _module_scope_():\n    pass").body[0]
        fn = FunctionInfo(module, "_module_scope_", fake, None, None)
        _SCOPE_FNS[module.name] = fn
    return fn


#: Last built program, keyed by (cache generation, (path, digest)...).
#: One slot is enough: the CLI and benchmark always rebuild the same
#: file set, and the digest key makes a stale hit impossible.
_last_program_key: Optional[tuple] = None
_last_program: Optional[Program] = None


def build_program(paths: Sequence[str]) -> Program:
    """Parse every python file under ``paths`` into a :class:`Program`.

    Unparseable files are skipped (the line-local pass reports RPR000
    for them); duplicate module names keep the first occurrence in walk
    order, which is deterministic.  Rebuilding over an unchanged file
    set returns the previously built program.
    """
    global _last_program_key, _last_program
    loaded = []
    for file_path in iter_python_files(paths):
        try:
            parsed = astcache.load(file_path)
        except (OSError, SyntaxError):
            continue
        loaded.append((file_path, parsed))
    key = (
        astcache.generation(),
        tuple((file_path, parsed.digest) for file_path, parsed in loaded),
    )
    if key == _last_program_key and _last_program is not None:
        return _last_program
    program = Program()
    for file_path, parsed in loaded:
        name = module_name_for(file_path)
        if name in program.modules:
            continue
        program._add_module(name, file_path, parsed)
    program._link_deps()
    program._infer_attr_types()
    _last_program_key = key
    _last_program = program
    return program
