"""Finding record shared by the rule engine, baseline, and CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Recognised severity levels, most severe first.  Both levels gate the
#: build (any non-baselined finding fails); the split exists so output
#: consumers can triage.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class TraceStep:
    """One hop of an interprocedural source-to-sink chain."""

    path: str
    line: int
    note: str

    def as_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "note": self.note}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Line-local rules leave ``trace`` empty; the whole-program analyses
    (``repro lint --deep``) attach the call chain from source to sink —
    injection point to draw site for RPR101, root cell/solver to impure
    read for RPR104 — so a finding is actionable without re-running the
    analysis in one's head.
    """

    path: str  #: posix-normalised, repo-relative where possible
    line: int  #: 1-based
    col: int  #: 0-based (ast convention)
    code: str  #: e.g. "RPR001"
    rule: str  #: short kebab-case rule name
    severity: str  #: one of SEVERITIES
    message: str
    trace: Tuple[TraceStep, ...] = field(default=())

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        # Backwards-compatible payload: line-local findings keep the
        # historical seven-key shape pinned by tests/lint/test_cli_lint.
        if self.trace:
            payload["trace"] = [step.as_dict() for step in self.trace]
        return payload

    def render(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
        if not self.trace:
            return head
        steps = "\n".join(f"    via {step.render()}" for step in self.trace)
        return f"{head}\n{steps}"
