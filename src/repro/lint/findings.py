"""Finding record shared by the rule engine, baseline, and CLI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Recognised severity levels, most severe first.  Both levels gate the
#: build (any non-baselined finding fails); the split exists so output
#: consumers can triage.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  #: posix-normalised, repo-relative where possible
    line: int  #: 1-based
    col: int  #: 0-based (ast convention)
    code: str  #: e.g. "RPR001"
    rule: str  #: short kebab-case rule name
    severity: str  #: one of SEVERITIES
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
