"""``repro lint`` — command-line front end for the analyzer.

Usage::

    python -m repro lint [PATH ...] [--deep]
                         [--format text|json|sarif]
                         [--baseline FILE] [--write-baseline FILE]

``--deep`` additionally runs the whole-program pass
(:mod:`repro.lint.deep`: RNG provenance, same-time races, cache
purity) on top of the line-local rules; both passes share one
content-hash AST cache, so every file is parsed once.

Exit codes (stable contract, relied on by CI and the Makefile):

* ``0`` — clean: no findings beyond the baseline, no stale baseline
  entries;
* ``1`` — non-baselined findings and/or stale baseline entries;
* ``2`` — usage or environment error (missing path, unreadable
  baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.findings import Finding

DEFAULT_PATHS = ["src", "benchmarks", "examples"]

#: JSON payload schema version for --format json.
OUTPUT_VERSION = 1


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint arguments (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)}, those that exist)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program pass (RNG provenance, "
        "same-time races, cache purity: RPR101-RPR104)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (json is stable for editor/CI consumption; "
        "sarif is SARIF 2.1.0 for code-scanning ingestion)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="grandfather findings listed in this baseline; stale "
        "entries fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a fresh baseline and "
        "exit 0",
    )


def run(args: argparse.Namespace) -> int:
    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(p)]
        if not paths:
            print(
                "repro lint: no paths given and none of "
                f"{DEFAULT_PATHS} exist", file=sys.stderr,
            )
            return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(paths)
    deep_findings: Optional[List[Finding]] = None
    if args.deep:
        from repro.lint.deep import deep_lint_paths

        deep_findings = deep_lint_paths(paths)

    if args.write_baseline:
        diff = write_baseline(
            args.write_baseline, findings, deep_findings=deep_findings
        )
        total = len(findings) + len(deep_findings or [])
        print(f"wrote {total} finding(s) to {args.write_baseline}")
        for code in sorted(diff):
            added, removed = diff[code]["added"], diff[code]["removed"]
            print(f"  {code}: +{added} -{removed}")
        if not diff:
            print("  baseline unchanged")
        return 0

    stale: List[dict] = []
    reported = list(findings)
    baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        reported, stale = apply_baseline(findings, baseline)
        baselined = len(findings) - len(reported)
        if deep_findings is not None:
            new_deep, deep_stale = apply_baseline(
                deep_findings, baseline, section="deep"
            )
            baselined += len(deep_findings) - len(new_deep)
            reported.extend(new_deep)
            stale.extend(deep_stale)
    elif deep_findings is not None:
        reported.extend(deep_findings)
    reported.sort(key=Finding.sort_key)

    if args.format == "json":
        _print_json(reported, stale)
    elif args.format == "sarif":
        from repro.lint.sarif import sarif_json

        sys.stdout.write(sarif_json(reported))
    else:
        _print_text(reported, stale, baselined=baselined)
    return 1 if (reported or stale) else 0


def _print_json(findings: List[Finding], stale: List[dict]) -> None:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    payload = {
        "version": OUTPUT_VERSION,
        "findings": [f.as_dict() for f in findings],
        "counts": counts,
        "stale_baseline": stale,
    }
    print(json.dumps(payload, indent=1))


def _print_text(
    findings: List[Finding], stale: List[dict], baselined: int
) -> None:
    for finding in findings:
        print(finding.render())
    for entry in stale:
        print(
            f"{entry['path']}:{entry['line']}: stale baseline entry for "
            f"{entry['code']} (finding no longer present — delete it "
            "from the baseline)"
        )
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = f"{errors} error(s), {warnings} warning(s)"
    if baselined:
        summary += f", {baselined} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entr(y/ies)"
    print(summary if (findings or stale or baselined) else "clean: " + summary)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & simulation-safety analyzer",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
