"""``repro lint`` — command-line front end for the analyzer.

Usage::

    python -m repro lint [PATH ...] [--format text|json]
                         [--baseline FILE] [--write-baseline FILE]

Exit codes (stable contract, relied on by CI and the Makefile):

* ``0`` — clean: no findings beyond the baseline, no stale baseline
  entries;
* ``1`` — non-baselined findings and/or stale baseline entries;
* ``2`` — usage or environment error (missing path, unreadable
  baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.findings import Finding

DEFAULT_PATHS = ["src", "benchmarks", "examples"]

#: JSON payload schema version for --format json.
OUTPUT_VERSION = 1


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint arguments (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)}, those that exist)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is stable for editor/CI consumption)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="grandfather findings listed in this baseline; stale "
        "entries fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a fresh baseline and "
        "exit 0",
    )


def run(args: argparse.Namespace) -> int:
    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(p)]
        if not paths:
            print(
                "repro lint: no paths given and none of "
                f"{DEFAULT_PATHS} exist", file=sys.stderr,
            )
            return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(paths)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    stale: List[dict] = []
    reported = findings
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        reported, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        _print_json(reported, stale)
    else:
        _print_text(reported, stale, baselined=len(findings) - len(reported))
    return 1 if (reported or stale) else 0


def _print_json(findings: List[Finding], stale: List[dict]) -> None:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    payload = {
        "version": OUTPUT_VERSION,
        "findings": [f.as_dict() for f in findings],
        "counts": counts,
        "stale_baseline": stale,
    }
    print(json.dumps(payload, indent=1))


def _print_text(
    findings: List[Finding], stale: List[dict], baselined: int
) -> None:
    for finding in findings:
        print(finding.render())
    for entry in stale:
        print(
            f"{entry['path']}:{entry['line']}: stale baseline entry for "
            f"{entry['code']} (finding no longer present — delete it "
            "from the baseline)"
        )
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = f"{errors} error(s), {warnings} warning(s)"
    if baselined:
        summary += f", {baselined} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entr(y/ies)"
    print(summary if (findings or stale or baselined) else "clean: " + summary)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & simulation-safety analyzer",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
