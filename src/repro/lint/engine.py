"""File walking, parsing, suppression handling, and rule dispatch.

The engine parses each file once, extracts inline suppressions from the
token stream, instantiates every registered rule whose path scope
matches, and returns the surviving findings sorted by location.

Suppression syntax (checked against the comment tokens, so it works on
any physical line, including inside expressions)::

    something_hot()        # repro-lint: disable=RPR002
    # repro-lint: disable-next=RPR001,RPR004
    value = draw()

``disable=all`` silences every rule for that line.  Suppressions are
deliberately line-scoped — there is no file- or block-level off switch,
so every exemption is visible next to the code it exempts.
"""

from __future__ import annotations

import io
import os
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.findings import Finding
from repro.lint.rules import PARSE_ERROR_CODE, RULES, FileContext

#: Directories never descended into.
PRUNE_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".benchmarks",
    ".hypothesis",
    "results",
    "build",
    "dist",
    ".eggs",
}

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next)=([A-Za-z0-9_,\s]+)"
)


def normalize_path(path: str) -> str:
    """Repo-relative posix form when possible, else posix as given."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive on windows
        relative = path
    if not relative.startswith(".."):
        path = relative
    return path.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield .py files under ``paths`` in a deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in PRUNE_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → set of suppressed codes (or {"all"})."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if not match:
                continue
            mode, raw = match.groups()
            codes = {
                code.strip().upper() if code.strip().lower() != "all"
                else "all"
                for code in raw.split(",")
                if code.strip()
            }
            line = token.start[0] + (1 if mode == "disable-next" else 0)
            suppressed.setdefault(line, set()).update(codes)
    except tokenize.TokenizeError:
        pass  # the parse-error finding covers unreadable files
    return suppressed


def _is_suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return "all" in codes or finding.code in codes


def _parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        code=PARSE_ERROR_CODE,
        rule="parse-error",
        severity="error",
        message=f"file does not parse: {exc.msg}",
    )


def _check_rules(
    ctx: FileContext,
    suppressions: Dict[int, Set[str]],
    codes: Optional[Iterable[str]],
) -> List[Finding]:
    wanted = set(codes) if codes is not None else None
    findings: List[Finding] = []
    for code in sorted(RULES):
        if wanted is not None and code not in wanted:
            continue
        rule = RULES[code]()
        if not rule.applies(ctx.path):
            continue
        for finding in rule.check(ctx):
            if not _is_suppressed(finding, suppressions):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    codes: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``codes`` restricts the run to a subset of rule codes (used by the
    fixture tests); default is every registered rule.
    """
    from repro.lint import astcache

    path = normalize_path(path)
    try:
        _, tree = astcache.parse_source(source)
    except SyntaxError as exc:
        return [_parse_error_finding(path, exc)]
    ctx = FileContext(path, source, tree)
    suppressions = collect_suppressions(source)
    return _check_rules(ctx, suppressions, codes)


def lint_file(
    path: str, codes: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one file through the content-hash AST cache.

    Within a process the file is parsed once per content digest, and
    the derived import tables / parent map / suppression table are
    shared with the deep pass (see :mod:`repro.lint.astcache`).
    """
    from repro.lint import astcache

    try:
        parsed = astcache.load(path)
    except SyntaxError as exc:
        return [_parse_error_finding(normalize_path(path), exc)]
    # Findings for the full rule set depend only on path + content, so
    # they ride in the cache entry; a restricted ``codes`` run (fixture
    # tests) recomputes.
    if codes is None:
        if parsed.findings is None:
            parsed.findings = tuple(
                _check_rules(parsed.ctx, parsed.suppressions, None)
            )
        return list(parsed.findings)
    return _check_rules(parsed.ctx, parsed.suppressions, codes)


def lint_paths(
    paths: Sequence[str], codes: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every python file under ``paths``; sorted findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, codes=codes))
    findings.sort(key=Finding.sort_key)
    return findings
