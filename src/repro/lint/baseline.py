"""Checked-in baseline: grandfather pre-existing findings, catch drift.

The baseline file (``lint-baseline.json`` at the repo root) lists
findings that existed when the linter was introduced.  CI fails on any
finding *not* in the baseline — new hazards never land — and also on
any baseline entry that no longer matches a real finding (stale
entries must be deleted as their code is fixed, so the baseline only
ever shrinks).

Entries match on ``(path, code, line)``.  A fixed line number is a
deliberate choice: unrelated edits that shift a grandfathered finding
force the author to look at it, which is how baselined debt gets paid
down.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} lint baseline "
            "(expected {'version': 1, 'findings': [...]})"
        )
    for entry in payload["findings"]:
        if not {"path", "code", "line"} <= set(entry):
            raise ValueError(
                f"{path}: baseline entry missing path/code/line: {entry}"
            )
    return payload


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Serialise current findings as a fresh baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "path": f.path,
                "code": f.code,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Any]
) -> Tuple[List[Finding], List[Dict[str, Any]]]:
    """Split findings into (new, stale-baseline-entries).

    A finding matched by a baseline entry is grandfathered (dropped
    from the returned list); a baseline entry matching no finding is
    stale and returned for the caller to fail on.
    """
    keys = {
        (entry["path"], entry["code"], entry["line"]): entry
        for entry in baseline["findings"]
    }
    matched = set()
    new: List[Finding] = []
    for finding in findings:
        key = (finding.path, finding.code, finding.line)
        if key in keys:
            matched.add(key)
        else:
            new.append(finding)
    stale = [
        entry for key, entry in sorted(keys.items()) if key not in matched
    ]
    return new, stale
