"""Checked-in baseline: grandfather pre-existing findings, catch drift.

The baseline file (``lint-baseline.json`` at the repo root) lists
findings that existed when the linter was introduced.  CI fails on any
finding *not* in the baseline — new hazards never land — and also on
any baseline entry that no longer matches a real finding (stale
entries must be deleted as their code is fixed, so the baseline only
ever shrinks).

Two sections share one file: ``findings`` grandfathers the line-local
pass (RPR0xx) and ``deep`` grandfathers the whole-program pass
(RPR1xx, only consulted under ``repro lint --deep``).  Both are empty
in this repo — the gate exists so they *stay* empty.

Entries match on ``(path, code, line)``.  A fixed line number is a
deliberate choice: unrelated edits that shift a grandfathered finding
force the author to look at it, which is how baselined debt gets paid
down.

``--write-baseline`` rewrites the file **in place**: the existing
file's top-level key order is preserved (so a rewrite of an unchanged
baseline is byte-identical and diffs clean), and the writer returns an
added/removed count per rule code so the CLI can print exactly how the
baseline moved.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Section name for the whole-program pass.
DEEP_SECTION = "deep"


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} lint baseline "
            "(expected {'version': 1, 'findings': [...]})"
        )
    if not isinstance(payload.get(DEEP_SECTION, []), list):
        raise ValueError(
            f"{path}: baseline {DEEP_SECTION!r} section must be a list"
        )
    for section in ("findings", DEEP_SECTION):
        for entry in payload.get(section, []):
            if not {"path", "code", "line"} <= set(entry):
                raise ValueError(
                    f"{path}: baseline entry missing path/code/line: {entry}"
                )
    return payload


def _entries(findings: Sequence[Finding]) -> List[Dict[str, Any]]:
    return [
        {
            "path": f.path,
            "code": f.code,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]


def _keys(entries: Sequence[Dict[str, Any]]) -> Dict[Tuple, Dict[str, Any]]:
    return {
        (entry["path"], entry["code"], entry["line"]): entry
        for entry in entries
    }


def baseline_diff(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, Dict[str, int]]:
    """Per-rule-code added/removed counts between two baseline payloads.

    Counts cover both sections (an entry moving between sections counts
    as removed+added, which cannot happen for real codes anyway: RPR0xx
    entries live in ``findings``, RPR1xx in ``deep``).
    """
    diff: Dict[str, Dict[str, int]] = {}

    def bump(code: str, kind: str) -> None:
        slot = diff.setdefault(code, {"added": 0, "removed": 0})
        slot[kind] += 1

    for section in ("findings", DEEP_SECTION):
        old_keys = _keys(old.get(section, []))
        new_keys = _keys(new.get(section, []))
        for key in new_keys:
            if key not in old_keys:
                bump(key[1], "added")
        for key in old_keys:
            if key not in new_keys:
                bump(key[1], "removed")
    return diff


def write_baseline(
    path: str,
    findings: Sequence[Finding],
    deep_findings: Optional[Sequence[Finding]] = None,
) -> Dict[str, Dict[str, int]]:
    """Serialise current findings as a fresh baseline; returns the diff.

    When ``path`` already holds a readable baseline its top-level key
    order is preserved and only the rewritten sections change — a
    no-op rewrite round-trips byte-identically.  ``deep_findings`` of
    ``None`` (a run without ``--deep``) leaves any existing ``deep``
    section untouched rather than emptying it.
    """
    try:
        old = load_baseline(path)
    except (OSError, ValueError, json.JSONDecodeError):
        old = {"version": BASELINE_VERSION, "findings": []}

    payload: Dict[str, Any] = {}
    for key in old:
        if key == "findings":
            payload[key] = _entries(findings)
        elif key == DEEP_SECTION:
            payload[key] = (
                _entries(deep_findings)
                if deep_findings is not None
                else old[key]
            )
        else:
            payload[key] = old[key]
    if "version" not in payload:
        payload["version"] = BASELINE_VERSION
    if "findings" not in payload:
        payload["findings"] = _entries(findings)
    if DEEP_SECTION not in payload and deep_findings is not None:
        payload[DEEP_SECTION] = _entries(deep_findings)

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return baseline_diff(old, payload)


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, Any],
    section: str = "findings",
) -> Tuple[List[Finding], List[Dict[str, Any]]]:
    """Split findings into (new, stale-baseline-entries) for a section.

    A finding matched by a baseline entry is grandfathered (dropped
    from the returned list); a baseline entry matching no finding is
    stale and returned for the caller to fail on.
    """
    keys = _keys(baseline.get(section, []))
    matched = set()
    new: List[Finding] = []
    for finding in findings:
        key = (finding.path, finding.code, finding.line)
        if key in keys:
            matched.add(key)
        else:
            new.append(finding)
    stale = [
        entry for key, entry in sorted(keys.items()) if key not in matched
    ]
    return new, stale
