"""The paper's consistency metric.

Section 2.1 defines, for a live key k, c(k,t) = Pr[P.val(k) = Q.val(k)];
the instantaneous system consistency c(t) is the average of c(k,t) over
the live data set L(t), and the average system consistency E[c(t)] is
the long-run time average of c(t).  Empirically (in a single simulation
run) c(k,t) is the 0/1 indicator that subscriber and publisher agree on
k, so c(t) is simply the matched fraction of L(t), and E[c(t)] is its
time integral divided by the horizon — exactly how the paper says the
metric "provides us with a method to empirically compute" it.

The paper's closed forms implicitly count instants with an empty live
set as zero consistency (the busy-probability factor rho in E[c]).  The
meter makes that convention explicit and configurable:

* ``empty_policy="zero"``  — empty system counts as c(t) = 0 (paper);
* ``empty_policy="one"``   — vacuously consistent;
* ``empty_policy="skip"``  — empty intervals excluded from the average.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.record import SoftStateTable

_POLICIES = ("zero", "one", "skip")


class ConsistencyMeter:
    """Time-weighted consistency between one publisher and subscribers.

    The meter samples c(t) lazily: call :meth:`observe` whenever system
    state may have changed (packet delivery, arrival, expiry).  Between
    observations c(t) is treated as constant, which is exact when every
    state change is followed by an observe() — the protocol simulators
    do exactly that.
    """

    def __init__(
        self,
        publisher: SoftStateTable,
        subscribers: Iterable[SoftStateTable],
        empty_policy: str = "zero",
        start_time: float = 0.0,
    ) -> None:
        if empty_policy not in _POLICIES:
            raise ValueError(
                f"empty_policy must be one of {_POLICIES}, got {empty_policy!r}"
            )
        self.publisher = publisher
        self.subscribers = list(subscribers)
        if not self.subscribers:
            raise ValueError("need at least one subscriber")
        self.empty_policy = empty_policy
        self._last_time = start_time
        self._last_value: Optional[float] = None  # None = live set empty
        self._weighted_sum = 0.0
        self._observed_duration = 0.0
        self._total_duration = 0.0
        self._series: List[Tuple[float, float]] = []
        self._record_series = False

    # -- sampling -----------------------------------------------------------
    def instantaneous(self, now: float) -> Optional[float]:
        """c(t) right now, or None if the live set is empty."""
        live = self.publisher.live_records(now)
        if not live:
            return None
        matched = 0
        total = 0
        for subscriber in self.subscribers:
            for record in live:
                total += 1
                mirror = subscriber.get(record.key)
                if (
                    mirror is not None
                    and mirror.is_subscriber_live(now)
                    and mirror.value == record.value
                ):
                    matched += 1
        return matched / total

    def observe(self, now: float) -> None:
        """Fold the interval since the last observation into the average."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        interval = now - self._last_time
        if interval > 0:
            self._accumulate(interval)
            self._total_duration += interval
            self._last_time = now
        self._last_value = self.instantaneous(now)
        if self._record_series:
            self._series.append(
                (now, self._effective_value(self._last_value))
            )

    def _accumulate(self, interval: float) -> None:
        value = self._last_value
        if value is None:
            if self.empty_policy == "skip":
                return
            value = 0.0 if self.empty_policy == "zero" else 1.0
        self._weighted_sum += value * interval
        self._observed_duration += interval

    def _effective_value(self, value: Optional[float]) -> float:
        if value is not None:
            return value
        if self.empty_policy == "one":
            return 1.0
        return 0.0

    # -- results --------------------------------------------------------------
    def average(self) -> float:
        """E[c(t)]: the time average of c(t) so far."""
        if self._observed_duration == 0:
            return 0.0
        return self._weighted_sum / self._observed_duration

    @property
    def duration(self) -> float:
        """Total time folded into the average (excludes skipped gaps)."""
        return self._observed_duration

    def enable_series(self) -> None:
        """Record a (time, c(t)) series at every observation (Figure 8)."""
        self._record_series = True

    @property
    def series(self) -> List[Tuple[float, float]]:
        return list(self._series)

    def running_average_series(self) -> List[Tuple[float, float]]:
        """(time, running E[c]) pairs — what Figure 8 actually plots."""
        result = []
        weighted = 0.0
        duration = 0.0
        for (t0, value), (t1, _) in zip(self._series, self._series[1:]):
            weighted += value * (t1 - t0)
            duration += t1 - t0
            if duration > 0:
                result.append((t1, weighted / duration))
        return result
