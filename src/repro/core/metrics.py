"""Receive latency, bandwidth accounting, and fault-recovery metrics.

The paper's second metric (Section 2.1) is the receive latency T_recv:
the time from the instant a new or updated {key, value} pair enters the
system until a receiver first holds it.  Its bandwidth discussion
(Figure 4 and Sections 4-6) distinguishes useful transmissions (a datum
the receiver did not have) from redundant retransmissions and from
feedback traffic; :class:`BandwidthLedger` keeps those books.

:class:`RecoveryTracker` quantifies the paper's *robustness* claim —
that soft-state sessions re-converge automatically after failures — by
annotating the consistency time series with fault windows and deriving,
per fault, the time to re-consistency, the stale-read exposure, and the
false-expiry count (the scalable-timers trade-off: receiver state aged
out while the sender was merely crashed, not dead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import runtime as _obs
from repro.obs.trace import WARNING as _WARNING


class LatencyRecorder:
    """Tracks per-(key, version) introduction and first-receipt times.

    Only successfully received items contribute to the mean — exactly
    the convention the paper uses ("the average T_recv is measured only
    over all successful transmissions").

    The exact per-item bookkeeping here stays authoritative; the
    recorder additionally publishes counters and a latency histogram
    into the ambient :class:`repro.obs.Registry`, labeled by session
    and protocol, so runs can be inspected without touching results.
    """

    def __init__(self, session: str = "", protocol: str = "") -> None:
        self._introduced: Dict[Tuple[Any, int], float] = {}
        self._latencies: List[float] = []
        #: Re-introductions of a still-pending (key, version) — see
        #: :meth:`introduced`.  The first timestamp stays authoritative.
        self.duplicate_introductions = 0
        self._labels = {"session": session, "protocol": protocol}
        self._trace = _obs.current_tracer()
        registry = _obs.registry()
        label_names = ("session", "protocol")
        self._m_introduced = registry.counter(
            "repro_latency_introduced_total",
            "Distinct (key, version) pairs entering the publisher table.",
            label_names,
        )
        self._m_received = registry.counter(
            "repro_latency_received_total",
            "First receipts of a tracked (key, version) at a subscriber.",
            label_names,
        )
        self._m_duplicates = registry.counter(
            "repro_duplicate_introduction_total",
            "introduced() calls for a (key, version) already pending.",
            label_names,
        )
        self._h_latency = registry.histogram(
            "repro_receive_latency_seconds",
            "Receive latency T_recv: introduction to first receipt.",
            label_names,
        )

    def introduced(self, key: Any, version: int, now: float) -> None:
        """A new value for (key, version) entered the publisher table.

        Re-introducing a pair that is still pending keeps the *first*
        timestamp (T_recv measures from when the datum first entered the
        system), but is surfaced as a warning trace event and a
        ``repro_duplicate_introduction_total`` increment rather than
        silently ignored — it usually means a versioning bug upstream.
        """
        first = self._introduced.get((key, version))
        if first is not None:
            self.duplicate_introductions += 1
            self._m_duplicates.inc(**self._labels)
            tr = self._trace
            if tr is not None and tr.warning:
                tr.emit(
                    _WARNING,
                    "duplicate_introduction",
                    now,
                    key=key,
                    version=version,
                    first_introduced=first,
                )
            return
        self._introduced[(key, version)] = now
        self._m_introduced.inc(**self._labels)

    def received(self, key: Any, version: int, now: float) -> Optional[float]:
        """First receipt at a subscriber; returns the latency if new."""
        start = self._introduced.pop((key, version), None)
        if start is None:
            return None  # duplicate receipt or never tracked
        latency = now - start
        self._latencies.append(latency)
        self._m_received.inc(**self._labels)
        self._h_latency.observe(latency, **self._labels)
        return latency

    def abandoned(self, key: Any, version: int) -> None:
        """The record died before any receipt: drop it from tracking."""
        self._introduced.pop((key, version), None)

    @property
    def count(self) -> int:
        return len(self._latencies)

    @property
    def pending(self) -> int:
        """Items introduced but never received (yet)."""
        return len(self._introduced)

    def mean(self) -> float:
        if not self._latencies:
            return math.nan
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, q: float) -> float:
        """Empirical percentile (q in [0, 100]) of receive latency."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._latencies:
            return math.nan
        ordered = sorted(self._latencies)
        position = (len(ordered) - 1) * q / 100.0
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def max(self) -> float:
        return max(self._latencies) if self._latencies else math.nan


class BandwidthLedger:
    """Bits sent, broken down by purpose.

    Categories:

    * ``new``       — first transmission of a (key, version);
    * ``redundant`` — retransmission of data the receiver already held
      (the Figure 4 waste);
    * ``repair``    — retransmission triggered by or needed for recovery
      (receiver did not hold the datum);
    * ``summary``   — SSTP namespace digest announcements;
    * ``feedback``  — NACKs and receiver reports.
    """

    CATEGORIES = ("new", "redundant", "repair", "summary", "feedback")

    def __init__(self, session: str = "", protocol: str = "") -> None:
        self._bits: Dict[str, float] = {c: 0.0 for c in self.CATEGORIES}
        self._packets: Dict[str, int] = {c: 0 for c in self.CATEGORIES}
        self._labels = {"session": session, "protocol": protocol}
        registry = _obs.registry()
        label_names = ("session", "protocol", "category")
        self._m_bits = registry.counter(
            "repro_bandwidth_bits_total",
            "Bits sent, by purpose (Figure 4 accounting).",
            label_names,
        )
        self._m_packets = registry.counter(
            "repro_bandwidth_packets_total",
            "Packets sent, by purpose.",
            label_names,
        )

    def add(self, category: str, bits: float, packets: int = 1) -> None:
        if category not in self._bits:
            raise ValueError(
                f"unknown category {category!r}; expected one of "
                f"{self.CATEGORIES}"
            )
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self._bits[category] += bits
        self._packets[category] += packets
        self._m_bits.inc(bits, category=category, **self._labels)
        self._m_packets.inc(packets, category=category, **self._labels)

    def bits(self, category: str) -> float:
        if category not in self._bits:
            raise ValueError(f"unknown category {category!r}")
        return self._bits[category]

    def packets(self, category: str) -> int:
        if category not in self._packets:
            raise ValueError(f"unknown category {category!r}")
        return self._packets[category]

    @property
    def total_bits(self) -> float:
        return sum(self._bits.values())

    @property
    def data_bits(self) -> float:
        """Forward-path bits (everything except feedback)."""
        return self.total_bits - self._bits["feedback"]

    def fraction(self, category: str) -> float:
        """Share of *data* bits in ``category`` (feedback measured vs total)."""
        base = self.total_bits if category == "feedback" else self.data_bits
        if base == 0:
            return 0.0
        return self.bits(category) / base

    def redundant_fraction(self) -> float:
        """The Figure 4 statistic: wasted share of the data bandwidth."""
        return self.fraction("redundant")

    def as_dict(self) -> Dict[str, float]:
        return dict(self._bits)


@dataclass
class FaultWindow:
    """One fault's active interval on the simulation clock."""

    label: str
    kind: str
    start: float
    end: float

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class FaultReport:
    """Recovery analysis for one fault window.

    ``baseline`` is the time-averaged consistency over the interval just
    before the fault; recovery means returning to within ``tolerance``
    of it (``recovered_at`` is the first post-heal sample at or above
    ``baseline * (1 - tolerance)``, and ``recovery_s`` counts from the
    moment the fault healed).  ``stale_read_s`` integrates (1 - c) from
    fault onset to recovery: the expected time a uniformly random read
    during the episode would have returned stale or missing data.
    """

    label: str
    kind: str
    start: float
    end: float
    baseline: float
    min_consistency: float
    recovered_at: float
    recovery_s: float
    stale_read_s: float
    false_expiries: int


class RecoveryTracker:
    """Fault windows, false-expiry events, and per-fault recovery stats.

    A session with a fault schedule owns one tracker: the injector
    registers a :class:`FaultWindow` per armed fault, the session feeds
    receiver-side expirations through :meth:`note_false_expiry`, and
    :meth:`analyze` turns the run's raw consistency series into one
    :class:`FaultReport` per window.
    """

    def __init__(
        self, tolerance: float = 0.05, baseline_window: float = 20.0
    ) -> None:
        if not 0.0 < tolerance < 1.0:
            raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
        if baseline_window <= 0:
            raise ValueError(
                f"baseline_window must be positive, got {baseline_window}"
            )
        self.tolerance = tolerance
        self.baseline_window = baseline_window
        self.windows: List[FaultWindow] = []
        self.false_expiry_events: List[Tuple[float, Any]] = []
        registry = _obs.registry()
        self._m_windows = registry.counter(
            "repro_fault_windows_total",
            "Fault windows registered on the recovery tracker.",
            ("kind",),
        )
        self._m_false_expiries = registry.counter(
            "repro_false_expiries_total",
            "Receiver expirations of data the publisher still held.",
        )

    # -- recording -----------------------------------------------------------
    def add_window(
        self, label: str, start: float, end: float, kind: str = "fault"
    ) -> FaultWindow:
        if end < start:
            raise ValueError(f"window ends ({end}) before it starts ({start})")
        window = FaultWindow(label=label, kind=kind, start=start, end=end)
        self.windows.append(window)
        self._m_windows.inc(kind=kind)
        return window

    def note_false_expiry(self, now: float, key: Any) -> None:
        """A receiver's copy aged out while the publisher still held it."""
        self.false_expiry_events.append((now, key))
        self._m_false_expiries.inc()

    @property
    def false_expiries(self) -> int:
        return len(self.false_expiry_events)

    def sender_down(self, now: float) -> bool:
        """Is any sender-crash window active at ``now``?"""
        return any(
            w.kind == "sender-crash" and w.covers(now) for w in self.windows
        )

    # -- analysis ------------------------------------------------------------
    def annotate(
        self, series: List[Tuple[float, float]]
    ) -> List[Tuple[float, float, str]]:
        """The consistency series with active-fault labels attached."""
        annotated = []
        for t, c in series:
            active = ",".join(w.label for w in self.windows if w.covers(t))
            annotated.append((t, c, active))
        return annotated

    def analyze(
        self, series: List[Tuple[float, float]]
    ) -> List[FaultReport]:
        """One :class:`FaultReport` per window, in registration order."""
        return [self._report(window, series) for window in self.windows]

    def _report(
        self, window: FaultWindow, series: List[Tuple[float, float]]
    ) -> FaultReport:
        baseline = _time_average(
            series, window.start - self.baseline_window, window.start
        )
        threshold = baseline * (1.0 - self.tolerance)
        recovered_at = math.nan
        if not math.isnan(threshold):
            for t, c in series:
                if t >= window.end and c >= threshold:
                    recovered_at = t
                    break
        last_t = series[-1][0] if series else window.end
        upper = recovered_at if not math.isnan(recovered_at) else last_t
        in_window = [c for t, c in series if window.start <= t <= upper]
        return FaultReport(
            label=window.label,
            kind=window.kind,
            start=window.start,
            end=window.end,
            baseline=baseline,
            min_consistency=min(in_window) if in_window else math.nan,
            recovered_at=recovered_at,
            recovery_s=(
                recovered_at - window.end
                if not math.isnan(recovered_at)
                else math.nan
            ),
            stale_read_s=_staleness_integral(series, window.start, upper),
            false_expiries=sum(
                1
                for t, _ in self.false_expiry_events
                if window.start <= t <= upper
            ),
        )


def _time_average(
    series: List[Tuple[float, float]], t0: float, t1: float
) -> float:
    """Piecewise-constant time average of a sampled series over [t0, t1]."""
    if t1 <= t0:
        return math.nan
    total = 0.0
    covered = 0.0
    for i, (t, c) in enumerate(series):
        t_next = series[i + 1][0] if i + 1 < len(series) else t1
        lo = max(t, t0)
        hi = min(t_next, t1)
        if hi > lo:
            total += c * (hi - lo)
            covered += hi - lo
    return total / covered if covered > 0 else math.nan


def _staleness_integral(
    series: List[Tuple[float, float]], t0: float, t1: float
) -> float:
    """Integral of (1 - c) over [t0, t1], piecewise constant."""
    if t1 <= t0:
        return 0.0
    total = 0.0
    for i, (t, c) in enumerate(series):
        t_next = series[i + 1][0] if i + 1 < len(series) else t1
        lo = max(t, t0)
        hi = min(t_next, t1)
        if hi > lo:
            total += (1.0 - c) * (hi - lo)
    return total
