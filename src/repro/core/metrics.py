"""Receive latency and bandwidth accounting.

The paper's second metric (Section 2.1) is the receive latency T_recv:
the time from the instant a new or updated {key, value} pair enters the
system until a receiver first holds it.  Its bandwidth discussion
(Figure 4 and Sections 4-6) distinguishes useful transmissions (a datum
the receiver did not have) from redundant retransmissions and from
feedback traffic; :class:`BandwidthLedger` keeps those books.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple


class LatencyRecorder:
    """Tracks per-(key, version) introduction and first-receipt times.

    Only successfully received items contribute to the mean — exactly
    the convention the paper uses ("the average T_recv is measured only
    over all successful transmissions").
    """

    def __init__(self) -> None:
        self._introduced: Dict[Tuple[Any, int], float] = {}
        self._latencies: List[float] = []

    def introduced(self, key: Any, version: int, now: float) -> None:
        """A new value for (key, version) entered the publisher table."""
        self._introduced.setdefault((key, version), now)

    def received(self, key: Any, version: int, now: float) -> Optional[float]:
        """First receipt at a subscriber; returns the latency if new."""
        start = self._introduced.pop((key, version), None)
        if start is None:
            return None  # duplicate receipt or never tracked
        latency = now - start
        self._latencies.append(latency)
        return latency

    def abandoned(self, key: Any, version: int) -> None:
        """The record died before any receipt: drop it from tracking."""
        self._introduced.pop((key, version), None)

    @property
    def count(self) -> int:
        return len(self._latencies)

    @property
    def pending(self) -> int:
        """Items introduced but never received (yet)."""
        return len(self._introduced)

    def mean(self) -> float:
        if not self._latencies:
            return math.nan
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, q: float) -> float:
        """Empirical percentile (q in [0, 100]) of receive latency."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._latencies:
            return math.nan
        ordered = sorted(self._latencies)
        position = (len(ordered) - 1) * q / 100.0
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def max(self) -> float:
        return max(self._latencies) if self._latencies else math.nan


class BandwidthLedger:
    """Bits sent, broken down by purpose.

    Categories:

    * ``new``       — first transmission of a (key, version);
    * ``redundant`` — retransmission of data the receiver already held
      (the Figure 4 waste);
    * ``repair``    — retransmission triggered by or needed for recovery
      (receiver did not hold the datum);
    * ``summary``   — SSTP namespace digest announcements;
    * ``feedback``  — NACKs and receiver reports.
    """

    CATEGORIES = ("new", "redundant", "repair", "summary", "feedback")

    def __init__(self) -> None:
        self._bits: Dict[str, float] = {c: 0.0 for c in self.CATEGORIES}
        self._packets: Dict[str, int] = {c: 0 for c in self.CATEGORIES}

    def add(self, category: str, bits: float, packets: int = 1) -> None:
        if category not in self._bits:
            raise ValueError(
                f"unknown category {category!r}; expected one of "
                f"{self.CATEGORIES}"
            )
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self._bits[category] += bits
        self._packets[category] += packets

    def bits(self, category: str) -> float:
        if category not in self._bits:
            raise ValueError(f"unknown category {category!r}")
        return self._bits[category]

    def packets(self, category: str) -> int:
        if category not in self._packets:
            raise ValueError(f"unknown category {category!r}")
        return self._packets[category]

    @property
    def total_bits(self) -> float:
        return sum(self._bits.values())

    @property
    def data_bits(self) -> float:
        """Forward-path bits (everything except feedback)."""
        return self.total_bits - self._bits["feedback"]

    def fraction(self, category: str) -> float:
        """Share of *data* bits in ``category`` (feedback measured vs total)."""
        base = self.total_bits if category == "feedback" else self.data_bits
        if base == 0:
            return 0.0
        return self.bits(category) / base

    def redundant_fraction(self) -> float:
        """The Figure 4 statistic: wasted share of the data bandwidth."""
        return self.fraction("redundant")

    def as_dict(self) -> Dict[str, float]:
        return dict(self._bits)
