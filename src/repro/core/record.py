"""The soft-state data model: an evolving table of {key, value} pairs.

Figure 1 of the paper: a publisher maintains a table of records and may
insert, update, or delete them at any time; each record has a bounded
lifetime after which it is eliminated.  Subscribers maintain a local
copy; each received announcement refreshes a per-record expiration
timer, and a record whose timer lapses is deleted (soft-state expiry).

:class:`SoftStateTable` serves both roles.  In publisher mode records
expire at ``created_at + lifetime``; in subscriber mode they expire at
``last_refreshed + hold_time``.  Expiry is lazy: callers advance the
table with :meth:`SoftStateTable.expire` (typically on every simulation
event), which fires the registered ``on_expire`` callbacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs import runtime as _obs
from repro.obs.trace import RECORD as _RECORD

@dataclass(slots=True)
class Record:
    """One {key, value} pair with lifetime/refresh bookkeeping.

    ``version`` increases on every update of the same key so receivers
    can distinguish stale announcements from fresh ones; value equality
    plus version equality defines per-key consistency.
    """

    key: Any
    value: Any
    version: int = 0
    created_at: float = 0.0
    lifetime: float = math.inf
    last_refreshed: float = 0.0
    hold_time: float = math.inf
    #: Number of times the publisher has announced this record.
    announcements: int = 0

    @property
    def publisher_expiry(self) -> float:
        """When the publisher stops announcing and drops the record."""
        return self.created_at + self.lifetime

    @property
    def subscriber_expiry(self) -> float:
        """When a subscriber's soft-state timer for this record lapses."""
        return self.last_refreshed + self.hold_time

    def is_publisher_live(self, now: float) -> bool:
        return now < self.publisher_expiry

    def is_subscriber_live(self, now: float) -> bool:
        return now < self.subscriber_expiry


ExpiryCallback = Callable[[Record, float], None]


class SoftStateTable:
    """A table of soft-state records with lazy timer-based expiry."""

    def __init__(self, role: str = "publisher") -> None:
        if role not in ("publisher", "subscriber"):
            raise ValueError(f"role must be publisher|subscriber, got {role!r}")
        self.role = role
        #: Per-cell label disambiguating this table's trace rows from
        #: other tables' in the same run (it never feeds simulation).
        self.trace_id = _obs.next_trace_label("t")
        self._records: Dict[Any, Record] = {}
        self._on_expire: List[ExpiryCallback] = []
        #: Ambient tracer, cached at construction (guarded attribute —
        #: hooks are no-ops unless tracing was installed via repro.obs).
        self._trace = _obs.current_tracer()
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.expirations = 0
        #: Lower bound on the earliest expiry among stored records.  While
        #: ``now`` is below it, :meth:`expire` is O(1).  Timer refreshes
        #: only push expiries later, so the bound stays conservative; any
        #: operation that can pull an expiry earlier must lower it (``put``
        #: does, and external shrinks go through :meth:`bound_expiry`).
        self._next_expiry = math.inf

    # -- mutation ------------------------------------------------------------
    def put(
        self,
        key: Any,
        value: Any,
        now: float,
        lifetime: float = math.inf,
        hold_time: float = math.inf,
        version: Optional[int] = None,
    ) -> Record:
        """Insert or update a record.

        A publisher bumps the version on update; a subscriber stores the
        announced version and refreshes its expiry timer.
        """
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime}")
        if hold_time <= 0:
            raise ValueError(f"hold_time must be positive, got {hold_time}")
        existing = self._records.get(key)
        if existing is None:
            record = Record(
                key=key,
                value=value,
                version=version if version is not None else 0,
                created_at=now,
                lifetime=lifetime,
                last_refreshed=now,
                hold_time=hold_time,
            )
            self._records[key] = record
            self.inserts += 1
            expiry = (
                now + lifetime if self.role == "publisher" else now + hold_time
            )
            if expiry < self._next_expiry:
                self._next_expiry = expiry
            tr = self._trace
            if tr is not None and tr.record:
                tr.emit(
                    _RECORD,
                    "record_inserted",
                    now,
                    key=key,
                    role=self.role,
                    version=record.version,
                    table=self.trace_id,
                )
            return record
        if version is None:
            existing.version += 1
        elif version < existing.version:
            # Stale announcement (reordered ADU): refresh the timer but
            # keep the newer value.
            existing.last_refreshed = now
            return existing
        else:
            existing.version = version
        existing.value = value
        existing.last_refreshed = now
        existing.hold_time = hold_time
        existing.lifetime = lifetime
        existing.created_at = (
            existing.created_at if self.role == "subscriber" else now
        )
        self.updates += 1
        expiry = (
            existing.created_at + lifetime
            if self.role == "publisher"
            else now + hold_time
        )
        if expiry < self._next_expiry:
            self._next_expiry = expiry
        tr = self._trace
        if tr is not None and tr.record:
            tr.emit(
                _RECORD,
                "record_updated",
                now,
                key=key,
                role=self.role,
                version=existing.version,
                table=self.trace_id,
            )
        return existing

    def refresh(self, key: Any, now: float) -> bool:
        """Reset a subscriber's expiry timer without changing the value."""
        record = self._records.get(key)
        if record is None:
            return False
        record.last_refreshed = now
        tr = self._trace
        if tr is not None and tr.record:
            tr.emit(
                _RECORD,
                "record_refreshed",
                now,
                key=key,
                role=self.role,
                table=self.trace_id,
            )
        return True

    def delete(self, key: Any) -> Optional[Record]:
        """Explicitly remove a record (publisher withdraw)."""
        record = self._records.pop(key, None)
        if record is not None:
            self.deletes += 1
            tr = self._trace
            if tr is not None and tr.record:
                # Deletion is initiated outside the table (no clock in
                # scope), so the record carries no timestamp.
                tr.emit(
                    _RECORD,
                    "record_deleted",
                    None,
                    key=key,
                    role=self.role,
                    table=self.trace_id,
                )
        return record

    def expire(self, now: float) -> List[Record]:
        """Drop every record whose timer has lapsed; fire callbacks.

        Fast path: while ``now`` is below the maintained next-expiry
        bound, nothing can have lapsed and the call is O(1).  Callers
        invoke this on nearly every simulation event, so skipping the
        full scan is the difference between O(events) and
        O(events x records) for a whole run.
        """
        if now < self._next_expiry:
            return []
        records = self._records
        publisher = self.role == "publisher"
        if publisher:
            expired = [
                record
                for record in records.values()
                if record.created_at + record.lifetime <= now
            ]
        else:
            expired = [
                record
                for record in records.values()
                if record.last_refreshed + record.hold_time <= now
            ]
        # Reset before callbacks run: a callback may put() an
        # earlier-expiring record, which lowers the bound itself.
        self._next_expiry = math.inf
        tr = self._trace
        trace_records = tr is not None and tr.record
        for record in expired:
            del records[record.key]
            self.expirations += 1
            if trace_records:
                # The timer deadline this expiry decision was based on;
                # a spec checker compares it against ``now`` and against
                # the refresh history to detect false expiries.
                deadline = (
                    record.created_at + record.lifetime
                    if publisher
                    else record.last_refreshed + record.hold_time
                )
                tr.emit(
                    _RECORD,
                    "record_expired",
                    now,
                    key=record.key,
                    role=self.role,
                    version=record.version,
                    table=self.trace_id,
                    deadline=deadline,
                )
            for callback in self._on_expire:
                callback(record, now)
        nxt = math.inf
        if publisher:
            for record in records.values():
                expiry = record.created_at + record.lifetime
                if expiry < nxt:
                    nxt = expiry
        else:
            for record in records.values():
                expiry = record.last_refreshed + record.hold_time
                if expiry < nxt:
                    nxt = expiry
        if nxt < self._next_expiry:
            self._next_expiry = nxt
        return expired

    def bound_expiry(self, expiry: float) -> None:
        """Tell the table a record's expiry may now be as early as ``expiry``.

        Required after shrinking a record's timer fields directly (rather
        than through :meth:`put`/:meth:`refresh`), so the lazy-expiry fast
        path stays conservative.
        """
        if expiry < self._next_expiry:
            self._next_expiry = expiry

    def on_expire(self, callback: ExpiryCallback) -> None:
        """Register ``callback(record, now)`` for timer expirations."""
        self._on_expire.append(callback)

    def clear(self) -> None:
        """Drop everything (e.g. a subscriber crash losing its state)."""
        self._records.clear()
        self._next_expiry = math.inf

    # -- queries ---------------------------------------------------------------
    def get(self, key: Any) -> Optional[Record]:
        return self._records.get(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(list(self._records.values()))

    def live_records(self, now: float) -> List[Record]:
        """The live data set L(t): records whose timers have not lapsed."""
        if self.role == "publisher":
            return [
                record
                for record in self._records.values()
                if now < record.created_at + record.lifetime
            ]
        return [
            record
            for record in self._records.values()
            if now < record.last_refreshed + record.hold_time
        ]

    def live_keys(self, now: float) -> List[Any]:
        return [record.key for record in self.live_records(now)]

    def _is_live(self, record: Record, now: float) -> bool:
        if self.role == "publisher":
            return record.is_publisher_live(now)
        return record.is_subscriber_live(now)
