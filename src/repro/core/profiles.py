"""Consistency profiles: measured consistency as a function of operating point.

Section 6.1: "SSTP uses measured packet loss rates ... and empirically
derived consistency profiles to carefully control bandwidth allocation"
and "an application can experience the maximum possible consistency ...
by scheduling its available session bandwidth based on consistency
profiles derived from our model".

A profile is a table of (loss_rate, knob) -> consistency (optionally
latency) points, where ``knob`` is whatever allocation fraction the
profile parameterizes (feedback share for Figure 9, hot share for
Figures 5/10).  Prediction between grid points uses bilinear
interpolation; :meth:`ConsistencyProfile.best_knob` returns the
allocation that maximizes predicted consistency at a measured loss
rate — the allocator's core lookup.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ProfilePoint:
    """One measured operating point."""

    loss_rate: float
    knob: float
    consistency: float
    latency: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if not 0.0 <= self.consistency <= 1.0 + 1e-9:
            raise ValueError(
                f"consistency must be in [0, 1], got {self.consistency}"
            )


class ConsistencyProfile:
    """An interpolated consistency surface over (loss rate, knob)."""

    def __init__(self, name: str, knob_name: str = "allocation") -> None:
        self.name = name
        self.knob_name = knob_name
        self._points: Dict[Tuple[float, float], ProfilePoint] = {}

    def add(self, point: ProfilePoint) -> None:
        """Add (or overwrite) a measured point."""
        self._points[(point.loss_rate, point.knob)] = point

    def add_many(self, points: Iterable[ProfilePoint]) -> None:
        for point in points:
            self.add(point)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def loss_rates(self) -> List[float]:
        return sorted({loss for loss, _ in self._points})

    def knobs(self, loss_rate: float) -> List[float]:
        return sorted(
            {knob for loss, knob in self._points if loss == loss_rate}
        )

    # -- prediction ----------------------------------------------------------
    def predict(self, loss_rate: float, knob: float) -> float:
        """Interpolated consistency at an arbitrary operating point."""
        if not self._points:
            raise ValueError(f"profile {self.name!r} is empty")
        lows = self.loss_rates
        lo, hi = _bracket(lows, loss_rate)
        value_lo = self._predict_at_loss(lo, knob)
        if lo == hi:
            return value_lo
        value_hi = self._predict_at_loss(hi, knob)
        weight = (loss_rate - lo) / (hi - lo)
        return value_lo * (1.0 - weight) + value_hi * weight

    def _predict_at_loss(self, loss_rate: float, knob: float) -> float:
        knobs = self.knobs(loss_rate)
        lo, hi = _bracket(knobs, knob)
        c_lo = self._points[(loss_rate, lo)].consistency
        if lo == hi:
            return c_lo
        c_hi = self._points[(loss_rate, hi)].consistency
        weight = (knob - lo) / (hi - lo)
        return c_lo * (1.0 - weight) + c_hi * weight

    def best_knob(self, loss_rate: float) -> Tuple[float, float]:
        """(knob, predicted consistency) maximizing consistency at this loss.

        Searches the union of measured knob values (the surface is
        piecewise linear in the knob, so the optimum lies on a grid
        point of the interpolant).
        """
        if not self._points:
            raise ValueError(f"profile {self.name!r} is empty")
        candidates = sorted({knob for _, knob in self._points})
        best = max(
            candidates, key=lambda knob: self.predict(loss_rate, knob)
        )
        return best, self.predict(loss_rate, best)

    def knob_for_target(
        self, loss_rate: float, target_consistency: float
    ) -> Optional[float]:
        """Smallest knob achieving the target, or None if unattainable."""
        candidates = sorted({knob for _, knob in self._points})
        for knob in candidates:
            if self.predict(loss_rate, knob) >= target_consistency:
                return knob
        return None

    def as_rows(self) -> List[Dict[str, float]]:
        """Flat rows for printing/serialisation."""
        return [
            {
                "loss_rate": point.loss_rate,
                self.knob_name: point.knob,
                "consistency": point.consistency,
            }
            for point in sorted(
                self._points.values(), key=lambda p: (p.loss_rate, p.knob)
            )
        ]


def _bracket(grid: List[float], value: float) -> Tuple[float, float]:
    """The two grid values surrounding ``value`` (clamped at the edges)."""
    if not grid:
        raise ValueError("empty grid")
    if value <= grid[0]:
        return grid[0], grid[0]
    if value >= grid[-1]:
        return grid[-1], grid[-1]
    index = bisect.bisect_left(grid, value)
    if grid[index] == value:
        return value, value
    return grid[index - 1], grid[index]


@dataclass(frozen=True)
class LatencyPoint:
    """One measured (loss rate, knob) -> receive-latency point."""

    loss_rate: float
    knob: float
    latency: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if self.latency < 0:
            raise ValueError(
                f"latency must be non-negative, got {self.latency}"
            )


class LatencyProfile:
    """An interpolated T_recv surface over (loss rate, knob).

    The paper's allocator derives "the share of bandwidth for the
    different transmission queues ... from the T_rec profile"
    (Section 6.1): unlike consistency, latency is *minimized*, and a
    delay requirement maps to the smallest knob meeting it.
    """

    def __init__(self, name: str, knob_name: str = "cold_share") -> None:
        self.name = name
        self.knob_name = knob_name
        self._points: Dict[Tuple[float, float], LatencyPoint] = {}

    def add(self, point: LatencyPoint) -> None:
        self._points[(point.loss_rate, point.knob)] = point

    def add_many(self, points: Iterable[LatencyPoint]) -> None:
        for point in points:
            self.add(point)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def loss_rates(self) -> List[float]:
        return sorted({loss for loss, _ in self._points})

    def knobs(self, loss_rate: float) -> List[float]:
        return sorted(
            {knob for loss, knob in self._points if loss == loss_rate}
        )

    def predict(self, loss_rate: float, knob: float) -> float:
        """Bilinearly interpolated latency at an operating point."""
        if not self._points:
            raise ValueError(f"latency profile {self.name!r} is empty")
        lo, hi = _bracket(self.loss_rates, loss_rate)
        value_lo = self._predict_at_loss(lo, knob)
        if lo == hi:
            return value_lo
        value_hi = self._predict_at_loss(hi, knob)
        weight = (loss_rate - lo) / (hi - lo)
        return value_lo * (1.0 - weight) + value_hi * weight

    def _predict_at_loss(self, loss_rate: float, knob: float) -> float:
        knobs = self.knobs(loss_rate)
        lo, hi = _bracket(knobs, knob)
        v_lo = self._points[(loss_rate, lo)].latency
        if lo == hi:
            return v_lo
        v_hi = self._points[(loss_rate, hi)].latency
        weight = (knob - lo) / (hi - lo)
        return v_lo * (1.0 - weight) + v_hi * weight

    def best_knob(self, loss_rate: float) -> Tuple[float, float]:
        """(knob, predicted latency) minimizing latency at this loss."""
        if not self._points:
            raise ValueError(f"latency profile {self.name!r} is empty")
        candidates = sorted({knob for _, knob in self._points})
        best = min(candidates, key=lambda k: self.predict(loss_rate, k))
        return best, self.predict(loss_rate, best)

    def knob_for_target(
        self, loss_rate: float, target_latency: float
    ) -> Optional[float]:
        """Smallest knob whose predicted latency meets the target."""
        candidates = sorted({knob for _, knob in self._points})
        for knob in candidates:
            if self.predict(loss_rate, knob) <= target_latency:
                return knob
        return None


def profile_to_json(profile) -> str:
    """Serialise a consistency or latency profile to a JSON string.

    The paper's allocator works from *stored* profiles ("using stored
    consistency profiles ... the bandwidth allocator outputs values");
    this pair of helpers lets deployments persist measured sweeps and
    reload them in later sessions.
    """
    import json

    if isinstance(profile, ConsistencyProfile):
        kind = "consistency"
        points = [
            {
                "loss_rate": point.loss_rate,
                "knob": point.knob,
                "value": point.consistency,
            }
            for point in profile._points.values()
        ]
    elif isinstance(profile, LatencyProfile):
        kind = "latency"
        points = [
            {
                "loss_rate": point.loss_rate,
                "knob": point.knob,
                "value": point.latency,
            }
            for point in profile._points.values()
        ]
    else:
        raise TypeError(f"cannot serialise {type(profile).__name__}")
    return json.dumps(
        {
            "kind": kind,
            "name": profile.name,
            "knob_name": profile.knob_name,
            "points": sorted(
                points, key=lambda p: (p["loss_rate"], p["knob"])
            ),
        },
        indent=2,
    )


def profile_from_json(text: str):
    """Reload a profile serialised by :func:`profile_to_json`."""
    import json

    data = json.loads(text)
    kind = data.get("kind")
    if kind == "consistency":
        profile = ConsistencyProfile(data["name"], data["knob_name"])
        for point in data["points"]:
            profile.add(
                ProfilePoint(
                    loss_rate=point["loss_rate"],
                    knob=point["knob"],
                    consistency=point["value"],
                )
            )
        return profile
    if kind == "latency":
        profile = LatencyProfile(data["name"], data["knob_name"])
        for point in data["points"]:
            profile.add(
                LatencyPoint(
                    loss_rate=point["loss_rate"],
                    knob=point["knob"],
                    latency=point["value"],
                )
            )
        return profile
    raise ValueError(f"unknown profile kind {kind!r}")
