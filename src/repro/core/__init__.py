"""Soft-state core: the paper's Section 2 data model and metrics.

* :mod:`repro.core.record` — the evolving table of {key, value} pairs
  kept by the publisher and mirrored (with expiry timers) by each
  subscriber;
* :mod:`repro.core.consistency` — the consistency metric c(k,t), the
  instantaneous system consistency c(t), and its time average E[c(t)];
* :mod:`repro.core.metrics` — receive latency T_recv and bandwidth
  accounting (useful vs redundant vs feedback bits);
* :mod:`repro.core.profiles` — empirical consistency profiles used by
  SSTP's profile-driven bandwidth allocator.
"""

from repro.core.record import Record, SoftStateTable
from repro.core.consistency import ConsistencyMeter
from repro.core.metrics import (
    BandwidthLedger,
    FaultReport,
    FaultWindow,
    LatencyRecorder,
    RecoveryTracker,
)
from repro.core.profiles import (
    ConsistencyProfile,
    LatencyPoint,
    LatencyProfile,
    ProfilePoint,
)

__all__ = [
    "BandwidthLedger",
    "ConsistencyMeter",
    "ConsistencyProfile",
    "FaultReport",
    "FaultWindow",
    "LatencyPoint",
    "LatencyProfile",
    "LatencyRecorder",
    "ProfilePoint",
    "Record",
    "RecoveryTracker",
    "SoftStateTable",
]
