"""The injector: arms a :class:`FaultSchedule` on a running session.

One injector per session run.  It spawns each fault's ``run`` generator
as a kernel process, hands faults deterministic RNG substreams derived
from the session's seed (so fault randomness never perturbs workload or
loss draws), and forwards fault windows to the session's
:class:`~repro.core.metrics.RecoveryTracker`.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.core.metrics import FaultWindow, RecoveryTracker
from repro.faults.schedule import Fault, FaultSchedule
from repro.obs.trace import FAULT as _FAULT


class FaultInjector:
    """Arms every fault in a schedule as its own simulation process."""

    def __init__(
        self,
        session,
        schedule: FaultSchedule,
        tracker: Optional[RecoveryTracker] = None,
    ) -> None:
        self.session = session
        self.env = session.env
        self.schedule = schedule
        self.tracker = tracker
        # A dedicated substream family: faults draw their randomness here,
        # so adding a fault never shifts the session's other streams.
        self.rng = session.rng.spawn("faults")
        self._counter = itertools.count()

    def stream(self, name: str) -> random.Random:
        """A named deterministic substream for a fault's own draws."""
        return self.rng[name]

    def next_rng(self) -> random.Random:
        """A fresh numbered substream (overlay loss chains, etc.)."""
        return self.rng[f"overlay-{next(self._counter)}"]

    def start(self, horizon: Optional[float] = None) -> None:
        """Spawn one kernel process per scheduled fault.

        When the caller knows the run horizon, faults scheduled at or
        beyond it are rejected up front (they would silently never
        trigger).
        """
        self.schedule.validate(horizon)
        tr = self.env._trace
        trace_faults = tr is not None and tr.fault
        for fault in self.schedule:
            if trace_faults:
                tr.emit(
                    _FAULT,
                    "fault_armed",
                    self.env.now,
                    fault=type(fault).__name__,
                    label=getattr(fault, "label", None),
                )
            self.env.process(self._arm(fault))

    def _arm(self, fault: Fault):
        yield from fault.run(self)

    def add_window(
        self, label: str, start: float, end: float, kind: str
    ) -> Optional[FaultWindow]:
        """Record a fault's active interval on the session's tracker."""
        tr = self.env._trace
        if tr is not None and tr.fault:
            tr.emit(
                _FAULT,
                "fault_window",
                self.env.now,
                label=label,
                start=start,
                end=end,
                kind=kind,
            )
        if self.tracker is None:
            return None
        return self.tracker.add_window(label, start, end, kind)
