"""Fault injection for soft-state sessions.

The paper's central systems claim is *robustness*: because soft state is
periodically announced and silently expires, a session recovers from
sender crashes, receiver churn, outages, and partitions without any
explicit repair machinery.  This package makes that claim testable.
Build a :class:`FaultSchedule`, pass it to any session's ``faults=``
parameter, and the run comes back with per-fault
:class:`~repro.core.metrics.FaultReport` recovery statistics::

    from repro.faults import FaultSchedule, SenderCrash
    from repro.protocols import TwoQueueSession

    schedule = FaultSchedule([SenderCrash(at=80.0, down_for=10.0)])
    session = TwoQueueSession(data_kbps=50.0, update_rate=2.0,
                              loss_rate=0.2, seed=1, faults=schedule)
    result = session.run(horizon=200.0)
    print(result.fault_reports[0].recovery_s)
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    Fault,
    FaultSchedule,
    LinkOutage,
    LossEpisode,
    Partition,
    ReceiverChurn,
    SenderCrash,
    sender_side,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "LinkOutage",
    "LossEpisode",
    "Partition",
    "ReceiverChurn",
    "SenderCrash",
    "sender_side",
]
