"""The fault vocabulary: scripted and stochastic failures on the DES clock.

The paper's robustness argument (Section 7) is that soft-state sessions
degrade gracefully and re-converge automatically after failures:
announcements simply resume, and stale state ages out.  This module
supplies the failures.  Each :class:`Fault` is armed as its own kernel
process by the :class:`~repro.faults.injector.FaultInjector`, sleeps on
the simulation clock until its trigger time, and then drives the session
through a small duck-typed hook surface (``fault_crash_sender``,
``fault_outage_begin``/``end``, ``fault_receiver_leave``/``rejoin``,
``fault_partition_begin``/``end``, ``fault_loss_overlay``/``restore``).
A session that lacks a hook rejects the fault with a clear error instead
of silently ignoring it.

Faults register :class:`~repro.core.metrics.FaultWindow` annotations on
the session's :class:`~repro.core.metrics.RecoveryTracker`, so every run
with a schedule yields per-fault recovery reports for free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Set

from repro.des import SimulationError
from repro.net import GilbertElliottLoss


def sender_side(groups: Sequence[Iterable[Any]]) -> Set[Any]:
    """The partition group the sender belongs to.

    A group containing the member id ``"sender"`` wins; otherwise the
    first group is taken to be the sender's side — everyone else is cut
    off from the data source until the partition heals.
    """
    materialized = [set(group) for group in groups]
    for group in materialized:
        if "sender" in group:
            return group
    return materialized[0] if materialized else set()


class Fault:
    """One failure scenario, armed as a kernel process on a session."""

    label: str = "fault"
    kind: str = "fault"
    #: Resource the fault exclusively holds while active, used for
    #: overlap validation: two faults in the same claim group with
    #: overlapping windows would clobber each other's save/restore
    #: tokens (e.g. a second outage capturing TotalLoss as the
    #: "original" loss model).  ``None`` means no exclusive claim.
    claim: Optional[str] = None

    def run(self, injector):
        """Generator body executed as a simulation process."""
        raise NotImplementedError

    def window(self) -> Optional[tuple]:
        """Deterministic ``(start, end)`` active interval, if known.

        Stochastic faults (churn) return None and are exempt from
        overlap validation; their hooks are idempotent per receiver.
        """
        return None

    def earliest_start(self) -> Optional[float]:
        """First simulation time at which this fault can trigger."""
        window = self.window()
        return window[0] if window is not None else None

    def __cache_key__(self):
        """Canonical parameter dict for content-addressed cache keys.

        Every constructor parameter must land in the key: two faults
        differing in any knob must never collide (a cache hit across
        different fault configs silently corrupts faulted results).
        """
        params = {"fault": type(self).__name__}
        for name, value in sorted(vars(self).items()):
            if name == "label":
                continue  # derived from the parameters
            if isinstance(value, (set, frozenset)):
                value = sorted(value)
            elif isinstance(value, list):
                value = [
                    sorted(item)
                    if isinstance(item, (set, frozenset))
                    else item
                    for item in value
                ]
            params[name] = value
        return params

    def _hook(self, session, name: str) -> Callable[..., Any]:
        hook = getattr(session, name, None)
        if hook is None:
            raise SimulationError(
                f"{type(session).__name__} does not support "
                f"{type(self).__name__}: it has no {name}() hook"
            )
        return hook

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label}>"


class SenderCrash(Fault):
    """The publisher's announcement engine dies at ``at`` for ``down_for``.

    The application keeps evolving its table (a store whose replication
    daemon crashed), but nothing is transmitted until the restart.  A
    warm restart (default) comes back with the table intact and rescans
    it into the transmission queues; ``cold=True`` loses the table —
    only data published after the restart exists.
    """

    kind = "sender-crash"
    claim = "sender"

    def __init__(self, at: float, down_for: float, cold: bool = False) -> None:
        if at < 0:
            raise ValueError(f"at must be non-negative, got {at}")
        if down_for <= 0:
            raise ValueError(f"down_for must be positive, got {down_for}")
        self.at = at
        self.down_for = down_for
        self.cold = cold
        self.label = f"{'cold-' if cold else ''}crash@{at:g}"

    def window(self):
        return (self.at, self.at + self.down_for)

    def run(self, injector):
        yield injector.env.timeout(self.at)
        crash = self._hook(injector.session, "fault_crash_sender")
        now = injector.env.now
        injector.add_window(self.label, now, now + self.down_for, self.kind)
        crash(self)


class LinkOutage(Fault):
    """Every channel of the session drops to 100% loss, then recovers.

    The original loss models are restored untouched when the outage
    ends, so the post-fault loss sequence continues exactly where it
    left off.
    """

    kind = "link-outage"
    claim = "link"

    def __init__(self, at: float, duration: float) -> None:
        if at < 0:
            raise ValueError(f"at must be non-negative, got {at}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.at = at
        self.duration = duration
        self.label = f"outage@{at:g}"

    def window(self):
        return (self.at, self.at + self.duration)

    def run(self, injector):
        yield injector.env.timeout(self.at)
        session = injector.session
        begin = self._hook(session, "fault_outage_begin")
        end = self._hook(session, "fault_outage_end")
        now = injector.env.now
        injector.add_window(self.label, now, now + self.duration, self.kind)
        token = begin()
        yield injector.env.timeout(self.duration)
        end(token)


class LossEpisode(Fault):
    """A temporary Gilbert-Elliott burst overlay on the data path.

    For ``duration`` seconds the data channels lose packets to *both*
    their configured model and a bursty episode chain (mean loss
    ``mean_loss``, mean burst length ``burst_length`` packets); when the
    episode ends the original models are restored exactly.
    """

    kind = "loss-episode"
    claim = "link"

    def __init__(
        self,
        at: float,
        duration: float,
        mean_loss: float = 0.5,
        burst_length: float = 5.0,
    ) -> None:
        if at < 0:
            raise ValueError(f"at must be non-negative, got {at}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.at = at
        self.duration = duration
        self.mean_loss = mean_loss
        self.burst_length = burst_length
        self.label = f"loss-episode@{at:g}"

    def window(self):
        return (self.at, self.at + self.duration)

    def run(self, injector):
        yield injector.env.timeout(self.at)
        session = injector.session
        overlay = self._hook(session, "fault_loss_overlay")
        restore = self._hook(session, "fault_loss_restore")
        now = injector.env.now
        injector.add_window(self.label, now, now + self.duration, self.kind)

        def make_model():
            # One chain per overlaid channel, each on its own substream.
            return GilbertElliottLoss.with_mean(
                self.mean_loss, self.burst_length, rng=injector.next_rng()
            )

        token = overlay(make_model)
        yield injector.env.timeout(self.duration)
        restore(token)


class ReceiverChurn(Fault):
    """Receivers leave and rejoin at exponential rate ``rate``.

    Each churn event picks a uniformly random currently-up receiver,
    takes it down for an exponential time with mean ``down_mean``, and
    rejoins it.  ``cold=True`` (the default) models a crash: the
    receiver's mirrored state is lost and must be relearned from the
    announcement stream — the late-joiner scenario the paper credits
    periodic retransmission with handling for free.
    """

    kind = "receiver-churn"

    def __init__(
        self,
        rate: float,
        down_mean: float = 5.0,
        cold: bool = True,
        start: float = 0.0,
        stop: Optional[float] = None,
        receivers: Optional[Sequence[Any]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if down_mean <= 0:
            raise ValueError(f"down_mean must be positive, got {down_mean}")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if stop is not None and stop <= start:
            raise ValueError(f"stop ({stop}) must exceed start ({start})")
        self.rate = rate
        self.down_mean = down_mean
        self.cold = cold
        self.start = start
        self.stop = stop
        self.receivers = list(receivers) if receivers is not None else None
        self.label = f"churn(rate={rate:g})"

    def earliest_start(self):
        return self.start

    def run(self, injector):
        env = injector.env
        session = injector.session
        leave = self._hook(session, "fault_receiver_leave")
        rejoin = self._hook(session, "fault_receiver_rejoin")
        ids = self._hook(session, "fault_receiver_ids")
        rng = injector.stream("churn")
        down: Set[Any] = set()
        if self.start > 0:
            yield env.timeout(self.start)
        while True:
            yield env.timeout(rng.expovariate(self.rate))
            now = env.now
            if self.stop is not None and now >= self.stop:
                return
            pool = self.receivers if self.receivers is not None else ids()
            candidates = [rid for rid in pool if rid not in down]
            if not candidates:
                continue
            receiver_id = rng.choice(candidates)
            down_for = rng.expovariate(1.0 / self.down_mean)
            injector.add_window(
                f"churn:{receiver_id}@{now:.1f}",
                now,
                now + down_for,
                self.kind,
            )
            down.add(receiver_id)
            leave(receiver_id, cold=self.cold)
            env.process(self._rejoin_later(env, receiver_id, down_for, rejoin, down))

    def _rejoin_later(self, env, receiver_id, down_for, rejoin, down):
        yield env.timeout(down_for)
        rejoin(receiver_id)
        down.discard(receiver_id)


class Partition(Fault):
    """Split the topology into ``groups`` at ``at``; heal at ``heal_at``.

    ``groups`` is an iterable of member-id groups; the group containing
    ``"sender"`` (else the first) keeps the data source, and members of
    every other group neither receive announcements nor reach the sender
    with feedback until the partition heals.  Partitioned receivers stay
    members — unlike churn they keep their state and simply age.
    """

    kind = "partition"
    claim = "link"

    def __init__(
        self, groups: Sequence[Iterable[Any]], at: float, heal_at: float
    ) -> None:
        if at < 0:
            raise ValueError(f"at must be non-negative, got {at}")
        if heal_at <= at:
            raise ValueError(f"heal_at ({heal_at}) must exceed at ({at})")
        self.groups: List[Set[Any]] = [set(group) for group in groups]
        if not self.groups:
            raise ValueError("need at least one partition group")
        self.at = at
        self.heal_at = heal_at
        self.label = f"partition@{at:g}"

    def window(self):
        return (self.at, self.heal_at)

    def run(self, injector):
        yield injector.env.timeout(self.at)
        session = injector.session
        begin = self._hook(session, "fault_partition_begin")
        end = self._hook(session, "fault_partition_end")
        injector.add_window(self.label, self.at, self.heal_at, self.kind)
        begin(self.groups)
        yield injector.env.timeout(self.heal_at - injector.env.now)
        end()


class FaultSchedule:
    """An ordered collection of faults to arm on one session.

    Sessions take a schedule via their ``faults=`` parameter::

        schedule = FaultSchedule([SenderCrash(at=80.0, down_for=10.0)])
        session = TwoQueueSession(data_kbps=50.0, update_rate=2.0,
                                  loss_rate=0.2, faults=schedule)
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._faults: List[Fault] = []
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultSchedule":
        if not isinstance(fault, Fault):
            raise TypeError(
                f"expected a Fault, got {type(fault).__name__}: {fault!r}"
            )
        if fault.claim is not None:
            window = fault.window()
            if window is not None:
                start, end = window
                for other in self._faults:
                    if other.claim != fault.claim:
                        continue
                    other_window = other.window()
                    if other_window is None:
                        continue
                    other_start, other_end = other_window
                    if start < other_end and other_start < end:
                        raise ValueError(
                            f"{fault.label} [{start:g}, {end:g}) overlaps "
                            f"{other.label} [{other_start:g}, {other_end:g}) "
                            f"on the same target ({fault.claim}): "
                            "overlapping faults would clobber each "
                            "other's save/restore state"
                        )
        self._faults.append(fault)
        return self

    def validate(self, horizon: Optional[float] = None) -> None:
        """Reject faults that can never trigger within ``horizon``.

        Overlap and parameter-sign errors are caught at construction
        time; the horizon is only known when the schedule is armed on a
        session run, so the injector calls this with it.
        """
        if horizon is None:
            return
        for fault in self._faults:
            start = fault.earliest_start()
            if start is not None and start >= horizon:
                raise ValueError(
                    f"{fault.label} starts at {start:g}, at or beyond "
                    f"the run horizon {horizon:g}; it would never "
                    "trigger"
                )

    def __iter__(self):
        return iter(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __cache_key__(self):
        """Canonical content for cache keys: every fault, every knob."""
        return {"faults": [fault.__cache_key__() for fault in self._faults]}

    def __repr__(self) -> str:
        inner = ", ".join(repr(fault) for fault in self._faults)
        return f"FaultSchedule([{inner}])"
