"""Classical M/M/1 queue formulas.

Used by the paper (Section 4) to explain the receive-latency curve of
Figure 6: with no cold retransmissions the system approximates a
single-server single-queue system with bandwidth ``mu = mu_data``, whose
average sojourn time is ``E[w] = 1 / (mu - lambda)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.memo import memoize


@dataclass(frozen=True)
class MM1Metrics:
    """Steady-state metrics of an M/M/1 queue."""

    arrival_rate: float
    service_rate: float
    utilization: float
    mean_number_in_system: float
    mean_number_in_queue: float
    mean_sojourn_time: float
    mean_waiting_time: float

    def prob_n(self, n: int) -> float:
        """P[N = n] = (1 - rho) rho^n."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return (1.0 - self.utilization) * self.utilization**n

    def prob_sojourn_exceeds(self, t: float) -> float:
        """P[W > t] for the exponential sojourn time of M/M/1."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        return math.exp(-(self.service_rate - self.arrival_rate) * t)


@memoize()
def mm1_metrics(arrival_rate: float, service_rate: float) -> MM1Metrics:
    """Solve an M/M/1 queue; raises for an unstable system (rho >= 1).

    Memoized per process (:mod:`repro.cache.memo`): grids re-solve the
    same operating point per cell, and the frozen result is shareable.
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise ValueError(
            f"unstable queue: rho = {rho:.4f} >= 1 "
            f"(lambda={arrival_rate}, mu={service_rate})"
        )
    mean_n = rho / (1.0 - rho)
    mean_nq = rho * rho / (1.0 - rho)
    mean_w = 1.0 / (service_rate - arrival_rate)
    mean_wq = rho / (service_rate - arrival_rate)
    return MM1Metrics(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        utilization=rho,
        mean_number_in_system=mean_n,
        mean_number_in_queue=mean_nq,
        mean_sojourn_time=mean_w,
        mean_waiting_time=mean_wq,
    )
