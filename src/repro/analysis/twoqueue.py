"""Approximate analysis of the two-queue (hot/cold) scheme.

The paper notes its two-level scheduling model "is not analytically
tractable using Jackson's theorem" and studies it by simulation
(Figures 5-6).  This module provides a *documented first-order
approximation* — useful for capacity planning and for sanity-checking
the simulator — validated against :class:`~repro.protocols.TwoQueueSession`
in the tests (agreement within ~0.1 in consistency over the stable
operating region).

Model and assumptions
---------------------
Arrivals Poisson(``lam``); exponential record lifetimes with mean ``L``;
data bandwidth ``mu`` split ``hot_share`` : 1-``hot_share``; loss
probability ``p`` per transmission; no feedback.

* Hot queue: approximately M/M/1 with arrival rate lam and service rate
  ``mu_hot``; first-transmission delay W_h = 1/(mu_hot - lam).
  Requires mu_hot > lam (the Figure 5/10 knee).
* Cold ring: all live records (Little: N = lam * L) cycle at ``mu_cold``,
  so consecutive retransmissions of one record are T_c = N/mu_cold
  apart.
* A record is inconsistent for a window D = W_h + K * T_c where
  K ~ Geometric(1-p) counts the lost transmissions before the first
  success.
* With an exponential lifetime T ~ Exp(1/L), the expected consistent
  fraction of a record's life given a deterministic window d is
  E[max(T-d, 0)] / E[T] = e^{-d/L}.  Averaging over K:

      c  ~=  (1-p) e^{-W_h/L} / (1 - p e^{-T_c/L})

Known biases: the hot-queue wait is correlated with load bursts, cold
ring membership varies, and work conservation lets cold borrow idle hot
slots — all second-order at moderate utilisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.memo import memoize


@dataclass(frozen=True)
class TwoQueueApproximation:
    """Closed-form estimates for the hot/cold scheme."""

    update_rate: float
    data_rate: float
    hot_share: float
    loss_rate: float
    lifetime_mean: float

    def __post_init__(self) -> None:
        if self.update_rate <= 0:
            raise ValueError(
                f"update_rate must be positive, got {self.update_rate}"
            )
        if self.data_rate <= 0:
            raise ValueError(
                f"data_rate must be positive, got {self.data_rate}"
            )
        if not 0.0 < self.hot_share < 1.0:
            raise ValueError(
                f"hot_share must be in (0, 1), got {self.hot_share}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.lifetime_mean <= 0:
            raise ValueError(
                f"lifetime_mean must be positive, got {self.lifetime_mean}"
            )

    @property
    def hot_rate(self) -> float:
        return self.hot_share * self.data_rate

    @property
    def cold_rate(self) -> float:
        return (1.0 - self.hot_share) * self.data_rate

    @property
    def is_stable(self) -> bool:
        """The Figure 5/10 operating condition: mu_hot > lam."""
        return self.hot_rate > self.update_rate

    @property
    def live_records(self) -> float:
        """Little's law: N = lam * L records alive on average."""
        return self.update_rate * self.lifetime_mean

    @property
    def hot_wait(self) -> float:
        """M/M/1 sojourn of the first (hot) transmission."""
        if not self.is_stable:
            return math.inf
        return 1.0 / (self.hot_rate - self.update_rate)

    @property
    def cold_cycle(self) -> float:
        """Time between successive cold retransmissions of one record."""
        if self.cold_rate <= 0:
            return math.inf
        return self.live_records / self.cold_rate

    @memoize()
    def consistency(self) -> float:
        """Approximate E[c(t)] (see module docstring for derivation).

        Memoized per process, keyed by the frozen parameter fields —
        instances with equal parameters share the solve.
        """
        if not self.is_stable:
            # Hot overload: new records queue indefinitely; only the
            # served fraction mu_hot/lam ever has a chance, and each
            # surviving record still pays the loss/cold machinery.
            served = self.hot_rate / self.update_rate
            return served * (1.0 - self.loss_rate) * 0.5
        p = self.loss_rate
        L = self.lifetime_mean
        first = math.exp(-self.hot_wait / L)
        if p == 0.0:
            return first
        cycle_factor = (
            math.exp(-self.cold_cycle / L)
            if self.cold_cycle != math.inf
            else 0.0
        )
        return (1.0 - p) * first / (1.0 - p * cycle_factor)

    @memoize()
    def receive_latency(self) -> float:
        """Approximate E[T_recv] over eventually-received records.

        Conditioning on receipt matters: a record that needs k cold
        retries must *survive* k cycles to be counted, so long windows
        are under-represented in the measured mean.  Weighting the
        geometric retry count by the survival probability e^{-kT_c/L}
        gives, with a = p e^{-T_c/L}:

            E[T_recv | received] = W_h + T_c a / (1 - a)
        """
        if not self.is_stable:
            return math.inf
        p = self.loss_rate
        if p == 0.0:
            return self.hot_wait
        if self.cold_cycle == math.inf:
            return self.hot_wait  # only never-lost records are received
        survival_ratio = p * math.exp(
            -self.cold_cycle / self.lifetime_mean
        )
        return self.hot_wait + self.cold_cycle * survival_ratio / (
            1.0 - survival_ratio
        )

    def optimal_hot_share(self, headroom: float = 1.15) -> float:
        """The allocator rule: just enough hot bandwidth for arrivals."""
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        share = headroom * self.update_rate / self.data_rate
        return min(max(share, 0.01), 0.99)
