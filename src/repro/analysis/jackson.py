"""Open multi-class Jackson queueing networks.

Implements the product-form network machinery the paper cites
(Baskett, Chandy, Muntz & Palacios, JACM 1975; the paper's reference
[5]).  Customers of several *classes* move among FIFO exponential-server
queues according to class-dependent routing probabilities; external
(Poisson) arrivals feed any (queue, class) pair.

The solver computes per-(queue, class) throughputs from the traffic
equations, checks stability, and exposes the product-form joint
distribution per queue:

    p(n_1..n_K) = (n!/(n_1!..n_K!)) * prod_k (lam_k/lam)^{n_k}
                  * (1-rho) rho^n

which is exactly the formula the paper applies to its single-queue
two-class (consistent/inconsistent) model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.cache.memo import memoize

Flow = Tuple[str, str]  # (queue name, class name)


@memoize()
def _traffic_throughputs(
    n: int, routing: bytes, external: bytes
) -> Tuple[float, ...]:
    """Memoized traffic-equation solve: (I - R^T) lambda = gamma.

    Keyed on the raw matrix bytes so structurally identical networks —
    rebuilt per grid cell by :class:`~repro.analysis.openloop.
    OpenLoopModel` — pay the ``np.linalg.solve`` once per process.  The
    returned tuple is immutable, satisfying the memoizer's contract.
    """
    lhs = np.eye(n) - np.frombuffer(routing, dtype=float).reshape(n, n).T
    throughputs = np.linalg.solve(lhs, np.frombuffer(external, dtype=float))
    return tuple(float(value) for value in throughputs)


@dataclass(frozen=True)
class QueueSpec:
    """A FIFO queue with exponential service at ``service_rate``."""

    name: str
    service_rate: float

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ValueError(
                f"service rate must be positive, got {self.service_rate}"
            )


class JacksonNetwork:
    """An open network of queues with class-dependent Markovian routing."""

    def __init__(
        self, queues: Sequence[QueueSpec], classes: Iterable[str]
    ) -> None:
        if not queues:
            raise ValueError("need at least one queue")
        self.queues = {q.name: q for q in queues}
        if len(self.queues) != len(queues):
            raise ValueError("queue names must be unique")
        self.classes = list(classes)
        if not self.classes:
            raise ValueError("need at least one class")
        if len(set(self.classes)) != len(self.classes):
            raise ValueError("class names must be unique")
        self._flows: list[Flow] = [
            (q.name, c) for q in queues for c in self.classes
        ]
        self._index = {flow: i for i, flow in enumerate(self._flows)}
        n = len(self._flows)
        self._routing = np.zeros((n, n))
        self._external = np.zeros(n)

    # -- model construction ---------------------------------------------------
    def add_arrival(self, queue: str, cls: str, rate: float) -> None:
        """Add an external Poisson arrival stream of ``cls`` at ``queue``."""
        if rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {rate}")
        self._external[self._flow_index(queue, cls)] += rate

    def set_routing(
        self,
        from_queue: str,
        from_cls: str,
        to_queue: str,
        to_cls: str,
        probability: float,
    ) -> None:
        """Route a departing (queue, class) customer onward.

        Any probability mass not assigned leaves the network.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        src = self._flow_index(from_queue, from_cls)
        dst = self._flow_index(to_queue, to_cls)
        self._routing[src, dst] = probability
        row_sum = self._routing[src].sum()
        if row_sum > 1.0 + 1e-12:
            raise ValueError(
                f"routing out of ({from_queue}, {from_cls}) sums to "
                f"{row_sum:.6f} > 1"
            )

    # -- solution ----------------------------------------------------------------
    def solve(self) -> "JacksonSolution":
        """Solve the traffic equations and build the product-form solution.

        lambda = gamma + R^T lambda  =>  (I - R^T) lambda = gamma.
        """
        n = len(self._flows)
        throughputs = _traffic_throughputs(
            n, self._routing.tobytes(), self._external.tobytes()
        )
        if any(value < -1e-9 for value in throughputs):
            raise ValueError("traffic equations produced a negative throughput")
        per_flow = {
            flow: max(throughputs[i], 0.0)
            for flow, i in self._index.items()
        }
        utilization = {}
        for name, queue in self.queues.items():
            total = sum(per_flow[(name, c)] for c in self.classes)
            utilization[name] = total / queue.service_rate
        return JacksonSolution(
            network=self, throughputs=per_flow, utilization=utilization
        )

    def _flow_index(self, queue: str, cls: str) -> int:
        if queue not in self.queues:
            raise ValueError(f"unknown queue {queue!r}")
        if cls not in self.classes:
            raise ValueError(f"unknown class {cls!r}")
        return self._index[(queue, cls)]


@dataclass
class JacksonSolution:
    """Solved traffic equations plus product-form distributions."""

    network: JacksonNetwork
    throughputs: Dict[Flow, float]
    utilization: Dict[str, float]

    def is_stable(self, queue: str | None = None) -> bool:
        """True if the given queue (or every queue) has rho < 1."""
        if queue is not None:
            return self.utilization[queue] < 1.0
        return all(rho < 1.0 for rho in self.utilization.values())

    def class_mix(self, queue: str) -> Dict[str, float]:
        """Fraction of ``queue``'s throughput contributed by each class."""
        total = sum(
            self.throughputs[(queue, c)] for c in self.network.classes
        )
        if total == 0:
            return {c: 0.0 for c in self.network.classes}
        return {
            c: self.throughputs[(queue, c)] / total
            for c in self.network.classes
        }

    def mean_number(self, queue: str, cls: str | None = None) -> float:
        """E[number in system] at ``queue`` (optionally of one class)."""
        rho = self.utilization[queue]
        if rho >= 1.0:
            return float("inf")
        total = rho / (1.0 - rho)
        if cls is None:
            return total
        return total * self.class_mix(queue)[cls]

    def joint_pmf(self, queue: str, counts: Dict[str, int]) -> float:
        """Product-form p(n_1, ..., n_K) for one queue.

        ``counts`` maps class name -> occupancy.  This is the displayed
        equation of Section 3:

            p(n_I, n_C) = ((n_I+n_C)! / (n_I! n_C!))
                          (lam_I/lam)^{n_I} (lam_C/lam)^{n_C}
                          (1 - rho) rho^{n_I+n_C}
        """
        rho = self.utilization[queue]
        if rho >= 1.0:
            raise ValueError(f"queue {queue!r} is unstable (rho={rho:.4f})")
        missing = set(counts) - set(self.network.classes)
        if missing:
            raise ValueError(f"unknown classes {sorted(missing)}")
        mix = self.class_mix(queue)
        n_total = sum(counts.values())
        if any(v < 0 for v in counts.values()):
            raise ValueError("occupancies must be non-negative")
        coefficient = math.factorial(n_total)
        probability = (1.0 - rho) * rho**n_total
        for cls in self.network.classes:
            n_cls = counts.get(cls, 0)
            coefficient //= math.factorial(n_cls)
            probability *= mix[cls] ** n_cls
        return coefficient * probability

    def marginal_pmf(self, queue: str, n: int) -> float:
        """P[N = n] at ``queue``: geometric (1-rho) rho^n."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rho = self.utilization[queue]
        if rho >= 1.0:
            raise ValueError(f"queue {queue!r} is unstable (rho={rho:.4f})")
        return (1.0 - rho) * rho**n
