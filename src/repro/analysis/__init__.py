"""Queueing-theoretic analysis of soft-state protocols.

Implements the analytic machinery of Section 3 of the paper:

* :mod:`repro.analysis.mm1` — classical M/M/1 formulas (used for the
  receive-latency argument around Figure 6);
* :mod:`repro.analysis.jackson` — open multi-class Jackson networks with
  product-form solutions (Baskett/Chandy/Muntz/Palacios), of which the
  paper's single-queue two-class model is a special case;
* :mod:`repro.analysis.openloop` — the paper's closed forms for the
  open-loop announce/listen protocol: per-class throughputs, utilisation,
  the Table 1 transition matrix, expected consistency E[c(t)]
  (Figure 3), and the redundant-bandwidth fraction (Figure 4).
"""

from repro.analysis.mm1 import MM1Metrics, mm1_metrics
from repro.analysis.jackson import JacksonNetwork, QueueSpec
from repro.analysis.twoqueue import TwoQueueApproximation
from repro.analysis.openloop import (
    OpenLoopModel,
    OpenLoopSolution,
    expected_consistency,
    redundant_bandwidth_fraction,
    transition_matrix,
)

__all__ = [
    "JacksonNetwork",
    "MM1Metrics",
    "OpenLoopModel",
    "OpenLoopSolution",
    "QueueSpec",
    "TwoQueueApproximation",
    "expected_consistency",
    "mm1_metrics",
    "redundant_bandwidth_fraction",
    "transition_matrix",
]
