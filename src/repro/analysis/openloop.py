"""Closed-form analysis of the open-loop announce/listen protocol.

This is Section 3 of the paper.  Records arrive at rate ``lam`` into a
single FIFO server of rate ``mu`` (the session bandwidth).  Each service
transmits the head record over a channel with per-transmission loss
probability ``p_loss``; after service the record exits (dies) with
probability ``p_death``, otherwise it re-enters the queue in the
"inconsistent" class (if the transmission was lost and it had never been
received) or in the "consistent" class.

Flow balance (the paper's traffic equations) gives

    lam_I = lam / (1 - p_loss (1 - p_death))
    lam_C = (1 - p_loss)(1 - p_death) lam
            / (p_death (1 - p_loss (1 - p_death)))
    lam_total = lam / p_death,     rho = lam / (p_death mu)

and the average system consistency

    E[c(t)] = (1 - p_loss)(1 - p_death) / (1 - p_loss (1 - p_death))
              * lam / (p_death mu)
            = q * rho,   q = lam_C / lam_total.

For rho >= 1 the queue is overloaded; following the paper's Figure 3
(which plots the formula across death rates that imply rho > 1 at its
operating point) we extend the curve continuously as
E[c] = q * min(rho, 1) and mark the solution unstable.  Note this
extension is an *optimistic bound*: a truly overloaded queue accumulates
never-served inconsistent arrivals, so its long-run consistency decays
below q (the queue-model simulation demonstrates this; see
``tests/protocols/test_queue_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.jackson import JacksonNetwork, JacksonSolution, QueueSpec
from repro.cache.memo import memoize

#: Class labels used throughout (paper's "inconsistent"/"consistent").
INCONSISTENT = "inconsistent"
CONSISTENT = "consistent"


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def transition_matrix(p_loss: float, p_death: float) -> Dict[str, Dict[str, float]]:
    """Table 1 of the paper: state-change probabilities at service end.

    Rows are the entering class, columns the outcome
    (``inconsistent``, ``consistent``, ``exit``).
    """
    _validate_probability("p_loss", p_loss)
    _validate_probability("p_death", p_death)
    return {
        INCONSISTENT: {
            INCONSISTENT: p_loss * (1.0 - p_death),
            CONSISTENT: (1.0 - p_loss) * (1.0 - p_death),
            "exit": p_death,
        },
        CONSISTENT: {
            INCONSISTENT: 0.0,
            CONSISTENT: 1.0 - p_death,
            "exit": p_death,
        },
    }


@memoize()
def consistent_fraction(p_loss: float, p_death: float) -> float:
    """q = lam_C / lam_total, the served traffic that is already consistent.

    This equals the redundant-bandwidth fraction of Figure 4.
    Memoized per process: every Figure 3/4 curve re-evaluates the same
    ``(p_loss, p_death)`` points.
    """
    _validate_probability("p_loss", p_loss)
    _validate_probability("p_death", p_death)
    if p_death == 0.0:
        # Records never die: in steady state every service is eventually
        # redundant (the system is not positive recurrent; take the limit).
        return 1.0 - p_loss if p_loss == 1.0 else 1.0
    return (
        (1.0 - p_loss)
        * (1.0 - p_death)
        / (1.0 - p_loss * (1.0 - p_death))
    )


def redundant_bandwidth_fraction(p_loss: float, p_death: float) -> float:
    """Figure 4: fraction of bandwidth spent retransmitting consistent data."""
    return consistent_fraction(p_loss, p_death)


@memoize()
def expected_consistency(
    p_loss: float, p_death: float, update_rate: float, channel_rate: float
) -> float:
    """Figure 3: E[c(t)] = q * min(rho, 1).

    ``update_rate`` (lam) and ``channel_rate`` (mu) may be in any common
    unit (kbps, packets/s) since only their ratio matters.
    """
    if update_rate < 0:
        raise ValueError(f"update_rate must be non-negative, got {update_rate}")
    if channel_rate <= 0:
        raise ValueError(f"channel_rate must be positive, got {channel_rate}")
    if p_death == 0.0:
        # With no deaths every record is eventually received: fully
        # consistent in the long run (and the queue is overloaded).
        return 1.0 if p_loss < 1.0 else 0.0
    _validate_probability("p_loss", p_loss)
    _validate_probability("p_death", p_death)
    rho = update_rate / (p_death * channel_rate)
    return consistent_fraction(p_loss, p_death) * min(rho, 1.0)


@memoize()
def eventual_receipt_probability(p_loss: float, p_death: float) -> float:
    """P[a record is received at least once before it dies].

    Per attempt the record is received w.p. (1-p_loss); a lost attempt
    is followed by death w.p. p_death.  Summing the geometric series:
    (1-p_loss) / (1 - p_loss (1 - p_death)).
    """
    _validate_probability("p_loss", p_loss)
    _validate_probability("p_death", p_death)
    if p_loss == 1.0:
        return 0.0
    return (1.0 - p_loss) / (1.0 - p_loss * (1.0 - p_death))


@dataclass(frozen=True)
class OpenLoopSolution:
    """All Section 3 quantities for one parameter point."""

    update_rate: float
    channel_rate: float
    p_loss: float
    p_death: float
    lambda_inconsistent: float
    lambda_consistent: float
    lambda_total: float
    utilization: float
    stable: bool
    expected_consistency: float
    redundant_fraction: float
    receipt_probability: float
    mean_receive_latency: float

    def as_row(self) -> Dict[str, float]:
        """Flat dict view (experiment harness table rows)."""
        return {
            "p_loss": self.p_loss,
            "p_death": self.p_death,
            "rho": self.utilization,
            "consistency": self.expected_consistency,
            "redundant_fraction": self.redundant_fraction,
            "receive_latency": self.mean_receive_latency,
        }


class OpenLoopModel:
    """The paper's single-queue, two-class model of announce/listen."""

    def __init__(
        self,
        update_rate: float,
        channel_rate: float,
        p_loss: float,
        p_death: float,
    ) -> None:
        if update_rate < 0:
            raise ValueError(
                f"update_rate must be non-negative, got {update_rate}"
            )
        if channel_rate <= 0:
            raise ValueError(
                f"channel_rate must be positive, got {channel_rate}"
            )
        _validate_probability("p_loss", p_loss)
        _validate_probability("p_death", p_death)
        if p_death == 0.0:
            raise ValueError(
                "p_death must be positive (records must eventually die "
                "for the model to have a steady state)"
            )
        self.update_rate = update_rate
        self.channel_rate = channel_rate
        self.p_loss = p_loss
        self.p_death = p_death

    def to_jackson(self) -> JacksonNetwork:
        """Express the model as a one-queue, two-class Jackson network.

        Routing comes straight from Table 1: this is the cross-check
        between the closed forms and the generic solver.
        """
        network = JacksonNetwork(
            [QueueSpec("channel", self.channel_rate)],
            [INCONSISTENT, CONSISTENT],
        )
        network.add_arrival("channel", INCONSISTENT, self.update_rate)
        table = transition_matrix(self.p_loss, self.p_death)
        for src in (INCONSISTENT, CONSISTENT):
            for dst in (INCONSISTENT, CONSISTENT):
                probability = table[src][dst]
                if probability > 0:
                    network.set_routing(
                        "channel", src, "channel", dst, probability
                    )
        return network

    def solve(self) -> OpenLoopSolution:
        """Evaluate every closed form at this parameter point.

        Memoized across instances (the solution is frozen): grid code
        that builds a fresh model per cell still solves each distinct
        parameter point once per process.
        """
        return _solve_point(
            self.update_rate, self.channel_rate, self.p_loss, self.p_death
        )

    def _solve_uncached(self) -> OpenLoopSolution:
        denom = 1.0 - self.p_loss * (1.0 - self.p_death)
        lambda_i = self.update_rate / denom
        lambda_c = (
            (1.0 - self.p_loss)
            * (1.0 - self.p_death)
            * self.update_rate
            / (self.p_death * denom)
        )
        lambda_total = self.update_rate / self.p_death
        rho = lambda_total / self.channel_rate
        return OpenLoopSolution(
            update_rate=self.update_rate,
            channel_rate=self.channel_rate,
            p_loss=self.p_loss,
            p_death=self.p_death,
            lambda_inconsistent=lambda_i,
            lambda_consistent=lambda_c,
            lambda_total=lambda_total,
            utilization=rho,
            stable=rho < 1.0,
            expected_consistency=expected_consistency(
                self.p_loss,
                self.p_death,
                self.update_rate,
                self.channel_rate,
            ),
            redundant_fraction=redundant_bandwidth_fraction(
                self.p_loss, self.p_death
            ),
            receipt_probability=eventual_receipt_probability(
                self.p_loss, self.p_death
            ),
            mean_receive_latency=self.mean_receive_latency(),
        )

    def solve_jackson(self) -> JacksonSolution:
        """Solve the equivalent Jackson network with the generic solver."""
        return self.to_jackson().solve()

    def mean_receive_latency(self) -> float:
        """Approximate E[T_recv]: latency to first successful receipt.

        Conditioned on eventual receipt, the number of service attempts
        is geometric with ratio p_loss (1 - p_death), so the expected
        attempt count is 1 / (1 - p_loss (1 - p_death)); each attempt
        costs one M/M/1 sojourn 1 / (mu - lam_total).  Infinite for an
        unstable queue.  (An approximation: attempts of one record are
        not independent sojourns, but it matches simulation well at
        moderate load — see tests.)
        """
        lambda_total = self.update_rate / self.p_death
        if lambda_total >= self.channel_rate:
            return float("inf")
        attempts = 1.0 / (1.0 - self.p_loss * (1.0 - self.p_death))
        sojourn = 1.0 / (self.channel_rate - lambda_total)
        return attempts * sojourn


@memoize()
def _solve_point(
    update_rate: float, channel_rate: float, p_loss: float, p_death: float
) -> OpenLoopSolution:
    """Per-process solve table keyed by the four model parameters."""
    return OpenLoopModel(
        update_rate=update_rate,
        channel_rate=channel_rate,
        p_loss=p_loss,
        p_death=p_death,
    )._solve_uncached()
