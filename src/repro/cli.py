"""Command-line interface: ``python -m repro``.

Subcommands:

* ``analyze``    — evaluate the Section 3 closed forms at a parameter
  point (consistency, waste, latency, stability);
* ``simulate``   — run one protocol session (open-loop | two-queue |
  feedback | arq | multicast | sstp) and print its metrics;
* ``experiment`` — alias for ``python -m repro.experiments``;
* ``run-all``    — every experiment in one go; with ``--cache``,
  incrementally (unchanged cells come from the result store);
* ``cache``      — inspect or maintain the content-addressed result
  store (``stats`` | ``clear`` | ``gc``; see docs/CACHE.md);
* ``trace``      — run one experiment with structured tracing enabled
  and stream the events to ``results/<id>/trace.jsonl``;
* ``stats``      — run one experiment and print its merged metric
  registry plus run telemetry;
* ``spans``      — fold a recorded trace into causal lifecycle spans
  (record / packet / repair provenance; see docs/SPANS.md);
* ``report``     — cross-run regression report over
  ``results/*/telemetry.json`` and the ``BENCH_*.json`` history;
* ``check``      — replay a JSONL trace (or trace an experiment first)
  through the invariant library and print the verdict
  (see docs/SPEC.md);
* ``chaos``      — property-test the invariants under seeded random
  fault schedules (see docs/SPEC.md);
* ``lint``       — static determinism & simulation-safety analysis
  (see docs/LINT.md).

Examples::

    python -m repro analyze --p-loss 0.1 --p-death 0.2 \
        --update-rate 20 --channel-rate 128
    python -m repro simulate feedback --loss 0.3 --data-kbps 40 \
        --feedback-kbps 5 --update-rate 15 --horizon 400
    python -m repro experiment figure8 --quick
    python -m repro run-all --quick --jobs 4 --cache
    python -m repro cache stats
    python -m repro trace figure3 --category packet
    python -m repro trace figure9 --format perfetto
    python -m repro stats figure8
    python -m repro spans figure9
    python -m repro report --threshold 5
    python -m repro check results/figure3/trace.jsonl
    python -m repro check --experiment figure3
    python -m repro chaos --runs 20 --seed 0 --jobs 4
    python -m repro lint src benchmarks examples --baseline lint-baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.analysis import OpenLoopModel
from repro.experiments.__main__ import main as experiments_main
from repro.obs import CATEGORIES, JsonlSink, Tracer, tracing
from repro.obs.telemetry import write_telemetry
from repro.protocols import (
    ArqSession,
    FeedbackSession,
    MulticastFeedbackSession,
    OpenLoopSession,
    TwoQueueSession,
)
from repro.sstp import ReliabilityLevel, SstpSession


def _analyze(args: argparse.Namespace) -> int:
    solution = OpenLoopModel(
        update_rate=args.update_rate,
        channel_rate=args.channel_rate,
        p_loss=args.p_loss,
        p_death=args.p_death,
    ).solve()
    print(f"utilization rho      : {solution.utilization:.4f}"
          + ("" if solution.stable else "  (UNSTABLE)"))
    print(f"expected consistency : {solution.expected_consistency:.4f}")
    print(f"redundant bandwidth  : {solution.redundant_fraction:.2%}")
    print(f"receipt probability  : {solution.receipt_probability:.4f}")
    latency = solution.mean_receive_latency
    if latency == float("inf"):
        print("mean receive latency : inf (overloaded)")
    else:
        print(f"mean receive latency : {latency:.4f} s")
    return 0


def _simulate(args: argparse.Namespace) -> int:
    common = dict(
        loss_rate=args.loss,
        update_rate=args.update_rate,
        lifetime_mean=args.lifetime,
        seed=args.seed,
    )
    if args.protocol == "open-loop":
        session = OpenLoopSession(data_kbps=args.data_kbps, **common)
    elif args.protocol == "two-queue":
        session = TwoQueueSession(
            hot_share=args.hot_share, data_kbps=args.data_kbps, **common
        )
    elif args.protocol == "feedback":
        session = FeedbackSession(
            hot_share=args.hot_share,
            data_kbps=args.data_kbps,
            feedback_kbps=args.feedback_kbps,
            **common,
        )
    elif args.protocol == "arq":
        session = ArqSession(
            data_kbps=args.data_kbps,
            ack_kbps=max(args.feedback_kbps, 1.0),
            **common,
        )
    elif args.protocol == "multicast":
        session = MulticastFeedbackSession(
            n_receivers=args.receivers,
            data_kbps=args.data_kbps,
            feedback_kbps=max(args.feedback_kbps, 0.5),
            hot_share=args.hot_share,
            **common,
        )
    elif args.protocol == "sstp":
        return _simulate_sstp(args)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.protocol)

    result = session.run(horizon=args.horizon, warmup=args.horizon / 5.0)
    print(f"protocol             : {args.protocol}")
    print(f"consistency          : {result.consistency:.4f}")
    print(f"mean receive latency : {result.mean_receive_latency:.4f} s")
    print(f"data packets         : {result.data_packets}")
    if hasattr(result, "redundant_fraction"):
        print(f"redundant bandwidth  : {result.redundant_fraction:.2%}")
    if getattr(result, "nacks_sent", 0):
        print(f"NACKs sent           : {result.nacks_sent}")
    if getattr(result, "nacks_suppressed", 0):
        print(f"NACKs suppressed     : {result.nacks_suppressed}")
    return 0


def _simulate_sstp(args: argparse.Namespace) -> int:
    import random

    session = SstpSession(
        total_kbps=args.data_kbps + args.feedback_kbps,
        n_receivers=args.receivers,
        loss_rate=args.loss,
        reliability=ReliabilityLevel.RELIABLE,
        seed=args.seed,
        adapt_interval=None,
    )
    rng = random.Random(args.seed)

    def publisher(env):
        index = 0
        # Scale kbps to packets/s: 1 packet = 1 kbit.
        while True:
            yield env.timeout(rng.expovariate(max(args.update_rate, 0.01)))
            session.publish(f"data/item{index}", index)
            index += 1

    session.env.process(publisher(session.env))
    result = session.run(horizon=args.horizon, warmup=args.horizon / 5.0)
    print("protocol             : sstp (reliable)")
    print(f"consistency          : {result.consistency:.4f}")
    print(f"mean receive latency : {result.mean_receive_latency:.4f} s")
    print(f"ADU / summary pkts   : {result.adu_packets} / {result.summary_packets}")
    print(f"repair requests      : {result.repair_requests}")
    return 0


def _cache(args: argparse.Namespace) -> int:
    from repro.cache import ResultCache

    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"store     : {stats.root}")
        print(f"entries   : {stats.entries}")
        print(f"size      : {stats.total_bytes / 1024.0:.1f} KiB")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
    elif args.action == "gc":
        removed = cache.gc(max_age_days=args.max_age_days)
        print(
            f"evicted {removed} entries not used for "
            f"{args.max_age_days:g} days from {cache.root}"
        )
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.action)
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.experiment not in EXPERIMENTS:
        # Checked before the sink opens, so a bad ID never leaves an
        # empty results/<ID>/trace.jsonl behind.
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"choose from {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 1
    out = args.out or os.path.join("results", args.experiment, "trace.jsonl")
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    tracer = Tracer(sink=JsonlSink(out), categories=args.category or None)
    try:
        # All categories share one JSONL sink, and forked workers would
        # interleave writes into it — trace runs are always sequential.
        with tracing(tracer):
            result = run_experiment(
                args.experiment,
                quick=not args.full,
                seed=args.seed,
                jobs=1,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        tracer.close()
    write_telemetry(
        os.path.join("results", args.experiment, "telemetry.json"),
        result.telemetry,
    )
    tallies: Dict[str, int] = {}
    shown = 0
    with open(out, encoding="utf-8") as handle:
        for line in handle:
            row = json.loads(line)
            tallies[row["cat"]] = tallies.get(row["cat"], 0) + 1
            if shown < args.limit:
                print(line.rstrip("\n"))
                shown += 1
    total = sum(tallies.values())
    if total > shown:
        print(f"... ({total - shown} more)")
    summary = "  ".join(f"{cat}={n}" for cat, n in sorted(tallies.items()))
    wanted = ",".join(args.category) if args.category else "all"
    print(f"{total} events ({wanted}) -> {out}")
    if summary:
        print(f"by category: {summary}")
    if args.format == "perfetto":
        from repro.obs.perfetto import report_to_trace_events
        from repro.obs.spans import build_from_file

        perfetto_out = os.path.splitext(out)[0] + ".perfetto.json"
        document = report_to_trace_events(build_from_file(out))
        with open(perfetto_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        print(
            f"{len(document['traceEvents'])} trace events -> {perfetto_out} "
            "(open in ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def _stats(args: argparse.Namespace) -> int:
    from repro.experiments.common import format_table
    from repro.experiments.registry import run_experiment

    try:
        result = run_experiment(
            args.experiment,
            quick=not args.full,
            seed=args.seed,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    payload = result.telemetry
    path = os.path.join("results", args.experiment, "telemetry.json")
    write_telemetry(path, payload)
    run = payload["run"]
    print(f"== {args.experiment}: run telemetry ==")
    print(
        f"   cells={run['cells']}  events={run['events']}  "
        f"events/s={run['events_per_sec']:.0f}  "
        f"wall={run['wall_s']:.2f}s  jobs={run['jobs']}"
    )
    rows = []
    for name, entry in payload["registry"].items():
        for series in entry["series"]:
            value = series["value"]
            row = {
                "instrument": name,
                "kind": entry["kind"],
                "labels": ",".join(series["labels"]) or "-",
            }
            if entry["kind"] == "histogram":
                row["value"] = value["count"]
                row["mean"] = (
                    value["sum"] / value["count"] if value["count"] else ""
                )
            else:
                row["value"] = value
                row["mean"] = ""
            rows.append(row)
    print(format_table(rows) if rows else "   (no metric series)")
    print(f"   telemetry -> {path}")
    return 0


def _spans(args: argparse.Namespace) -> int:
    from repro.obs.spans import build_from_file

    path = args.trace or os.path.join(
        "results", args.experiment, "trace.jsonl"
    )
    if not os.path.isfile(path) or os.path.getsize(path) == 0:
        # Missing or zero-byte (a run that died before its first
        # event): both mean there is nothing to fold yet.
        print(
            f"error: no trace for experiment {args.experiment!r}: "
            f"expected {path} "
            f"(run `python -m repro trace {args.experiment}` first)",
            file=sys.stderr,
        )
        return 1
    report = build_from_file(path)
    print(report.describe(limit=args.limit))
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=1)
            handle.write("\n")
        print(f"spans -> {args.json}")
    return 0 if report.reconciliation()["reconciled"] else 1


def _report(args: argparse.Namespace) -> int:
    from repro.obs.report import build_report, render_markdown, render_text

    report = build_report(
        results_dir=args.results_dir,
        bench_pattern=args.bench,
        history_path=args.history,
        threshold_pct=args.threshold,
    )
    rendered = (
        render_markdown(report)
        if args.format == "markdown"
        else render_text(report)
    )
    print(rendered)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"report -> {args.out}")
    if args.fail_on_regression and report["regressions"]:
        return 1
    return 0


def _check(args: argparse.Namespace) -> int:
    from repro.spec.checker import check_file

    path = args.trace
    if args.experiment:
        if path:
            print(
                "give either a trace path or --experiment, not both",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.registry import run_experiment

        path = os.path.join("results", args.experiment, "trace.jsonl")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tracer = Tracer(sink=JsonlSink(path))
        try:
            # One shared JSONL sink -> sequential, like `repro trace`.
            with tracing(tracer):
                run_experiment(
                    args.experiment,
                    quick=not args.full,
                    seed=args.seed,
                    jobs=1,
                )
        finally:
            tracer.close()
        print(f"traced {args.experiment} -> {path}")
    elif not path:
        print("give a trace path or --experiment ID", file=sys.stderr)
        return 2
    report = check_file(path)
    print(report.describe())
    return 0 if report.ok else 1


def _chaos(args: argparse.Namespace) -> int:
    from repro.spec import chaos as chaos_harness

    if not chaos_harness.HAVE_HYPOTHESIS:
        print(
            "the chaos harness needs the 'hypothesis' package, which is "
            "not importable in this environment",
            file=sys.stderr,
        )
        return 2
    report = chaos_harness.run_chaos(
        runs=args.runs,
        seed=args.seed,
        jobs=args.jobs,
        shrink=not args.no_shrink,
    )
    payload = json.dumps(report, sort_keys=True, indent=2)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"report -> {args.out}")
    print(payload)
    return 0 if report["failures"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Soft state-based communication (SIGCOMM '99), reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="evaluate the open-loop closed forms"
    )
    analyze.add_argument("--p-loss", type=float, required=True)
    analyze.add_argument("--p-death", type=float, required=True)
    analyze.add_argument("--update-rate", type=float, default=20.0)
    analyze.add_argument("--channel-rate", type=float, default=128.0)
    analyze.set_defaults(func=_analyze)

    simulate = sub.add_parser("simulate", help="run one protocol session")
    simulate.add_argument(
        "protocol",
        choices=[
            "open-loop",
            "two-queue",
            "feedback",
            "arq",
            "multicast",
            "sstp",
        ],
    )
    simulate.add_argument("--loss", type=float, default=0.1)
    simulate.add_argument("--data-kbps", type=float, default=45.0)
    simulate.add_argument("--feedback-kbps", type=float, default=5.0)
    simulate.add_argument("--hot-share", type=float, default=0.5)
    simulate.add_argument("--update-rate", type=float, default=15.0)
    simulate.add_argument("--lifetime", type=float, default=20.0)
    simulate.add_argument("--receivers", type=int, default=1)
    simulate.add_argument("--horizon", type=float, default=300.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_simulate)

    def _add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--quick", action="store_true")
        p.add_argument("--plot", action="store_true")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help=(
                "parallel worker processes per experiment "
                "(0 = one per CPU)"
            ),
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=None,
            help=(
                "serve unchanged cells from results/.cache "
                "(docs/CACHE.md); --no-cache bypasses reads and writes"
            ),
        )

    experiment = sub.add_parser(
        "experiment", help="reproduce paper tables/figures"
    )
    experiment.add_argument("experiments", nargs="*", metavar="ID")
    _add_run_options(experiment)
    experiment.set_defaults(func=None)

    run_all = sub.add_parser(
        "run-all",
        help="run every experiment (incremental with --cache)",
    )
    _add_run_options(run_all)
    run_all.set_defaults(func=None)

    cache = sub.add_parser(
        "cache",
        help="inspect/maintain the content-addressed result store",
    )
    cache.add_argument("action", choices=["stats", "clear", "gc"])
    cache.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="store root (default: REPRO_CACHE_DIR or results/.cache)",
    )
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=30.0,
        metavar="D",
        help="gc: evict entries not used for D days (default 30)",
    )
    cache.set_defaults(func=_cache)

    trace = sub.add_parser(
        "trace",
        help="run one experiment with structured tracing to a JSONL file",
    )
    trace.add_argument("experiment", metavar="ID")
    trace.add_argument(
        "--category",
        action="append",
        choices=list(CATEGORIES),
        help="enable only this category (repeatable; default: all)",
    )
    trace.add_argument(
        "--out", metavar="PATH", help="default results/<ID>/trace.jsonl"
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="print at most N events (default 20; the file gets all)",
    )
    trace.add_argument(
        "--full",
        action="store_true",
        help="full-scale sweeps (default: the --quick grid)",
    )
    trace.add_argument(
        "--format",
        choices=["jsonl", "perfetto"],
        default="jsonl",
        help=(
            "perfetto: also fold the trace into Chrome trace-event "
            "JSON (results/<ID>/trace.perfetto.json; docs/SPANS.md)"
        ),
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_trace)

    stats = sub.add_parser(
        "stats",
        help="run one experiment and print its metric registry + telemetry",
    )
    stats.add_argument("experiment", metavar="ID")
    stats.add_argument(
        "--full",
        action="store_true",
        help="full-scale sweeps (default: the --quick grid)",
    )
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (0 = one per CPU)",
    )
    stats.set_defaults(func=_stats)

    spans = sub.add_parser(
        "spans",
        help="fold a recorded trace into lifecycle spans (docs/SPANS.md)",
    )
    spans.add_argument("experiment", metavar="ID")
    spans.add_argument(
        "--trace",
        metavar="PATH",
        help="read this JSONL file (default results/<ID>/trace.jsonl)",
    )
    spans.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="show the N longest spans (default 10)",
    )
    spans.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full span list as JSON here",
    )
    spans.set_defaults(func=_spans)

    report = sub.add_parser(
        "report",
        help="cross-run regression report (telemetry + bench history)",
    )
    report.add_argument(
        "--results-dir",
        default="results",
        metavar="DIR",
        help="where results/<exp>/telemetry.json live (default results)",
    )
    report.add_argument(
        "--bench",
        default="BENCH_*.json",
        metavar="GLOB",
        help="benchmark files to include (default BENCH_*.json)",
    )
    report.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="snapshot history file (default <results-dir>/report_history.json)",
    )
    report.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="flag deltas beyond PCT%% as regressions (default 5)",
    )
    report.add_argument(
        "--format",
        choices=["text", "markdown"],
        default="text",
    )
    report.add_argument(
        "--out", metavar="PATH", help="also write the rendered report here"
    )
    report.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any metric regresses past the threshold",
    )
    report.set_defaults(func=_report)

    check = sub.add_parser(
        "check",
        help="replay a trace through the invariant library (docs/SPEC.md)",
    )
    check.add_argument(
        "trace",
        nargs="?",
        metavar="TRACE",
        help="a docs/trace.schema.json-conformant JSONL file",
    )
    check.add_argument(
        "--experiment",
        metavar="ID",
        help="trace this experiment first, then check the trace",
    )
    check.add_argument(
        "--full",
        action="store_true",
        help="with --experiment: full-scale sweeps (default: --quick)",
    )
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=_check)

    chaos = sub.add_parser(
        "chaos",
        help="property-test the invariants under random fault schedules",
    )
    chaos.add_argument(
        "--runs",
        type=int,
        default=20,
        metavar="N",
        help="number of generated fault scenarios (default 20)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (0 = one per CPU)",
    )
    chaos.add_argument(
        "--no-shrink",
        action="store_true",
        help="on failure, skip hypothesis shrinking of the schedule",
    )
    chaos.add_argument(
        "--out", metavar="PATH", help="also write the JSON report here"
    )
    chaos.set_defaults(func=_chaos)

    lint = sub.add_parser(
        "lint",
        help="static determinism & simulation-safety analysis",
    )
    from repro.lint import cli as lint_cli

    lint_cli.add_arguments(lint)
    lint.set_defaults(func=lint_cli.run)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("experiment", "run-all"):
        forwarded = (
            ["run-all"]
            if args.command == "run-all"
            else list(args.experiments)
        )
        if args.quick:
            forwarded.append("--quick")
        if args.plot:
            forwarded.append("--plot")
        forwarded.extend(["--seed", str(args.seed)])
        forwarded.extend(["--jobs", str(args.jobs)])
        if args.cache is not None:
            forwarded.append("--cache" if args.cache else "--no-cache")
        return experiments_main(forwarded)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
