"""Typed trace events: the checker's input vocabulary.

A trace reaches the checker in one of two shapes — JSONL rows written
by :class:`repro.obs.trace.JsonlSink` (``{"t", "cat", "ev", ...}``) or
in-memory :data:`repro.obs.trace.TraceRecord` tuples from a ring
buffer or live sink.  Both normalize to :class:`TraceEvent`: the
envelope triplet plus the flat field dict, tagged with the event's
position in the stream so violations can pinpoint the exact row.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Optional

__all__ = [
    "TraceEvent",
    "TruncatedTrace",
    "iter_jsonl_events",
    "iter_record_events",
]

_ENVELOPE = ("t", "cat", "ev")


@dataclass(slots=True)
class TraceEvent:
    """One trace row, positionally tagged."""

    index: int
    t: Optional[float]
    cat: str
    ev: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Back to the JSONL row shape (for reports)."""
        row: Dict[str, Any] = {"t": self.t, "cat": self.cat, "ev": self.ev}
        row.update(self.fields)
        return row


class TruncatedTrace(Exception):
    """A JSONL stream ended mid-row (e.g. a killed run).

    Raised only for a torn *final* line; malformed interior lines are a
    hard :class:`ValueError` — they mean the file is not a trace.
    """


def iter_jsonl_events(lines: Iterable[str]) -> Iterator[TraceEvent]:
    """Parse JSONL rows into :class:`TraceEvent`, tolerating a torn tail.

    ``lines`` is any iterable of text lines (an open file works).  A
    final line that does not parse raises :class:`TruncatedTrace` after
    every complete row has been yielded, so callers can treat a
    truncated-but-flushed trace from a crashed cell as checkable.
    """
    index = 0
    torn: Optional[int] = None
    for lineno, line in enumerate(lines, start=1):
        if torn is not None:
            raise ValueError(
                f"line {torn}: malformed JSONL row in trace "
                "(not merely truncated: complete rows follow it)"
            )
        stripped = line.strip()
        if not stripped:
            continue
        try:
            row = json.loads(stripped)
        except ValueError:
            torn = lineno
            continue
        if not isinstance(row, dict) or "cat" not in row or "ev" not in row:
            raise ValueError(
                f"line {lineno}: not a trace row (missing cat/ev): "
                f"{stripped[:120]!r}"
            )
        fields = {
            key: value for key, value in row.items() if key not in _ENVELOPE
        }
        yield TraceEvent(
            index=index,
            t=row.get("t"),
            cat=row["cat"],
            ev=row["ev"],
            fields=fields,
        )
        index += 1
    if torn is not None:
        raise TruncatedTrace(f"trace ends with a torn row at line {torn}")


def iter_record_events(records: Iterable[tuple]) -> Iterator[TraceEvent]:
    """Wrap in-memory ``(t, cat, ev, fields)`` tuples as events."""
    for index, (t, cat, ev, fields) in enumerate(records):
        yield TraceEvent(index=index, t=t, cat=cat, ev=ev, fields=fields)
