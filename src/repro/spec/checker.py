"""The shadow checker: replay a trace, render a verdict.

:class:`ShadowChecker` consumes :class:`~repro.spec.events.TraceEvent`
streams and drives the invariant library over them.  Multi-cell traces
(one JSONL file from a full experiment run) are partitioned on the
runner's ``cell_start``/``cell_end`` markers: every invariant is
re-instantiated per cell, because each cell restarts the simulation
clock at zero and reuses session labels.

Entry points, in increasing liveness:

* :func:`check_file` — replay a ``docs/trace.schema.json``-conformant
  JSONL file (tolerates a torn final row from a killed run);
* :func:`check_records` — replay in-memory ``(t, cat, ev, fields)``
  tuples, e.g. from a :class:`~repro.obs.trace.RingBufferSink`;
* :class:`CheckingSink` — wrap any sink so a live run is checked as it
  emits, with no second pass over the trace.

Every violation increments the ``repro_spec_violations_total`` metric
(labelled by invariant) in the ambient registry, and
:meth:`CheckReport.emit_to` can write the verdict back into a trace
under the ``spec`` category.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import runtime as _obs
from repro.obs.trace import SPEC as _SPEC
from repro.obs.trace import TraceRecord, Tracer
from repro.spec.events import (
    TraceEvent,
    TruncatedTrace,
    iter_jsonl_events,
    iter_record_events,
)
from repro.spec.invariants import (
    ALL_EVENTS,
    DEFAULT_INVARIANTS,
    Invariant,
    MonotoneClock,
    Violation,
)

__all__ = [
    "CheckReport",
    "CheckingSink",
    "ShadowChecker",
    "check_file",
    "check_records",
]

#: Factory signature: anything that builds a fresh :class:`Invariant`.
InvariantFactory = Callable[[], Invariant]


def _fan(feeds: List[Callable[..., None]]) -> Callable[..., None]:
    """One dispatch target fanning out to several invariant feeds."""
    def fanned(index, t, cat, ev, fields):
        for feed in feeds:
            feed(index, t, cat, ev, fields)
    return fanned


class CheckReport:
    """The verdict for one replayed trace."""

    def __init__(
        self,
        violations: List[Violation],
        events_checked: int,
        cells_checked: int,
        invariant_names: Sequence[str],
        truncated: bool = False,
    ) -> None:
        self.violations = violations
        self.events_checked = events_checked
        self.cells_checked = cells_checked
        self.invariant_names = list(invariant_names)
        self.truncated = truncated

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        """The earliest breach by stream position — the place to look."""
        if not self.violations:
            return None
        return min(
            self.violations,
            key=lambda v: (v.cell if v.cell is not None else -1, v.index),
        )

    def describe(self) -> str:
        """A deterministic multi-line human verdict."""
        lines = [
            "verdict: {} ({} events, {} cells, invariants: {})".format(
                "PASS" if self.ok else "FAIL",
                self.events_checked,
                self.cells_checked,
                ", ".join(self.invariant_names),
            )
        ]
        if self.truncated:
            lines.append(
                "note: trace ends with a torn row (killed run); "
                "complete rows were checked"
            )
        for violation in self.violations:
            lines.append(violation.describe())
        first = self.first_violation
        if first is not None:
            lines.append(
                f"first violating event: index {first.index}"
                + ("" if first.cell is None else f" in cell {first.cell}")
                + f" -> {first.event!r}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready summary (stable ordering, no timestamps)."""
        return {
            "ok": self.ok,
            "events_checked": self.events_checked,
            "cells_checked": self.cells_checked,
            "truncated": self.truncated,
            "invariants": list(self.invariant_names),
            "violations": [
                {
                    "invariant": v.invariant,
                    "cell": v.cell,
                    "index": v.index,
                    "t": v.t,
                    "message": v.message,
                    "event": v.event,
                }
                for v in self.violations
            ],
        }

    def emit_to(self, tracer: Tracer) -> None:
        """Write the verdict into a trace under the ``spec`` category."""
        if not tracer.spec:
            return
        for violation in self.violations:
            tracer.emit(
                _SPEC,
                "invariant_violated",
                violation.t,
                invariant=violation.invariant,
                cell=violation.cell,
                index=violation.index,
                message=violation.message,
            )
        tracer.emit(
            _SPEC,
            "check_verdict",
            None,
            ok=self.ok,
            events=self.events_checked,
            cells=self.cells_checked,
            violations=len(self.violations),
        )


class ShadowChecker:
    """Drives a set of invariants over a trace-event stream."""

    def __init__(
        self, invariants: Optional[Sequence[InvariantFactory]] = None
    ) -> None:
        self._factories: Tuple[InvariantFactory, ...] = tuple(
            invariants if invariants is not None else DEFAULT_INVARIANTS
        )
        self._events = 0
        self._cells = 0
        self._cell: Optional[int] = None
        self._closed = False
        self._violations: List[Violation] = []
        self._names: List[str] = []
        self._instantiate()
        self._names = [inv.name for inv in self._active]

    def _instantiate(self) -> None:
        """Fresh invariant instances (new cell or start of stream).

        The dispatch tables hold *bound feed methods* in a two-level
        ``cat -> ev -> [feed]`` map: the per-event path then costs two
        string-keyed dict lookups and direct calls, with no tuple
        allocation and no attribute traversal — this is what keeps the
        live :class:`CheckingSink` inside its overhead budget.
        """
        self._active: List[Invariant] = [
            factory() for factory in self._factories
        ]
        self._wildcard: List[Callable[..., None]] = []
        self._routes: Dict[str, Dict[str, List[Callable[..., None]]]] = {}
        self._clock: Optional[MonotoneClock] = None
        for invariant in self._active:
            if invariant.interests == ALL_EVENTS:
                if type(invariant) is MonotoneClock and self._clock is None:
                    # The clock check is the one wildcard in the default
                    # set; it is inlined into feed_raw rather than paying
                    # a per-event call (checking every record must stay
                    # within the live-sink overhead budget).
                    self._clock = invariant
                else:
                    self._wildcard.append(invariant.feed)
                continue
            for cat, ev in invariant.interests:
                self._routes.setdefault(cat, {}).setdefault(ev, []).append(
                    invariant.feed
                )
        self._last_t: Optional[float] = None
        # Flat ev-name dispatch for the live sink: one dict lookup to a
        # bound feed (the trace vocabulary keys every event name to one
        # category).  Disabled — set to None — when a generic wildcard
        # invariant is active or an event name is ambiguous, in which
        # case the sink falls back to feed_raw for every record.
        dispatch: Dict[str, Callable[..., None]] = {
            "cell_start": self._on_cell_start
        }
        usable = not self._wildcard
        if usable:
            for by_ev in self._routes.values():
                for ev, feeds in by_ev.items():
                    if ev in dispatch:
                        usable = False
                        break
                    dispatch[ev] = feeds[0] if len(feeds) == 1 else _fan(
                        feeds
                    )
                if not usable:
                    break
        self._ev_dispatch: Optional[Dict[str, Callable[..., None]]] = (
            dispatch if usable else None
        )

    def _on_cell_start(
        self,
        index: int,
        t: Optional[float],
        cat: str,
        ev: str,
        fields: Dict[str, Any],
    ) -> None:
        """Cell boundary (live-sink dispatch target)."""
        if cat != "run":
            return
        if self._cells:
            self._settle_cell()
            self._instantiate()
        self._cell = fields.get("index")
        self._cells += 1

    def observe_clock(
        self,
        index: int,
        t: float,
        cat: str,
        ev: str,
        fields: Dict[str, Any],
        last: float,
    ) -> None:
        """Record a backwards-clock violation found by a fast path."""
        clock = self._clock
        if clock is not None:
            clock._violate(
                index, t, cat, ev, fields,
                f"time ran backwards: {t:g} after {last:g}",
            )

    def account_events(self, total_seen: int) -> None:
        """Fold events a fast path filtered out back into the count."""
        if total_seen > self._events:
            self._events = total_seen
            if self._cells == 0:
                self._cells = 1

    def _settle_cell(self) -> None:
        """Finish the active invariants and harvest their violations."""
        for invariant in self._active:
            invariant.finish()
            for violation in invariant.violations:
                violation.cell = self._cell
                self._violations.append(violation)
            invariant.violations = []

    def feed(self, event: TraceEvent) -> None:
        """Route one event through the active invariants."""
        self.feed_raw(event.index, event.t, event.cat, event.ev, event.fields)

    def feed_raw(
        self,
        index: int,
        t: Optional[float],
        cat: str,
        ev: str,
        fields: Dict[str, Any],
    ) -> None:
        """:meth:`feed` without the :class:`TraceEvent` envelope.

        This is the per-record hot path (a quick run-all emits millions
        of events); the common case is one int compare, one failed
        string compare, the wildcard calls, and a two-level route
        lookup.
        """
        self._events += 1
        if cat == "run" and ev == "cell_start":
            self._on_cell_start(index, t, cat, ev, fields)
        elif self._cells == 0 and cat != "spec":
            # A raw single-cell trace (no runner markers): implicit cell.
            self._cells = 1
        if t is not None:
            last = self._last_t
            if last is not None and t < last:
                self.observe_clock(index, t, cat, ev, fields, last)
            self._last_t = t
        for feed in self._wildcard:
            feed(index, t, cat, ev, fields)
        by_ev = self._routes.get(cat)
        if by_ev is not None:
            feeds = by_ev.get(ev)
            if feeds is not None:
                for feed in feeds:
                    feed(index, t, cat, ev, fields)

    def finalize(self, truncated: bool = False) -> CheckReport:
        """Settle the last cell and produce the report (idempotent)."""
        if not self._closed:
            self._settle_cell()
            self._closed = True
            if self._violations:
                counter = _obs.registry().counter(
                    "repro_spec_violations_total",
                    "Invariant violations found by the shadow checker.",
                    ("invariant",),
                )
                for violation in self._violations:
                    counter.inc(1, invariant=violation.invariant)
        return CheckReport(
            violations=list(self._violations),
            events_checked=self._events,
            cells_checked=self._cells,
            invariant_names=list(self._names),
            truncated=truncated,
        )

    def run(
        self, events: Iterable[TraceEvent], truncated: bool = False
    ) -> CheckReport:
        """Feed a whole stream and finalize."""
        for event in events:
            self.feed(event)
        return self.finalize(truncated=truncated)


class CheckingSink:
    """A sink wrapper: forward every record, shadow-check it live.

    Drop-in for any :class:`~repro.obs.trace.Tracer` sink::

        checking = CheckingSink(JsonlSink(path))
        with tracing(Tracer(checking)):
            ...
        report = checking.finalize()

    The wrapped sink still owns durability (flush/close are forwarded);
    the checker sees each record exactly once, in emission order.
    """

    def __init__(
        self,
        inner: Any,
        invariants: Optional[Sequence[InvariantFactory]] = None,
    ) -> None:
        self.inner = inner
        self.checker = ShadowChecker(invariants)
        self._index = 0
        # Bound-method cache: write() runs once per emitted record.
        self._inner_write = inner.write

    def write(self, record: TraceRecord) -> None:
        self._inner_write(record)
        t, cat, ev, fields = record
        index = self._index
        self._index = index + 1
        checker = self.checker
        # Re-read the dispatch table each record: a cell boundary swaps
        # in fresh invariant instances (and a fresh table) mid-stream.
        dispatch = checker._ev_dispatch
        if dispatch is None:
            checker.feed_raw(index, t, cat, ev, fields)
            return
        if t is not None:
            last = checker._last_t
            if last is not None and t < last:
                checker.observe_clock(index, t, cat, ev, fields, last)
            checker._last_t = t
        fn = dispatch.get(ev)
        if fn is not None:
            fn(index, t, cat, ev, fields)

    def flush(self) -> None:
        flush = getattr(self.inner, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        self.inner.close()

    def records(self) -> List[TraceRecord]:
        return self.inner.records()

    def finalize(self) -> CheckReport:
        self.checker.account_events(self._index)
        return self.checker.finalize()


def check_records(
    records: Iterable[TraceRecord],
    invariants: Optional[Sequence[InvariantFactory]] = None,
) -> CheckReport:
    """Check an in-memory record list (e.g. a ring-buffer snapshot)."""
    return ShadowChecker(invariants).run(iter_record_events(records))


def check_file(
    path: str,
    invariants: Optional[Sequence[InvariantFactory]] = None,
) -> CheckReport:
    """Check a JSONL trace file; tolerates a torn final row."""
    checker = ShadowChecker(invariants)
    truncated = False
    with open(path, "r", encoding="utf-8") as handle:
        try:
            for event in iter_jsonl_events(handle):
                checker.feed(event)
        except TruncatedTrace:
            truncated = True
    return checker.finalize(truncated=truncated)
