"""Executable specification: the paper's invariants, checked on traces.

The paper's soft-state claims are *invariants* — digest agreement
implies namespace agreement (Section 6), no false expiry while
refreshes arrive within the timeout multiple (Section 7 / scalable
timers), reconsistency in O(refresh interval) after a disruption
(Section 7).  This package turns them into machine-checkable
properties over the structured trace stream that every layer already
emits (``repro.obs.trace``), following the network-simulator-centric
compositional-testing approach (Rousseaux et al., PAPERS.md):

* :mod:`repro.spec.events` — typed trace-event parsing (JSONL rows or
  in-memory records);
* :mod:`repro.spec.invariants` — the invariant library: small state
  machines consuming ``(t, cat, ev, fields)`` streams;
* :mod:`repro.spec.checker` — the shadow checker: replays any
  ``docs/trace.schema.json``-conformant stream (file or live sink) and
  produces a per-run verdict with the first violating event pinpointed;
* :mod:`repro.spec.chaos` — the hypothesis-driven chaos harness:
  seeded random fault schedules + topology/loss/timeout parameters run
  through the cached parallel runner with tracing on, shrinking to a
  minimal violating schedule on failure.

CLI surface: ``repro check <trace.jsonl>`` / ``repro check
--experiment <id>`` and ``repro chaos [--runs N --seed S]``.  See
``docs/SPEC.md`` for the invariant catalog.
"""

from repro.spec.checker import (
    CheckingSink,
    CheckReport,
    ShadowChecker,
    check_file,
    check_records,
)
from repro.spec.events import TraceEvent, iter_jsonl_events, iter_record_events
from repro.spec.invariants import (
    DEFAULT_INVARIANTS,
    BoundedReconsistency,
    DeliveryConservation,
    DigestAgreement,
    Invariant,
    MonotoneClock,
    MonotoneTransferIds,
    NoFalseExpiry,
    Violation,
)

__all__ = [
    "BoundedReconsistency",
    "CheckReport",
    "CheckingSink",
    "DEFAULT_INVARIANTS",
    "DeliveryConservation",
    "DigestAgreement",
    "Invariant",
    "MonotoneClock",
    "MonotoneTransferIds",
    "NoFalseExpiry",
    "ShadowChecker",
    "TraceEvent",
    "Violation",
    "check_file",
    "check_records",
    "iter_jsonl_events",
    "iter_record_events",
]
