"""The invariant library: the paper's claims as trace state machines.

Each :class:`Invariant` consumes a stream of trace events (routed by
``(cat, ev)`` interest) and accumulates :class:`Violation` records.
The catalog, with the claim each invariant encodes (full derivations
in ``docs/SPEC.md``):

* :class:`MonotoneClock` — simulation time never runs backwards within
  a cell (kernel sanity; every other invariant leans on it).
* :class:`MonotoneTransferIds` — per-channel transfer ids on serviced
  packets strictly increase (Section 5: receivers detect losses by
  sequence gaps, which is only sound if senders never reuse or reorder
  ids on a FIFO channel).
* :class:`DeliveryConservation` — every delivery is backed by exactly
  one prior transmission: delivered ≤ sent per channel, no receiver
  hears one transmission twice (the channel model of Section 3 —
  packets are lost, never duplicated or conjured).
* :class:`NoFalseExpiry` — a subscriber record expires only at its
  announced deadline, and never while a refresh inside the hold time
  is on the books (Section 7: state is eliminated when, and only when,
  refreshes stop for a full timeout multiple).
* :class:`DigestAgreement` — equal summary digests imply equal
  namespace content, checked through a digest-machinery-independent
  content fingerprint (Section 6: the namespace digest *is* the
  consistency check, so digest collisions across different content
  would break SSTP's convergence argument).
* :class:`BoundedReconsistency` — after an injected fault window
  clears, session consistency returns to its pre-fault baseline within
  a bound (Section 7: soft-state sessions re-converge in O(refresh
  interval) with no repair protocol).  Fault windows come from the
  injector's own trace events, which is how the checker distinguishes
  *expected* disruption (inside/overlapping a window) from a real
  violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ALL_EVENTS",
    "DEFAULT_INVARIANTS",
    "BoundedReconsistency",
    "DeliveryConservation",
    "DigestAgreement",
    "Invariant",
    "MonotoneClock",
    "MonotoneTransferIds",
    "NoFalseExpiry",
    "Violation",
]

#: Sentinel interest: route every event to the invariant.
ALL_EVENTS = "*"

#: Absolute slack for float time comparisons.  Deadlines and event
#: times come from the same float arithmetic, so the true tolerance is
#: a few ulps; 1e-9 seconds is far above that and far below any timer.
_EPS = 1e-9

#: Memory bound for per-key state maps.  Long traces retire state
#: naturally (expiries, delivered packets); what is left is lost
#: packets and stale keys, which are evicted oldest-first.
_STATE_CAP = 200_000


@dataclass(slots=True)
class Violation:
    """One invariant breach, pinned to the violating event."""

    invariant: str
    index: int
    t: Optional[float]
    message: str
    event: Dict[str, Any]
    cell: Optional[int] = None

    def describe(self) -> str:
        where = f"event {self.index}"
        if self.cell is not None:
            where += f" (cell {self.cell})"
        clock = "t=?" if self.t is None else f"t={self.t:g}"
        return f"[{self.invariant}] {where} {clock}: {self.message}"


class Invariant:
    """Base class: feed events, accumulate violations, then finish."""

    name = "invariant"
    #: ``(cat, ev)`` pairs to route to :meth:`feed`, or :data:`ALL_EVENTS`.
    interests: Any = ()

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def feed(
        self,
        index: int,
        t: Optional[float],
        cat: str,
        ev: str,
        fields: Dict[str, Any],
    ) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """End of stream/cell: settle liveness-style checks."""

    def _violate(
        self,
        index: int,
        t: Optional[float],
        cat: str,
        ev: str,
        fields: Dict[str, Any],
        message: str,
    ) -> None:
        row: Dict[str, Any] = {"t": t, "cat": cat, "ev": ev}
        row.update(fields)
        self.violations.append(
            Violation(
                invariant=self.name,
                index=index,
                t=t,
                message=message,
                event=row,
            )
        )


class MonotoneClock(Invariant):
    """Timestamps never decrease within one cell."""

    name = "monotone-clock"
    interests = ALL_EVENTS

    def __init__(self) -> None:
        super().__init__()
        self._last: Optional[float] = None

    def feed(self, index, t, cat, ev, fields) -> None:
        if t is None:
            return
        last = self._last
        if last is not None and t < last:
            self._violate(
                index, t, cat, ev, fields,
                f"time ran backwards: {t:g} after {last:g}",
            )
        self._last = t


class MonotoneTransferIds(Invariant):
    """Serviced transfer ids strictly increase per channel."""

    name = "monotone-transfer-ids"
    interests = (("packet", "packet_sent"),)

    def __init__(self) -> None:
        super().__init__()
        self._last_seq: Dict[Any, int] = {}

    def feed(self, index, t, cat, ev, fields) -> None:
        seq = fields.get("seq")
        if seq is None:
            return  # unsequenced packet
        chan = fields.get("chan")
        if chan is None:
            return  # a pre-`chan` trace
        last_seq = self._last_seq
        last = last_seq.get(chan)
        if last is not None and seq <= last:
            self._violate(
                index, t, cat, ev, fields,
                f"transfer id {seq} on {chan} not greater than "
                f"previously serviced {last}",
            )
        last_seq[chan] = seq


class DeliveryConservation(Invariant):
    """Deliveries never exceed transmissions, per channel and receiver.

    Bookkeeping: a serviced ``packet_sent`` opens ``(chan, seq)`` with
    its surviving-delivery budget (1 for a unicast survivor, receivers
    − lost for multicast); each ``packet_delivered`` spends one unit
    and, when a receiver id is present, must be a receiver that has not
    already heard this transmission.
    """

    name = "delivery-conservation"
    interests = (
        ("packet", "packet_sent"),
        ("packet", "packet_delivered"),
    )

    def __init__(self) -> None:
        super().__init__()
        #: (chan, seq) -> [budget, receivers already served or None]
        self._open: Dict[Tuple[Any, Any], list] = {}
        #: Multicast fan-out emits per-receiver deliveries *before* the
        #: aggregate ``packet_sent`` of the same service instant, so a
        #: delivery for a not-yet-seen transmission is parked here and
        #: reconciled when (if ever) the send arrives.
        self._orphans: Dict[Tuple[Any, Any], List[Tuple]] = {}
        self._last_sent: Dict[Any, int] = {}

    def feed(self, index, t, cat, ev, fields) -> None:
        seq = fields.get("seq")
        if seq is None:
            return
        chan = fields.get("chan")
        if chan is None:
            return
        key = (chan, seq)
        if ev == "packet_sent":
            receivers = fields.get("receivers")
            if receivers is not None:  # multicast service
                budget = receivers - fields.get("lost", 0)
                served: Optional[set] = set()
            else:  # unicast service: lost is a bool
                budget = 0 if fields.get("lost") else 1
                served = None
            self._last_sent[chan] = seq
            orphans = self._orphans.pop(key, None)
            if orphans is not None:
                # Reconcile the fan-out deliveries that preceded this
                # service instant, one inline pass (this runs for every
                # multicast transmission — no per-delivery call).
                for oindex, ot, ofields in orphans:
                    if served is not None:
                        receiver = ofields.get("receiver")
                        if receiver is not None:
                            if receiver in served:
                                self._violate(
                                    oindex, ot, "packet",
                                    "packet_delivered", ofields,
                                    f"receiver {receiver!r} heard {chan} "
                                    f"seq {seq} twice",
                                )
                                continue
                            served.add(receiver)
                    if budget <= 0:
                        self._violate(
                            oindex, ot, "packet", "packet_delivered",
                            ofields,
                            f"delivery of {chan} seq {seq} exceeds the "
                            "transmission's surviving-receiver count",
                        )
                        continue
                    budget -= 1
            if budget > 0:
                opened = self._open
                opened[key] = [budget, served]
                if len(opened) > _STATE_CAP:
                    opened.pop(next(iter(opened)))
            return
        entry = self._open.get(key)
        if entry is None:
            last = self._last_sent.get(chan)
            if last is not None and seq <= last:
                # The transmission's service already passed: this
                # delivery has no budget left to draw on.
                self._violate(
                    index, t, cat, ev, fields,
                    f"delivery of {chan} seq {seq} without a surviving "
                    "transmission (lost or already fully delivered)",
                )
                return
            orphans = self._orphans
            pending = orphans.get(key)
            if pending is None:
                pending = orphans[key] = []
                if len(orphans) > _STATE_CAP:
                    orphans.pop(next(iter(orphans)))
            pending.append((index, t, fields))
            return
        served = entry[1]
        if served is not None:
            receiver = fields.get("receiver")
            if receiver is not None:
                if receiver in served:
                    self._violate(
                        index, t, cat, ev, fields,
                        f"receiver {receiver!r} heard {chan} seq {seq} "
                        "twice",
                    )
                    return
                served.add(receiver)
        budget = entry[0] - 1
        if budget < 0:
            self._violate(
                index, t, cat, ev, fields,
                f"delivery of {chan} seq {seq} exceeds the "
                "transmission's surviving-receiver count",
            )
            return
        entry[0] = budget
        if budget == 0:
            del self._open[key]

    def finish(self) -> None:
        for key in sorted(self._orphans, key=repr):
            chan, seq = key
            for index, t, fields in self._orphans[key]:
                self._violate(
                    index, t, "packet", "packet_delivered", fields,
                    f"delivery of {chan} seq {seq} for a transmission "
                    "that was never serviced",
                )


class NoFalseExpiry(Invariant):
    """Subscriber expiries honor the announced deadline and refreshes.

    Two checks on every subscriber-side ``record_expired``:

    * the expiry time is not before the deadline the table itself
      reported (an early-firing timer is exactly the off-by-one this
      guards against);
    * the last ``refresh_received`` for that (table, key) plus its
      granted hold does not extend past the expiry time — if it does,
      a refresh was received in time and then ignored (dropped refresh
      handling).  During crashes and outages refreshes genuinely stop,
      so this check needs no fault-window exemption.
    """

    name = "no-false-expiry"
    interests = (
        ("record", "refresh_received"),
        ("record", "record_expired"),
    )

    def __init__(self) -> None:
        super().__init__()
        #: (table, key) -> (last refresh time, granted hold)
        self._refreshed: Dict[Tuple[Any, Any], Tuple[float, float]] = {}

    def feed(self, index, t, cat, ev, fields) -> None:
        table = fields.get("table")
        key = fields.get("key")
        if table is None or key is None:
            return  # pre-`table` trace
        state_key = (table, key)
        if ev == "refresh_received":
            hold = fields.get("hold")
            if t is None or hold is None:
                return
            refreshed = self._refreshed
            refreshed[state_key] = (t, hold)
            if len(refreshed) > _STATE_CAP:
                refreshed.pop(next(iter(refreshed)))
            return
        if fields.get("role") != "subscriber" or t is None:
            return
        deadline = fields.get("deadline")
        if deadline is not None and t < deadline - _EPS:
            self._violate(
                index, t, cat, ev, fields,
                f"record {key!r} expired at {t:g}, before its own "
                f"deadline {deadline:g}",
            )
        last = self._refreshed.pop(state_key, None)
        if last is not None:
            refresh_t, hold = last
            if refresh_t + hold > t + _EPS:
                self._violate(
                    index, t, cat, ev, fields,
                    f"record {key!r} expired at {t:g} despite a refresh "
                    f"at {refresh_t:g} holding it until "
                    f"{refresh_t + hold:g}",
                )


class DigestAgreement(Invariant):
    """Equal summary digests imply equal namespace content.

    The sender stamps every summary with its root digest *and* a
    digest-machinery-independent content fingerprint; receivers stamp
    every digest match with their mirror's fingerprint.  Agreement on
    the digest with disagreement on the fingerprint means the Merkle
    summarization equated two different namespaces.
    """

    name = "digest-agreement"
    interests = (
        ("record", "summary_digest"),
        ("record", "summary_checked"),
    )

    def __init__(self) -> None:
        super().__init__()
        self._content: Dict[str, str] = {}

    def feed(self, index, t, cat, ev, fields) -> None:
        if ev != "summary_digest":
            # summary_checked: the steady-state common case.
            if not fields.get("match"):
                return
            digest = fields.get("digest")
            if digest is None:
                return
            fingerprint = fields.get("fingerprint")
            if fingerprint is None:
                return
            expected = self._content.get(digest)
            if expected is not None and expected != fingerprint:
                self._violate(
                    index, t, cat, ev, fields,
                    f"receiver {fields.get('receiver')!r} matched digest "
                    f"{digest[:16]}… but mirrors different content than "
                    "the sender announced under it",
                )
            return
        digest = fields.get("digest")
        fingerprint = fields.get("fingerprint")
        if digest is None or fingerprint is None:
            return
        known = self._content.get(digest)
        if known is None:
            content = self._content
            content[digest] = fingerprint
            if len(content) > _STATE_CAP:
                content.pop(next(iter(content)))
        elif known != fingerprint:
            self._violate(
                index, t, cat, ev, fields,
                f"sender announced digest {digest[:16]}… for two "
                "different namespace contents",
            )


class BoundedReconsistency(Invariant):
    """Consistency returns to baseline within ``bound`` after a fault.

    For every ``fault_window`` ``[start, end)``: the baseline is the
    time-average of ``consistency_sample`` values over
    ``[start − baseline_window, start]``; the session must produce a
    sample ≥ ``baseline × (1 − tolerance)`` in ``[end, end + bound]``.
    Windows are *skipped* (expected, not violated) when the trace ends
    before the recovery deadline, when another fault window overlaps
    the recovery interval, or when there is no pre-fault baseline to
    recover to.
    """

    name = "bounded-reconsistency"
    interests = (
        ("fault", "fault_window"),
        ("run", "consistency_sample"),
    )

    def __init__(
        self,
        bound: float = 30.0,
        tolerance: float = 0.1,
        baseline_window: float = 20.0,
    ) -> None:
        super().__init__()
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if not 0.0 <= tolerance < 1.0:
            raise ValueError(
                f"tolerance must be in [0, 1), got {tolerance}"
            )
        self.bound = bound
        self.tolerance = tolerance
        self.baseline_window = baseline_window
        self._windows: List[Tuple[int, Optional[float], dict]] = []
        self._samples: Dict[Any, List[Tuple[float, float]]] = {}

    def feed(self, index, t, cat, ev, fields) -> None:
        if ev == "fault_window":
            self._windows.append((index, t, dict(fields)))
            return
        value = fields.get("value")
        if t is None or value is None:
            return
        self._samples.setdefault(fields.get("session"), []).append(
            (t, value)
        )

    def finish(self) -> None:
        if not self._windows:
            return
        intervals = [
            (w.get("start"), w.get("end"))
            for _i, _t, w in self._windows
            if w.get("start") is not None and w.get("end") is not None
        ]
        for index, t, window in self._windows:
            start = window.get("start")
            end = window.get("end")
            if start is None or end is None:
                continue
            deadline = end + self.bound
            overlapped = any(
                other_start < deadline and end < other_end
                for other_start, other_end in intervals
                if (other_start, other_end) != (start, end)
            )
            if overlapped:
                continue  # expected: another fault disturbs the recovery
            for session, series in sorted(
                self._samples.items(), key=lambda item: str(item[0])
            ):
                baseline = _time_average(
                    series, start - self.baseline_window, start
                )
                if baseline is None or baseline <= 0.0:
                    continue  # nothing to recover to
                if not series or series[-1][0] < deadline:
                    continue  # trace ends before the recovery deadline
                target = baseline * (1.0 - self.tolerance)
                recovered = any(
                    value >= target
                    for sample_t, value in series
                    if end <= sample_t <= deadline
                )
                if not recovered:
                    self._violate(
                        index, t, "fault", "fault_window", window,
                        f"session {session!r} did not recover to "
                        f"{target:.3f} (baseline {baseline:.3f} − "
                        f"{self.tolerance:.0%}) within {self.bound:g}s "
                        f"of fault {window.get('label')!r} clearing "
                        f"at {end:g}",
                    )


def _time_average(
    series: List[Tuple[float, float]], start: float, end: float
) -> Optional[float]:
    """Time-weighted mean of a step series over ``[start, end]``."""
    if end <= start:
        return None
    weighted = 0.0
    duration = 0.0
    previous: Optional[Tuple[float, float]] = None
    for t, value in series:
        if t > end:
            break
        if previous is not None:
            lo = max(previous[0], start)
            hi = min(t, end)
            if hi > lo:
                weighted += previous[1] * (hi - lo)
                duration += hi - lo
        previous = (t, value)
    if previous is not None and previous[0] <= end:
        lo = max(previous[0], start)
        if end > lo:
            weighted += previous[1] * (end - lo)
            duration += end - lo
    if duration <= 0.0:
        return None
    return weighted / duration


#: Factories for the standard checker configuration, in report order.
DEFAULT_INVARIANTS = (
    MonotoneClock,
    MonotoneTransferIds,
    DeliveryConservation,
    NoFalseExpiry,
    DigestAgreement,
    BoundedReconsistency,
)
