"""Chaos harness: seeded random fault schedules, shadow-checked.

The paper's robustness story (Section 7) is a *universal* claim —
soft-state sessions survive any failure pattern and re-converge — so a
handful of hand-written fault scenarios undertests it.  This module
property-tests it: hypothesis generates seeded random scenarios
(session kind, topology, loss, and a fault schedule drawn from the
whole ``repro.faults`` vocabulary), each scenario runs with tracing on,
and the shadow checker replays its trace against the invariant library.

Execution is three-phase, so scenarios flow through the same cached
parallel runner as every experiment:

1. **Collect** — hypothesis runs in generate-only mode under a fixed
   ``@seed``; scenarios are gathered as plain dicts, not executed.
2. **Execute** — :func:`~repro.experiments.runner.map_cells` fans the
   scenarios out over :func:`_chaos_cell`, a module-level pure function
   of its kwargs (picklable, content-addressable: a warm cache replays
   a chaos sweep without re-simulating).
3. **Shrink** — only if a scenario failed: hypothesis re-runs *with*
   execution under the same seed, so its shrinker minimizes the failing
   schedule before reporting it.

The report is a plain dict with no timestamps or machine identity:
the same ``(seed, runs)`` yields a byte-identical report on every
machine, which is what lets CI pin the chaos smoke job.

hypothesis is an optional dependency: importing this module is safe
without it, and :func:`run_chaos` raises a clear error if it is absent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import map_cells
from repro.faults.schedule import (
    FaultSchedule,
    LinkOutage,
    LossEpisode,
    Partition,
    ReceiverChurn,
    SenderCrash,
)
from repro.obs import runtime as _obs
from repro.obs.trace import FAULT, PACKET, RECORD, RUN, RingBufferSink, Tracer
from repro.spec.checker import check_records

try:  # optional: the harness degrades to "unavailable", not ImportError
    from hypothesis import HealthCheck, Phase, given
    from hypothesis import seed as _hyp_seed
    from hypothesis import settings as _hyp_settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - image always ships hypothesis
    HAVE_HYPOTHESIS = False

__all__ = [
    "HAVE_HYPOTHESIS",
    "generate_scenarios",
    "run_chaos",
]

#: Session kinds under test (the protocol ladder plus SSTP).
_SESSIONS = ("openloop", "twoqueue", "feedback", "sstp")
_HORIZONS = (60.0, 120.0)

#: Exclusive claim groups, mirrored from ``repro.faults.schedule`` so
#: generated schedules are valid by construction (the library rejects
#: same-claim overlap; the generator simply never proposes it).
_CLAIMS = {
    "crash": "sender",
    "outage": "link",
    "loss": "link",
    "partition": "link",
}


def _spec_window(spec: Tuple) -> Optional[Tuple[float, float]]:
    kind = spec[0]
    if kind in ("crash", "outage", "loss"):
        return (spec[1], spec[1] + spec[2])
    if kind == "partition":
        return (spec[1], spec[2])
    return None  # churn: stochastic, exempt from overlap rules


def _sanitize(drafts: Sequence[Tuple], horizon: float) -> Tuple[Tuple, ...]:
    """Drop drafts that the fault library would reject (deterministic).

    Keeps the first of any same-claim overlapping pair and anything
    whose earliest start falls inside the horizon — a pure function of
    the drawn values, so generation stays reproducible.
    """
    kept: List[Tuple] = []
    for spec in drafts:
        claim = _CLAIMS.get(spec[0])
        window = _spec_window(spec)
        start = window[0] if window is not None else spec[3]
        if start >= horizon:
            continue
        if claim is not None and window is not None:
            clash = False
            for other in kept:
                if _CLAIMS.get(other[0]) != claim:
                    continue
                other_window = _spec_window(other)
                if other_window is None:
                    continue
                if (
                    window[0] < other_window[1]
                    and other_window[0] < window[1]
                ):
                    clash = True
                    break
            if clash:
                continue
        kept.append(spec)
    return tuple(kept)


if HAVE_HYPOTHESIS:

    def _bounded(draw, lo: float, hi: float) -> float:
        value = draw(
            st.floats(
                min_value=lo,
                max_value=hi,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        return round(value, 3)

    @st.composite
    def _fault_drafts(draw, horizon: float) -> Tuple:
        kind = draw(
            st.sampled_from(("crash", "outage", "loss", "churn", "partition"))
        )
        at = _bounded(draw, 5.0, horizon * 0.6)
        duration = _bounded(draw, 1.0, 15.0)
        if kind == "crash":
            return ("crash", at, duration, draw(st.booleans()))
        if kind == "outage":
            return ("outage", at, duration)
        if kind == "loss":
            mean_loss = _bounded(draw, 0.2, 0.8)
            burst = _bounded(draw, 2.0, 10.0)
            return ("loss", at, duration, mean_loss, burst)
        if kind == "churn":
            rate = _bounded(draw, 0.02, 0.2)
            down_mean = _bounded(draw, 2.0, 10.0)
            stop = round(min(horizon - 1.0, at + 30.0), 3)
            return ("churn", rate, down_mean, at, stop)
        return ("partition", at, round(at + duration, 3))

    @st.composite
    def _scenarios(draw) -> Dict[str, Any]:
        session = draw(st.sampled_from(_SESSIONS))
        horizon = draw(st.sampled_from(_HORIZONS))
        scenario: Dict[str, Any] = {
            "session": session,
            "horizon": horizon,
            "seed": draw(st.integers(min_value=0, max_value=2**16 - 1)),
            "loss_rate": _bounded(draw, 0.0, 0.4),
        }
        if session == "sstp":
            scenario["n_receivers"] = draw(st.integers(min_value=1, max_value=4))
            scenario["total_kbps"] = draw(st.sampled_from((32.0, 50.0)))
        else:
            scenario["update_rate"] = draw(st.sampled_from((0.5, 1.0, 2.0)))
            scenario["data_kbps"] = draw(st.sampled_from((32.0, 50.0)))
        drafts = draw(
            st.lists(_fault_drafts(horizon), min_size=0, max_size=3)
        )
        scenario["faults"] = _sanitize(drafts, horizon)
        return scenario

    def _quiet_settings(runs: int, phases=None) -> "_hyp_settings":
        extra = {} if phases is None else {"phases": phases}
        return _hyp_settings(
            max_examples=runs,
            database=None,
            deadline=None,
            derandomize=False,
            print_blob=False,
            suppress_health_check=list(HealthCheck),
            **extra,
        )


def _require_hypothesis() -> None:
    if not HAVE_HYPOTHESIS:
        raise RuntimeError(
            "the chaos harness needs the 'hypothesis' package, which is "
            "not importable in this environment"
        )


def generate_scenarios(runs: int, seed: int) -> List[Dict[str, Any]]:
    """Phase 1: collect ``runs`` scenarios under a fixed seed, no execution."""
    _require_hypothesis()
    collected: List[Dict[str, Any]] = []

    @_hyp_seed(seed)
    @_quiet_settings(runs, phases=(Phase.generate,))
    @given(scenario=_scenarios())
    def collect(scenario: Dict[str, Any]) -> None:
        collected.append(scenario)

    collect()
    return collected


def _receiver_ids(session: str, n_receivers: Optional[int]) -> List[str]:
    if session == "sstp":
        return [f"rcv-{index}" for index in range(n_receivers or 1)]
    return ["receiver"]


def _build_schedule(
    specs: Sequence[Tuple], receiver_ids: Sequence[str]
) -> Optional[FaultSchedule]:
    faults = []
    for spec in specs:
        kind = spec[0]
        if kind == "crash":
            faults.append(
                SenderCrash(at=spec[1], down_for=spec[2], cold=spec[3])
            )
        elif kind == "outage":
            faults.append(LinkOutage(at=spec[1], duration=spec[2]))
        elif kind == "loss":
            faults.append(
                LossEpisode(
                    at=spec[1],
                    duration=spec[2],
                    mean_loss=spec[3],
                    burst_length=spec[4],
                )
            )
        elif kind == "churn":
            faults.append(
                ReceiverChurn(
                    rate=spec[1],
                    down_mean=spec[2],
                    start=spec[3],
                    stop=spec[4],
                )
            )
        elif kind == "partition":
            faults.append(
                Partition(
                    [["sender"], list(receiver_ids)],
                    at=spec[1],
                    heal_at=spec[2],
                )
            )
        else:
            raise ValueError(f"unknown fault spec kind {kind!r}")
    return FaultSchedule(faults) if faults else None


def _chaos_cell(
    session: str,
    horizon: float,
    seed: int,
    loss_rate: float,
    faults: Sequence[Tuple] = (),
    update_rate: Optional[float] = None,
    data_kbps: Optional[float] = None,
    n_receivers: Optional[int] = None,
    total_kbps: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one scenario traced, replay the checker, return the verdict.

    Module-level and pure in its kwargs: the runner can fork it to a
    pool and the result cache can content-address it.
    """
    from repro.protocols import (
        FeedbackSession,
        OpenLoopSession,
        TwoQueueSession,
    )
    from repro.sstp import SstpSession

    tracer = Tracer(
        RingBufferSink(capacity=None),
        categories=(PACKET, RECORD, FAULT, RUN),
    )
    # Sessions cache the ambient tracer at construction, so the whole
    # lifecycle — construction included — happens inside the context.
    with _obs.tracing(tracer):
        schedule = _build_schedule(
            faults, _receiver_ids(session, n_receivers)
        )
        if session == "sstp":
            sim = SstpSession(
                total_kbps=total_kbps or 50.0,
                n_receivers=n_receivers or 1,
                loss_rate=loss_rate,
                seed=seed,
                faults=schedule,
            )
        else:
            kwargs = dict(
                data_kbps=data_kbps or 50.0,
                loss_rate=loss_rate,
                update_rate=update_rate or 1.0,
                seed=seed,
                faults=schedule,
            )
            if session == "openloop":
                sim = OpenLoopSession(**kwargs)
            elif session == "twoqueue":
                sim = TwoQueueSession(**kwargs)
            elif session == "feedback":
                sim = FeedbackSession(feedback_kbps=8.0, **kwargs)
            else:
                raise ValueError(f"unknown session kind {session!r}")
        sim.run(horizon)
    report = check_records(tracer.sink.records())
    return {
        "ok": report.ok,
        "events": report.events_checked,
        "violations": [violation.describe() for violation in report.violations],
    }


def _shrink(
    runs: int, seed: int
) -> Tuple[Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Phase 3: re-run with execution so hypothesis shrinks the failure."""
    holder: Dict[str, Any] = {}

    @_hyp_seed(seed)
    @_quiet_settings(runs)
    @given(scenario=_scenarios())
    def execute(scenario: Dict[str, Any]) -> None:
        verdict = _chaos_cell(**scenario)
        if not verdict["ok"]:
            # hypothesis replays the minimal falsifying example last, so
            # whatever is in the holder when the error escapes is minimal.
            holder["scenario"] = scenario
            holder["verdict"] = verdict
        assert verdict["ok"], "invariant violation"

    try:
        execute()
    except AssertionError:
        pass
    return holder.get("scenario"), holder.get("verdict")


def run_chaos(
    runs: int = 20,
    seed: int = 0,
    jobs: int = 1,
    shrink: bool = True,
) -> Dict[str, Any]:
    """Generate, execute, and check ``runs`` chaos scenarios.

    Returns a deterministic report dict: same ``(seed, runs)`` in, same
    bytes out (scenario generation is pinned by the hypothesis seed and
    every cell is a deterministic simulation).
    """
    _require_hypothesis()
    scenarios = generate_scenarios(runs, seed)
    verdicts = map_cells(_chaos_cell, scenarios, jobs=jobs)
    failures = [
        {"scenario": scenario, "verdict": verdict}
        for scenario, verdict in zip(scenarios, verdicts)
        if verdict is not None and not verdict["ok"]
    ]
    report: Dict[str, Any] = {
        "seed": seed,
        "runs": runs,
        "scenarios_executed": len(scenarios),
        "events_checked": sum(
            verdict["events"] for verdict in verdicts if verdict is not None
        ),
        "failures": len(failures),
        "failing": failures,
        "minimal": None,
    }
    if failures and shrink:
        minimal_scenario, minimal_verdict = _shrink(runs, seed)
        if minimal_scenario is not None:
            report["minimal"] = {
                "scenario": minimal_scenario,
                "verdict": minimal_verdict,
            }
    return report
