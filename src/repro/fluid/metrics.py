"""Fluid-run summaries matching what the DES sessions publish.

The DES consistency meter samples the held-pair fraction on a tick
grid and the convergence experiment reports threshold crossing times
(:func:`repro.experiments.ext_convergence.crossing_times`); the fluid
counterpart reports the same quantities from the integrated
trajectory so fluid rows and DES rows are directly comparable in
``ext_scale`` and in the cross-validation suite.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.fluid.model import FluidRun

__all__ = ["QUANTILES", "crossing_times_to", "summarize"]

QUANTILES = (0.5, 0.9, 0.99)


def crossing_times_to(
    times: Sequence[float],
    series: Sequence[float],
    target: float,
    fractions: Tuple[float, ...] = QUANTILES,
) -> Dict[float, float]:
    """First time the series reaches each ``fraction * target``.

    Time-to-reconsistency is relative to the *equilibrium* level, not
    to 1.0: under loss the steady state itself sits below full
    consistency and "converged" means having reached it, so thresholds
    scale with the target (NaN when never reached within the horizon).
    """
    result = {q: math.nan for q in fractions}
    for t, value in zip(times, series):
        for q in fractions:
            if math.isnan(result[q]) and value >= q * target:
                result[q] = t
    return result


def summarize(run: FluidRun, n_records: int = 1) -> Dict[str, float]:
    """One fluid trajectory as the standard consistency metrics row.

    ``consistency`` is the held fraction at the horizon, crossing
    times are relative to the closed-form equilibrium, and the
    false-expiry rate is absolute (per second, across all
    ``n_receivers * n_records`` pairs) using the epoch-exact reported
    coefficient.
    """
    hold: List[float] = run.hold
    times = crossing_times_to(run.times, hold, run.rates.hold_eq)
    pairs = run.params.n_receivers * n_records
    return {
        "consistency": hold[-1],
        "consistency_eq": run.rates.hold_eq,
        "stale_fraction": run.stale[-1],
        "expired_fraction": run.expired[-1],
        "t50_s": times[0.5],
        "t90_s": times[0.9],
        "t99_s": times[0.99],
        "false_expiry_per_s": run.rates.false_expiry * hold[-1] * pairs,
        "false_expiries_total": run.expiries[-1] * pairs,
    }
