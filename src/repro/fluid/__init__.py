"""Mean-field fluid backend for announce/listen at population scale.

The DES path models every receiver individually and tops out around
10^4 receivers; this package evolves *state fractions* instead —
unaware / consistent / stale / falsely-expired — under the mean-field
ODE limit of the announce/listen epoch chain (docs/SCALE.md).  Cost is
independent of the population size, so sweeps at N=10^6 and beyond are
a few milliseconds per cell, and the model is cross-validated against
the sharded DES backend in the overlap region (``tests/fluid/``).

* :mod:`repro.fluid.model` — parameters, hazard derivation, the
  fixed-step RK4 integrator (numpy-vectorized with a pure-python
  fallback);
* :mod:`repro.fluid.metrics` — the same consistency / convergence /
  false-expiry summaries the DES sessions publish, so fluid cells slot
  into ``map_cells``, the result cache, and telemetry unchanged.
"""

from repro.fluid.model import (
    DEFAULT_DT,
    FluidParams,
    FluidRates,
    FluidRun,
    consecutive_loss_probability,
    derive_rates,
    mean_loss_probability,
    solve,
    solve_many,
)
from repro.fluid.metrics import crossing_times_to, summarize

__all__ = [
    "DEFAULT_DT",
    "FluidParams",
    "FluidRates",
    "FluidRun",
    "consecutive_loss_probability",
    "crossing_times_to",
    "derive_rates",
    "mean_loss_probability",
    "solve",
    "solve_many",
    "summarize",
]
