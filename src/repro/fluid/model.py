"""The mean-field ODE model of announce/listen (docs/SCALE.md).

Discrete picture first: with per-record announcement period ``Delta``
every (receiver, record) pair sees one announcement per epoch, received
with probability ``q = 1 - p``.  A pair holds the record while fewer
than ``m`` consecutive announcements have been lost since the last
receipt (``m`` = timeout multiple), so the epoch chain has states
``U, C_0 .. C_{m-1}`` and its stationary hold fraction is exactly
``1 - P_m`` where ``P_m = P(m consecutive announcements lost)``
(``p^m`` for Bernoulli loss; a two-state chain product for
Gilbert-Elliott, see :func:`consecutive_loss_probability`).

The fluid limit replaces the epoch chain with hazards chosen to match
it at both ends:

* **acquisition** ``a = -lambda * ln(p)`` — the exponential clock whose
  survival function equals the geometric acquisition law ``p^k`` at
  every epoch boundary ``t = k * Delta`` (``lambda = 1/Delta``);
* **expiry** ``h = a * P_m / (1 - P_m)`` — chosen so the ODE
  equilibrium ``a / (a + h)`` equals the discrete chain's ``1 - P_m``
  *exactly*, not just asymptotically.

State fractions (per (receiver, record) pair): ``n`` unaware (never
heard, or reset by churn), ``c`` consistent, ``s`` stale (holding a
superseded version), ``f`` falsely expired (timed out while the
publisher is alive).  With update rate ``nu`` and churn rate ``gamma``:

    dn/dt = -a*n            + gamma*(c + s + f)
    dc/dt =  a*(n + s + f)  - (nu + h + gamma)*c
    ds/dt =  nu*c           - (a + h + gamma)*s
    df/dt =  h*(c + s)      - (a + gamma)*f

``n = 1 - c - s - f`` is kept implicit so conservation holds to the
last bit.  The *reported* false-expiry rate uses the epoch-exact
coefficient ``lambda * q * P_m / (1 - P_m)`` per held pair (equal to
the discrete chain's ``lambda * q * P_m`` flow at equilibrium); the
hazard ``h`` drives the dynamics only.

The integrator is classical fixed-step RK4, vectorized over a whole
grid of parameter cells with numpy when available and falling back to
an identical scalar loop otherwise — both paths evaluate the same
expressions in the same order, so their float64 trajectories are
byte-identical (pinned by ``tests/fluid/test_model.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.net.loss import GilbertElliottLoss, LossModel

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

__all__ = [
    "DEFAULT_DT",
    "FluidParams",
    "FluidRates",
    "FluidRun",
    "consecutive_loss_probability",
    "derive_rates",
    "mean_loss_probability",
    "solve",
    "solve_many",
]

#: Default RK4 step: announce/listen time constants are O(Delta) >= 1s
#: in every experiment, so 0.05 s keeps the local truncation error far
#: below the cross-validation tolerances while a full 80 s horizon is
#: still only 1600 steps.
DEFAULT_DT = 0.05

#: Loss probabilities are clamped here before ``ln(p)``: a perfect
#: channel would make the acquisition hazard infinite, but capping it
#: at ``lambda * ln(1/1e-12)`` keeps the ODE stiff-but-integrable and
#: the equilibrium indistinguishable from 1.
_MIN_LOSS = 1e-12


def mean_loss_probability(loss: Union[float, LossModel]) -> float:
    """Per-announcement loss probability ``p`` from a rate or a model."""
    if isinstance(loss, LossModel):
        return float(loss.mean_loss_rate)
    p = float(loss)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"loss probability must be in [0, 1], got {p}")
    return p


def consecutive_loss_probability(
    loss: Union[float, LossModel], m: int, stride: int = 1
) -> float:
    """``P_m``: probability ``m`` consecutive *observed* packets are lost.

    Bernoulli loss gives ``p^m`` exactly (stride-independent).  For
    Gilbert-Elliott the stationary two-state chain is stepped through
    the recursion matching :meth:`~repro.net.loss.GilbertElliottLoss
    .is_lost` (transition, then per-state loss draw); ``stride`` is how
    many channel packets apart the observed ones are — a receiver
    listening for one record among ``R`` interleaved ones sees that
    record every ``R``-th chain step, so its timeout chain is the
    ``stride=R`` decimation, between whose observations the chain makes
    ``stride - 1`` extra transitions.  For ``stride=1`` and the common
    ``bad_loss=1, good_loss=0`` chain this collapses to the textbook
    ``pi_bad * (1 - p_bg)^(m-1)``.  Other stateful models fall back to
    the independence approximation ``mean_loss_rate^m``.
    """
    if m < 1:
        raise ValueError(f"timeout multiple must be >= 1, got {m}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if isinstance(loss, GilbertElliottLoss):
        p_gb, p_bg = loss.p_gb, loss.p_bg
        bad, good = loss.bad_loss, loss.good_loss
        #: (g_good, g_bad): g_state(k) = P(next k observed packets all
        #: lost | chain in `state` before the next one), from g(0) = 1.
        g_good = g_bad = 1.0
        for _ in range(m):
            # The stride-1 intermediate packets advance the chain but
            # their loss outcomes are other records' problem.
            w_good, w_bad = g_good, g_bad
            for _ in range(stride - 1):
                w_good, w_bad = (
                    (1.0 - p_gb) * w_good + p_gb * w_bad,
                    p_bg * w_good + (1.0 - p_bg) * w_bad,
                )
            v_good = good * w_good
            v_bad = bad * w_bad
            g_good, g_bad = (
                (1.0 - p_gb) * v_good + p_gb * v_bad,
                p_bg * v_good + (1.0 - p_bg) * v_bad,
            )
        pi_bad = p_gb / (p_gb + p_bg)
        return (1.0 - pi_bad) * g_good + pi_bad * g_bad
    return mean_loss_probability(loss) ** m


@dataclass
class FluidParams:
    """One fluid cell: the announce/listen parameters of a population.

    ``loss`` is either a per-announcement loss probability (Bernoulli)
    or any :class:`~repro.net.loss.LossModel`; ``n_receivers`` scales
    absolute rates only — the trajectory itself is N-independent, which
    is the whole point of the fluid backend.
    """

    loss: Union[float, LossModel]
    refresh_interval: float = 1.0
    timeout_multiple: int = 4
    update_rate: float = 0.0
    churn_rate: float = 0.0
    n_receivers: float = 1.0
    #: Channel packets between announcements of the *same* record — the
    #: store size for a round-robin sender.  Only matters for bursty
    #: (stateful) loss, where it decimates the chain; see
    #: :func:`consecutive_loss_probability`.
    loss_stride: int = 1

    def __post_init__(self) -> None:
        if self.refresh_interval <= 0:
            raise ValueError(
                f"refresh_interval must be positive, got {self.refresh_interval}"
            )
        if self.timeout_multiple < 1:
            raise ValueError(
                f"timeout_multiple must be >= 1, got {self.timeout_multiple}"
            )
        for name in ("update_rate", "churn_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.n_receivers <= 0:
            raise ValueError(
                f"n_receivers must be positive, got {self.n_receivers}"
            )
        if self.loss_stride < 1:
            raise ValueError(
                f"loss_stride must be >= 1, got {self.loss_stride}"
            )
        mean_loss_probability(self.loss)  # validates range


@dataclass(frozen=True)
class FluidRates:
    """Derived hazards and the closed-form equilibrium of one cell."""

    acquire: float  # a: unaware/stale/expired -> consistent
    expire: float  # h: held -> falsely expired (dynamics)
    update: float  # nu: consistent -> stale
    churn: float  # gamma: any aware state -> unaware
    #: Reported false-expiry rate per *held* pair per second — the
    #: epoch-exact coefficient, not the exponentialized hazard.
    false_expiry: float
    consistent_eq: float
    stale_eq: float
    expired_eq: float

    @property
    def hold_eq(self) -> float:
        """Equilibrium held fraction (= ``1 - P_m`` when nu=gamma=0)."""
        return self.consistent_eq + self.stale_eq


def derive_rates(params: FluidParams) -> FluidRates:
    """Hazards + equilibrium from announce/listen parameters."""
    lam = 1.0 / params.refresh_interval
    p = mean_loss_probability(params.loss)
    p_m = consecutive_loss_probability(
        params.loss, params.timeout_multiple, params.loss_stride
    )
    if p >= 1.0:
        acquire = 0.0
    else:
        acquire = -lam * math.log(max(p, _MIN_LOSS))
    if acquire > 0.0 and 0.0 < p_m < 1.0:
        expire = acquire * p_m / (1.0 - p_m)
        false_expiry = lam * (1.0 - p) * p_m / (1.0 - p_m)
    else:
        expire = 0.0
        false_expiry = 0.0
    nu = params.update_rate
    gamma = params.churn_rate
    denom = acquire + nu + expire + gamma
    consistent = acquire / denom if denom > 0 else 0.0
    aware_decay = acquire + expire + gamma
    stale = nu * consistent / aware_decay if aware_decay > 0 else 0.0
    expired_decay = acquire + gamma
    expired = (
        expire * (consistent + stale) / expired_decay
        if expired_decay > 0
        else 0.0
    )
    return FluidRates(
        acquire=acquire,
        expire=expire,
        update=nu,
        churn=gamma,
        false_expiry=false_expiry,
        consistent_eq=consistent,
        stale_eq=stale,
        expired_eq=expired,
    )


@dataclass
class FluidRun:
    """One integrated trajectory: per-pair state fractions over time.

    Series are plain python floats (picklable, cache- and
    telemetry-friendly); ``expiries`` is the cumulative expected number
    of false expiries *per pair* (multiply by ``n_receivers * records``
    for an absolute count).
    """

    params: FluidParams
    rates: FluidRates
    times: List[float]
    consistent: List[float]
    stale: List[float]
    expired: List[float]
    expiries: List[float]

    @property
    def hold(self) -> List[float]:
        """Held fraction c+s — what a DES consistency sample measures."""
        return [c + s for c, s in zip(self.consistent, self.stale)]

    def false_expiry_rate(self, at: int = -1) -> float:
        """Absolute false-expiry rate (per second) at sample ``at``."""
        held = self.consistent[at] + self.stale[at]
        return self.rates.false_expiry * held * self.params.n_receivers


def solve(
    params: FluidParams, horizon: float, dt: float = DEFAULT_DT
) -> FluidRun:
    """Integrate one cell; see :func:`solve_many`."""
    return solve_many([params], horizon, dt)[0]


def solve_many(
    params_list: Sequence[FluidParams], horizon: float, dt: float = DEFAULT_DT
) -> List[FluidRun]:
    """Integrate a whole grid of cells in one vectorized RK4 pass.

    All cells share the time grid; the state array is shape ``(M, 4)``
    for M cells, so the per-step cost is a handful of length-M vector
    ops — solving a million-receiver sweep costs the same as a
    ten-receiver one.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    params_list = list(params_list)
    if not params_list:
        return []
    steps = max(1, int(round(horizon / dt)))
    rates = [derive_rates(p) for p in params_list]
    a = [r.acquire for r in rates]
    h = [r.expire for r in rates]
    nu = [r.update for r in rates]
    gamma = [r.churn for r in rates]
    fe = [r.false_expiry for r in rates]
    if _np is not None:
        series = _integrate_numpy(a, h, nu, gamma, fe, steps, dt)
    else:
        series = _integrate_python(a, h, nu, gamma, fe, steps, dt)
    times = [i * dt for i in range(steps + 1)]
    runs = []
    for index, (params, cell_rates) in enumerate(zip(params_list, rates)):
        consistent, stale, expired, expiries = series[index]
        runs.append(
            FluidRun(
                params=params,
                rates=cell_rates,
                times=times,
                consistent=consistent,
                stale=stale,
                expired=expired,
                expiries=expiries,
            )
        )
    return runs


# -- integrators ------------------------------------------------------------
#
# Both paths compute the identical expressions in the identical order:
# numpy's elementwise float64 ops round exactly like scalar python
# floats, so the trajectories agree to the last bit and the fallback is
# a true drop-in (no tolerance laundering in the cross-validation
# tests).  The derivative uses the n-eliminated form:
#
#   dc = a*(1 - c) - (nu + h + gamma)*c      [a*(n+s+f) = a*(1-c)]
#   ds = nu*c - (a + h + gamma)*s
#   df = h*(c + s) - (a + gamma)*f
#   dE = fe*(c + s)


def _integrate_numpy(a, h, nu, gamma, fe, steps, dt):
    np = _np
    a = np.asarray(a, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    nu = np.asarray(nu, dtype=np.float64)
    gamma = np.asarray(gamma, dtype=np.float64)
    fe = np.asarray(fe, dtype=np.float64)
    cells = a.shape[0]
    c_decay = nu + h + gamma
    s_decay = a + h + gamma
    f_decay = a + gamma

    def deriv(c, s, f):
        dc = a * (1.0 - c) - c_decay * c
        ds = nu * c - s_decay * s
        df = h * (c + s) - f_decay * f
        de = fe * (c + s)
        return dc, ds, df, de

    c = np.zeros(cells)
    s = np.zeros(cells)
    f = np.zeros(cells)
    e = np.zeros(cells)
    out_c = np.empty((steps + 1, cells))
    out_s = np.empty((steps + 1, cells))
    out_f = np.empty((steps + 1, cells))
    out_e = np.empty((steps + 1, cells))
    out_c[0] = c
    out_s[0] = s
    out_f[0] = f
    out_e[0] = e
    half = 0.5 * dt
    sixth = dt / 6.0
    for step in range(1, steps + 1):
        k1c, k1s, k1f, k1e = deriv(c, s, f)
        k2c, k2s, k2f, k2e = deriv(
            c + half * k1c, s + half * k1s, f + half * k1f
        )
        k3c, k3s, k3f, k3e = deriv(
            c + half * k2c, s + half * k2s, f + half * k2f
        )
        k4c, k4s, k4f, k4e = deriv(c + dt * k3c, s + dt * k3s, f + dt * k3f)
        c = c + sixth * (k1c + 2.0 * k2c + 2.0 * k3c + k4c)
        s = s + sixth * (k1s + 2.0 * k2s + 2.0 * k3s + k4s)
        f = f + sixth * (k1f + 2.0 * k2f + 2.0 * k3f + k4f)
        e = e + sixth * (k1e + 2.0 * k2e + 2.0 * k3e + k4e)
        out_c[step] = c
        out_s[step] = s
        out_f[step] = f
        out_e[step] = e
    return [
        (
            out_c[:, i].tolist(),
            out_s[:, i].tolist(),
            out_f[:, i].tolist(),
            out_e[:, i].tolist(),
        )
        for i in range(cells)
    ]


def _integrate_python(a, h, nu, gamma, fe, steps, dt):
    """Scalar fallback: the defining per-cell RK4 loop."""
    series = []
    half = 0.5 * dt
    sixth = dt / 6.0
    for a_i, h_i, nu_i, gamma_i, fe_i in zip(a, h, nu, gamma, fe):
        c_decay = nu_i + h_i + gamma_i
        s_decay = a_i + h_i + gamma_i
        f_decay = a_i + gamma_i

        def deriv(c, s, f):
            dc = a_i * (1.0 - c) - c_decay * c
            ds = nu_i * c - s_decay * s
            df = h_i * (c + s) - f_decay * f
            de = fe_i * (c + s)
            return dc, ds, df, de

        c = s = f = e = 0.0
        cs = [c]
        ss = [s]
        fs = [f]
        es = [e]
        for _ in range(steps):
            k1c, k1s, k1f, k1e = deriv(c, s, f)
            k2c, k2s, k2f, k2e = deriv(
                c + half * k1c, s + half * k1s, f + half * k1f
            )
            k3c, k3s, k3f, k3e = deriv(
                c + half * k2c, s + half * k2s, f + half * k2f
            )
            k4c, k4s, k4f, k4e = deriv(
                c + dt * k3c, s + dt * k3s, f + dt * k3f
            )
            c = c + sixth * (k1c + 2.0 * k2c + 2.0 * k3c + k4c)
            s = s + sixth * (k1s + 2.0 * k2s + 2.0 * k3s + k4s)
            f = f + sixth * (k1f + 2.0 * k2f + 2.0 * k3f + k4f)
            e = e + sixth * (k1e + 2.0 * k2e + 2.0 * k3e + k4e)
            cs.append(c)
            ss.append(s)
            fs.append(f)
            es.append(e)
        series.append((cs, ss, fs, es))
    return series
