"""Deficit round robin (Shreedhar & Varghese).

Each class has a quantum proportional to its weight and a deficit
counter; the scheduler cycles over backlogged classes, adding the
quantum and serving heads while the deficit covers their size.  O(1)
per decision and a good practical alternative to WFQ for equal-size
announcement packets.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sched.base import Scheduler


class DrrScheduler(Scheduler):
    """Deficit round robin proportional-share scheduler."""

    def __init__(self, quantum: float = 1.0) -> None:
        super().__init__()
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._deficit: Dict[str, float] = {}
        self._round: list[str] = []
        self._cursor = 0
        #: True when the cursor just arrived at a class that has not yet
        #: received its quantum for this visit.
        self._fresh_visit = True

    def _on_class_added(self, name: str) -> None:
        self._deficit[name] = 0.0
        self._round.append(name)

    def _advance(self) -> None:
        self._cursor += 1
        self._fresh_visit = True

    def _select(self) -> Optional[str]:
        backlogged = set(self._backlogged())
        if not backlogged:
            return None
        # Walk the round-robin ring; each backlogged class receives its
        # quantum once per visit and is served while the deficit lasts.
        max_steps = max(
            len(self._round) + 1,
            int(
                max(self._queues[n][0][1] for n in backlogged)
                / (self.quantum * min(self._weights[n] for n in backlogged))
            )
            * len(self._round)
            + len(self._round)
            + 1,
        )
        for _ in range(max_steps):
            name = self._round[self._cursor % len(self._round)]
            if name not in backlogged:
                self._deficit[name] = 0.0  # idle classes keep no credit
                self._advance()
                continue
            if self._fresh_visit:
                self._deficit[name] += self.quantum * self._weights[name]
                self._fresh_visit = False
            head_size = self._queues[name][0][1]
            if self._deficit[name] >= head_size:
                return name
            self._advance()
        # Unreachable in practice; keep the system live regardless.
        name = next(iter(backlogged))
        self._deficit[name] = self._queues[name][0][1]
        return name

    def _on_dequeue(self, name: str, item: Any, size: float) -> None:
        self._deficit[name] -= size
        if not self._queues[name]:
            self._deficit[name] = 0.0
            self._advance()
