"""Common scheduler interface.

A scheduler multiplexes several named classes (queues) onto one link.
Items are enqueued into a class; ``dequeue()`` returns the next
``(class_name, item)`` pair according to the discipline, or ``None``
when everything is empty.  Weights express the proportional share each
class should receive when it is continuously backlogged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Tuple


class SchedulerError(Exception):
    """Raised for scheduler API misuse (unknown class, bad weight)."""


class Scheduler:
    """Base class holding per-class FIFO queues and weights."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[Tuple[Any, float]]] = {}
        self._weights: Dict[str, float] = {}
        self.served: Dict[str, int] = {}
        self.served_size: Dict[str, float] = {}

    # -- class management ---------------------------------------------------
    def add_class(self, name: str, weight: float = 1.0) -> None:
        """Register a traffic class with a proportional-share weight."""
        if name in self._queues:
            raise SchedulerError(f"class {name!r} already exists")
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        self._queues[name] = deque()
        self._weights[name] = float(weight)
        self.served[name] = 0
        self.served_size[name] = 0.0
        self._on_class_added(name)

    def set_weight(self, name: str, weight: float) -> None:
        """Change a class's share (e.g. the allocator re-tuning hot/cold)."""
        self._require(name)
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        self._weights[name] = float(weight)
        self._on_weight_changed(name)

    def weight(self, name: str) -> float:
        self._require(name)
        return self._weights[name]

    @property
    def classes(self) -> Iterable[str]:
        return self._queues.keys()

    # -- queue operations -----------------------------------------------------
    def enqueue(self, name: str, item: Any, size: float = 1.0) -> None:
        """Append ``item`` (with a service ``size``) to class ``name``."""
        self._require(name)
        if size <= 0:
            raise SchedulerError(f"size must be positive, got {size}")
        self._queues[name].append((item, size))
        self._on_enqueue(name, item, size)

    def dequeue(self) -> Optional[Tuple[str, Any]]:
        """Pop the next item per the discipline; None if all queues empty."""
        name = self._select()
        if name is None:
            return None
        item, size = self._queues[name].popleft()
        self.served[name] += 1
        self.served_size[name] += size
        self._on_dequeue(name, item, size)
        return name, item

    def backlog(self, name: str) -> int:
        self._require(name)
        return len(self._queues[name])

    def remove(self, name: str, item: Any) -> bool:
        """Remove a specific queued item (e.g. a record that just died)."""
        self._require(name)
        queue = self._queues[name]
        for entry in queue:
            if entry[0] is item or entry[0] == item:
                queue.remove(entry)
                return True
        return False

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __contains__(self, name: str) -> bool:
        return name in self._queues

    # -- discipline hooks ------------------------------------------------------
    def _select(self) -> Optional[str]:
        """Return the class to serve next, or None.  Must be overridden."""
        raise NotImplementedError

    def _on_class_added(self, name: str) -> None:
        """Discipline-specific per-class state initialisation."""

    def _on_weight_changed(self, name: str) -> None:
        """React to a weight update."""

    def _on_enqueue(self, name: str, item: Any, size: float) -> None:
        """React to an enqueue (e.g. stamp virtual times)."""

    def _on_dequeue(self, name: str, item: Any, size: float) -> None:
        """React to a dequeue (e.g. advance virtual time)."""

    # -- helpers -----------------------------------------------------------------
    def _require(self, name: str) -> None:
        if name not in self._queues:
            raise SchedulerError(f"unknown class {name!r}")

    def _backlogged(self) -> list[str]:
        return [name for name, queue in self._queues.items() if queue]

    def share_of(self, name: str) -> float:
        """Fraction of total service (by size) this class has received."""
        total = sum(self.served_size.values())
        if total == 0:
            return 0.0
        return self.served_size[name] / total
