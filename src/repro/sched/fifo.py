"""Single-queue FIFO scheduling: the Section 3 open-loop discipline.

The paper's baseline announce/listen model uses one FIFO transmission
queue ("the transmission channel acts as a server ... and uses FIFO
scheduling").  For uniformity this is expressed as a scheduler with one
implicit class, but it also accepts multiple classes and serves
whichever item arrived first across all of them.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.sched.base import Scheduler


class FifoScheduler(Scheduler):
    """Serves items strictly in global arrival order."""

    DEFAULT_CLASS = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._arrival = itertools.count()
        self._stamps: dict[int, int] = {}

    def enqueue(self, name: str = DEFAULT_CLASS, item: Any = None, size: float = 1.0) -> None:
        if name not in self._queues:
            self.add_class(name)
        super().enqueue(name, (next(self._arrival), item), size)

    def dequeue(self) -> Optional[tuple[str, Any]]:
        result = super().dequeue()
        if result is None:
            return None
        name, (_, item) = result
        return name, item

    def _select(self) -> Optional[str]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        # Head with the smallest arrival stamp wins.
        return min(backlogged, key=lambda n: self._queues[n][0][0][0])

    def remove(self, name: str, item: Any) -> bool:
        self._require(name)
        queue = self._queues[name]
        for entry in queue:
            (_, queued_item), _ = entry
            if queued_item is item or queued_item == item:
                queue.remove(entry)
                return True
        return False
