"""Stride scheduling (Waldspurger & Weihl, MIT/LCS/TM-528).

The deterministic counterpart of lottery scheduling: each class has a
``stride`` inversely proportional to its tickets and a ``pass`` value;
the backlogged class with the smallest pass is served and its pass
advances by stride x size.  A class that becomes backlogged re-enters at
the current global pass so it cannot hoard credit while idle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sched.base import Scheduler

#: Numerator used to derive strides from weights (large to limit
#: rounding skew, as in the original paper's stride1 constant).
STRIDE1 = 1 << 20


class StrideScheduler(Scheduler):
    """Deterministic proportional-share scheduler."""

    def __init__(self) -> None:
        super().__init__()
        self._pass: Dict[str, float] = {}
        self._global_pass = 0.0

    def _stride(self, name: str) -> float:
        return STRIDE1 / self._weights[name]

    def _on_class_added(self, name: str) -> None:
        self._pass[name] = self._global_pass

    def _on_enqueue(self, name: str, item: Any, size: float) -> None:
        # A queue waking from idle joins at the current global pass;
        # without this it would have accumulated unbounded credit.
        if len(self._queues[name]) == 1:
            self._pass[name] = max(self._pass[name], self._global_pass)

    def _select(self) -> Optional[str]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        return min(backlogged, key=lambda n: (self._pass[n], n))

    def _on_dequeue(self, name: str, item: Any, size: float) -> None:
        self._pass[name] += self._stride(name) * size
        self._global_pass = min(
            (self._pass[n] for n in self._backlogged()),
            default=self._pass[name],
        )
