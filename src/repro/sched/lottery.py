"""Lottery scheduling (Waldspurger & Weihl, OSDI '95).

Each class holds tickets proportional to its weight; every service slot
a winning ticket is drawn uniformly among *backlogged* classes, so an
idle class's tickets are redistributed automatically ("unused excess hot
bandwidth is consumed by transmissions from the cold queue", Section 4).
Probabilistically fair with no per-class virtual-time state.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.des.rng import RngStreams
from repro.sched.base import Scheduler

#: Default-rng substream family (same scheme as repro.net.loss): every
#: scheduler built without an explicit rng gets its own numbered
#: substream, so two side-by-side lotteries never replay one sequence.
_DEFAULT_STREAMS = RngStreams(seed=0x5C_4ED)
_DEFAULT_COUNTER = itertools.count()


class LotteryScheduler(Scheduler):
    """Randomized proportional-share scheduler."""

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__()
        if rng is None:
            rng = _DEFAULT_STREAMS[f"lottery-{next(_DEFAULT_COUNTER)}"]
        self._rng = rng

    def _select(self) -> Optional[str]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        if len(backlogged) == 1:
            return backlogged[0]
        total = sum(self._weights[name] for name in backlogged)
        winner = self._rng.random() * total
        acc = 0.0
        for name in backlogged:
            acc += self._weights[name]
            if winner < acc:
                return name
        return backlogged[-1]
