"""Lottery scheduling (Waldspurger & Weihl, OSDI '95).

Each class holds tickets proportional to its weight; every service slot
a winning ticket is drawn uniformly among *backlogged* classes, so an
idle class's tickets are redistributed automatically ("unused excess hot
bandwidth is consumed by transmissions from the cold queue", Section 4).
Probabilistically fair with no per-class virtual-time state.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sched.base import Scheduler


class LotteryScheduler(Scheduler):
    """Randomized proportional-share scheduler."""

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__()
        self._rng = rng if rng is not None else random.Random(0)

    def _select(self) -> Optional[str]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        if len(backlogged) == 1:
            return backlogged[0]
        total = sum(self._weights[name] for name in backlogged)
        winner = self._rng.random() * total
        acc = 0.0
        for name in backlogged:
            acc += self._weights[name]
            if winner < acc:
                return name
        return backlogged[-1]
