"""Proportional-share link schedulers.

Section 4 of the paper shares the sender's data bandwidth between a
"hot" (new data) and a "cold" (background retransmission) queue, and
names lottery scheduling, weighted fair queueing, and stride scheduling
as suitable mechanisms; Section 6 (Figure 12) uses a hierarchical
link-sharing scheduler (CBQ / H-FSC style) for application data classes.
This package implements all of them behind one interface
(:class:`~repro.sched.base.Scheduler`): items are enqueued into named
classes with weights, and ``dequeue()`` picks the next item to serve.
"""

from repro.sched.base import Scheduler, SchedulerError
from repro.sched.fifo import FifoScheduler
from repro.sched.lottery import LotteryScheduler
from repro.sched.stride import StrideScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.drr import DrrScheduler
from repro.sched.hierarchical import HierarchicalScheduler

__all__ = [
    "DrrScheduler",
    "FifoScheduler",
    "HierarchicalScheduler",
    "LotteryScheduler",
    "Scheduler",
    "SchedulerError",
    "StrideScheduler",
    "WfqScheduler",
]
