"""Hierarchical link-sharing scheduler (CBQ / H-FSC style).

Figure 12 of the paper shows SSTP's allocation hierarchy: the session
bandwidth is split between data and feedback, data between hot and cold
queues, and (optionally) application data classes below those.  This
scheduler models that tree: each node has a weight relative to its
siblings, leaves hold FIFO item queues, and selection descends from the
root choosing among children with backlogged descendants by stride
scheduling (deterministic proportional share at every level).

Class names are slash-separated paths, e.g. ``"data/hot"``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.sched.base import SchedulerError
from repro.sched.stride import STRIDE1


class _Node:
    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.children: Dict[str, "_Node"] = {}
        self.queue: Deque[Tuple[Any, float]] = deque()
        self.pass_value = 0.0
        self.served = 0
        self.served_size = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def backlogged(self) -> bool:
        if self.queue:
            return True
        return any(child.backlogged() for child in self.children.values())

    def stride(self) -> float:
        return STRIDE1 / self.weight


class HierarchicalScheduler:
    """Weighted link-sharing over a class tree."""

    def __init__(self) -> None:
        self._root = _Node("", 1.0)
        self._leaves: Dict[str, _Node] = {}

    # -- tree construction ----------------------------------------------------
    def add_class(self, path: str, weight: float = 1.0) -> None:
        """Create a class at ``path`` ("data/hot"); parents must exist.

        Top-level classes hang off the implicit root.
        """
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        parts = self._split(path)
        node = self._root
        for part in parts[:-1]:
            if part not in node.children:
                raise SchedulerError(
                    f"parent class {part!r} of {path!r} does not exist"
                )
            node = node.children[part]
        leaf_name = parts[-1]
        if leaf_name in node.children:
            raise SchedulerError(f"class {path!r} already exists")
        if node is not self._root and node.queue:
            raise SchedulerError(
                f"cannot add child under {node.name!r}: it already holds items"
            )
        child = _Node(leaf_name, float(weight))
        child.pass_value = self._min_pass(node)
        node.children[leaf_name] = child
        # The parent is no longer a leaf.
        self._leaves.pop(self._parent_path(path), None)
        self._leaves[path] = child

    def set_weight(self, path: str, weight: float) -> None:
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        self._find(path).weight = float(weight)

    def weight(self, path: str) -> float:
        return self._find(path).weight

    # -- queue operations -------------------------------------------------------
    def enqueue(self, path: str, item: Any, size: float = 1.0) -> None:
        node = self._find(path)
        if not node.is_leaf:
            raise SchedulerError(f"{path!r} is an interior class; enqueue at a leaf")
        if size <= 0:
            raise SchedulerError(f"size must be positive, got {size}")
        # A node waking from idle must not spend pass-value credit it
        # accumulated while it had nothing to send: clamp each ancestor
        # that was idle to the minimum pass among its backlogged siblings.
        parent = self._root
        for part in self._split(path):
            child = parent.children[part]
            if not child.backlogged():
                sibling_passes = [
                    sibling.pass_value
                    for sibling in parent.children.values()
                    if sibling is not child and sibling.backlogged()
                ]
                if sibling_passes:
                    child.pass_value = max(
                        child.pass_value, min(sibling_passes)
                    )
            parent = child
        node.queue.append((item, size))

    def dequeue(self) -> Optional[Tuple[str, Any]]:
        """Serve the next item, descending the tree by stride at each level."""
        if not self._root.backlogged():
            return None
        node = self._root
        path_parts: list[str] = []
        while not node.is_leaf:
            candidates = [
                child
                for child in node.children.values()
                if child.backlogged()
            ]
            chosen = min(candidates, key=lambda c: (c.pass_value, c.name))
            path_parts.append(chosen.name)
            node = chosen
        item, size = node.queue.popleft()
        # Charge the whole ancestor chain of the served leaf.
        charged = self._root
        for part in path_parts:
            charged = charged.children[part]
            charged.pass_value += charged.stride() * size
            charged.served += 1
            charged.served_size += size
        return "/".join(path_parts), item

    def backlog(self, path: str) -> int:
        node = self._find(path)
        if node.is_leaf:
            return len(node.queue)
        return sum(
            self.backlog(f"{path}/{name}") for name in node.children
        )

    def served_size(self, path: str) -> float:
        return self._find(path).served_size

    def share_of(self, path: str) -> float:
        """Fraction of sibling service this class has received."""
        parts = self._split(path)
        parent = self._root
        for part in parts[:-1]:
            parent = parent.children[part]
        total = sum(c.served_size for c in parent.children.values())
        if total == 0:
            return 0.0
        return parent.children[parts[-1]].served_size / total

    def __len__(self) -> int:
        def count(node: _Node) -> int:
            return len(node.queue) + sum(
                count(child) for child in node.children.values()
            )

        return count(self._root)

    def describe(self) -> str:
        """Human-readable tree with weights and service counts."""
        lines: list[str] = []

        def walk(node: _Node, depth: int) -> None:
            for child in node.children.values():
                lines.append(
                    "  " * depth
                    + f"{child.name} (weight={child.weight:g}, "
                    f"served={child.served}, backlog={len(child.queue)})"
                )
                walk(child, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> list[str]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise SchedulerError(f"invalid class path {path!r}")
        return parts

    @staticmethod
    def _parent_path(path: str) -> str:
        return "/".join(HierarchicalScheduler._split(path)[:-1])

    def _find(self, path: str) -> _Node:
        node = self._root
        for part in self._split(path):
            if part not in node.children:
                raise SchedulerError(f"unknown class {path!r}")
            node = node.children[part]
        return node

    @staticmethod
    def _min_pass(parent: _Node) -> float:
        values = [child.pass_value for child in parent.children.values()]
        return min(values) if values else 0.0
