"""Weighted fair queueing (Demers, Keshav & Shenker, SIGCOMM '89).

Packet-level WFQ approximated by virtual finish times: each enqueued
item is stamped ``F = max(V, F_last(class)) + size / weight`` where V is
the scheduler's virtual time (advanced to the finish tag of each served
item).  The backlogged head with the smallest finish tag is served.
This is the classic SFQ/WFQ approximation adequate for proportional
bandwidth sharing between the hot and cold announcement queues.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sched.base import Scheduler


class WfqScheduler(Scheduler):
    """Virtual-finish-time weighted fair queueing."""

    def __init__(self) -> None:
        super().__init__()
        self._virtual_time = 0.0
        self._last_finish: Dict[str, float] = {}

    def _on_class_added(self, name: str) -> None:
        self._last_finish[name] = 0.0

    def enqueue(self, name: str, item: Any, size: float = 1.0) -> None:
        self._require(name)
        start = max(self._virtual_time, self._last_finish[name])
        finish = start + size / self._weights[name]
        self._last_finish[name] = finish
        super().enqueue(name, (finish, item), size)

    def dequeue(self) -> Optional[tuple[str, Any]]:
        result = super().dequeue()
        if result is None:
            return None
        name, (finish, item) = result
        self._virtual_time = max(self._virtual_time, finish)
        return name, item

    def _select(self) -> Optional[str]:
        backlogged = self._backlogged()
        if not backlogged:
            return None
        # Compare the finish tag of each class's head-of-line item.
        return min(backlogged, key=lambda n: (self._queues[n][0][0][0], n))

    def remove(self, name: str, item: Any) -> bool:
        self._require(name)
        queue = self._queues[name]
        for entry in queue:
            (_, queued_item), _ = entry
            if queued_item is item or queued_item == item:
                queue.remove(entry)
                return True
        return False
