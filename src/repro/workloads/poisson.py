"""The paper's baseline workload: Poisson arrivals with random lifetimes.

Records enter the publisher's table at rate ``arrival_rate`` (new keys)
and live for an exponential (by default) lifetime, after which both the
publisher and all receivers eliminate them — the "death process" of
Section 3.  An optional ``update_fraction`` turns some events into value
updates of a random live key, exercising the update path (an updated key
becomes inconsistent again until redelivered).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Any, Callable, List

from repro.des import Environment, Interrupt
from repro.workloads.base import PublisherActions, Workload


class PoissonUpdateWorkload(Workload):
    """Poisson insert/update process with exponential lifetimes.

    Parameters
    ----------
    arrival_rate:
        Events per second (the paper's lambda, in packets/s units).
    lifetime_mean:
        Mean record lifetime in seconds; ``math.inf`` for immortal
        records.  The Section 3 death probability per transmission is
        approximately ``1 / (lifetime_mean * per-record service rate)``.
    update_fraction:
        Probability that an event updates an existing live key instead
        of inserting a new one (0 = pure insert, the paper's base case).
    value_factory:
        Builds the record value given (key, version); defaults to a
        short descriptive string.
    """

    def __init__(
        self,
        arrival_rate: float,
        lifetime_mean: float = math.inf,
        update_fraction: float = 0.0,
        fixed_lifetime: bool = False,
        value_factory: Callable[[Any, int], Any] | None = None,
        key_prefix: str = "rec",
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {arrival_rate}"
            )
        if lifetime_mean <= 0:
            raise ValueError(
                f"lifetime_mean must be positive, got {lifetime_mean}"
            )
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must be in [0, 1], got {update_fraction}"
            )
        self.arrival_rate = arrival_rate
        self.lifetime_mean = lifetime_mean
        self.update_fraction = update_fraction
        self.fixed_lifetime = fixed_lifetime
        self.value_factory = value_factory or (
            lambda key, version: f"{key}/v{version}"
        )
        self.key_prefix = key_prefix
        self._counter = itertools.count()
        self._live_keys: List[Any] = []
        self._versions: dict[Any, int] = {}

    def _draw_lifetime(self, rng: random.Random) -> float:
        if self.lifetime_mean == math.inf:
            return math.inf
        if self.fixed_lifetime:
            return self.lifetime_mean
        return rng.expovariate(1.0 / self.lifetime_mean)

    def note_death(self, key: Any) -> None:
        """Protocols call this when a record dies so updates skip it."""
        if key in self._versions:
            del self._versions[key]
            try:
                self._live_keys.remove(key)
            except ValueError:
                pass

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        try:
            yield from self._generate(env, actions, rng)
        except Interrupt:
            return  # publisher crash / shutdown: stop producing updates

    def _generate(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        while True:
            yield env.timeout(rng.expovariate(self.arrival_rate))
            do_update = (
                self._live_keys
                and self.update_fraction > 0
                and rng.random() < self.update_fraction
            )
            if do_update:
                key = rng.choice(self._live_keys)
                self._versions[key] += 1
                actions.update(
                    key, self.value_factory(key, self._versions[key])
                )
            else:
                key = f"{self.key_prefix}-{next(self._counter)}"
                self._versions[key] = 0
                self._live_keys.append(key)
                actions.insert(
                    key,
                    self.value_factory(key, 0),
                    lifetime=self._draw_lifetime(rng),
                )

    def describe(self) -> str:
        return (
            f"Poisson(rate={self.arrival_rate}/s, "
            f"lifetime~{self.lifetime_mean}s, "
            f"updates={self.update_fraction:.0%})"
        )
