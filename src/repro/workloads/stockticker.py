"""A stock-quote dissemination workload (PointCast-style push).

The paper cites "stock quote or general information dissemination
services" as natural soft-state publishers.  This workload keeps a
fixed universe of symbols whose quotes update continuously; update
frequency across symbols follows a Zipf distribution (a few hot symbols
trade constantly, a long tail rarely).  Quotes never die — only the
latest value matters — so consistency measures staleness of receivers'
quote tables.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.des import Environment
from repro.workloads.base import PublisherActions, Workload


class StockTickerWorkload(Workload):
    """Zipf-popular quote updates over a fixed symbol table."""

    def __init__(
        self,
        n_symbols: int = 100,
        total_update_rate: float = 20.0,
        zipf_exponent: float = 1.0,
        initial_price: float = 100.0,
    ) -> None:
        if n_symbols <= 0:
            raise ValueError(f"n_symbols must be positive, got {n_symbols}")
        if total_update_rate <= 0:
            raise ValueError(
                f"total_update_rate must be positive, got {total_update_rate}"
            )
        if zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be non-negative, got {zipf_exponent}"
            )
        self.n_symbols = n_symbols
        self.total_update_rate = total_update_rate
        self.zipf_exponent = zipf_exponent
        self.initial_price = initial_price
        weights = [
            1.0 / (rank**zipf_exponent) for rank in range(1, n_symbols + 1)
        ]
        total = sum(weights)
        self._probabilities: List[float] = [w / total for w in weights]
        self._cumulative: List[float] = []
        acc = 0.0
        for p in self._probabilities:
            acc += p
            self._cumulative.append(acc)
        self._prices: List[float] = []

    def symbol(self, index: int) -> str:
        return f"SYM{index:04d}"

    def update_rate_of(self, index: int) -> float:
        """Per-symbol update rate implied by the Zipf weights."""
        return self.total_update_rate * self._probabilities[index]

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        self._prices = [self.initial_price] * self.n_symbols
        for index in range(self.n_symbols):
            actions.insert(
                self.symbol(index),
                self._quote(index),
                lifetime=math.inf,
            )
        while True:
            yield env.timeout(rng.expovariate(self.total_update_rate))
            index = self._draw_symbol(rng)
            # Geometric-ish random walk in price.
            self._prices[index] *= math.exp(rng.gauss(0.0, 0.005))
            actions.update(self.symbol(index), self._quote(index))

    def _draw_symbol(self, rng: random.Random) -> int:
        target = rng.random()
        low, high = 0, self.n_symbols - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    def _quote(self, index: int) -> dict[str, float]:
        return {"price": round(self._prices[index], 2)}

    def describe(self) -> str:
        return (
            f"StockTicker({self.n_symbols} symbols, "
            f"{self.total_update_rate:g} updates/s, "
            f"zipf={self.zipf_exponent:g})"
        )
