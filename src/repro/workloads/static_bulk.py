"""A static bulk workload: publish everything at t=0, then go quiet.

The paper's eventual-consistency argument is about exactly this input:
"For a static input at the source, announce/listen provides a simple
form of reliability since eventually the receiver's state will match
the sender's once all the records have been successfully transmitted."
This workload creates that scenario — N immortal records at time zero —
so experiments can measure *convergence time*: how long each protocol
takes to deliver a given fraction of the store.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Optional

from repro.des import Environment
from repro.workloads.base import PublisherActions, Workload


class StaticBulkWorkload(Workload):
    """N records inserted at t=0; no churn afterwards."""

    def __init__(
        self,
        n_records: int,
        value_factory: Optional[Callable[[int], Any]] = None,
        key_prefix: str = "bulk",
    ) -> None:
        if n_records <= 0:
            raise ValueError(f"n_records must be positive, got {n_records}")
        self.n_records = n_records
        self.value_factory = value_factory or (lambda index: f"value-{index}")
        self.key_prefix = key_prefix

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        for index in range(self.n_records):
            actions.insert(
                f"{self.key_prefix}-{index}",
                self.value_factory(index),
                lifetime=math.inf,
            )
        # Stay alive but idle (a terminated workload is also fine; this
        # keeps symmetry with the other workloads).
        while True:
            yield env.timeout(1e9)

    def describe(self) -> str:
        return f"StaticBulk({self.n_records} records at t=0)"
