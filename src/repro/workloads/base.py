"""Workload interface.

A workload is a simulation process that mutates a publisher's table
through the narrow :class:`PublisherActions` protocol, so the same
workload runs unchanged against every protocol variant (open-loop,
two-queue, feedback, SSTP) and against the ARQ baseline.
"""

from __future__ import annotations

import math
import random
from typing import Any, Protocol

from repro.des import Environment


class PublisherActions(Protocol):
    """What a workload may do to a publisher."""

    def insert(self, key: Any, value: Any, lifetime: float = math.inf) -> None:
        """Introduce a new record."""

    def update(self, key: Any, value: Any) -> None:
        """Change the value of an existing live record."""

    def delete(self, key: Any) -> None:
        """Withdraw a record before its lifetime ends."""


class Workload:
    """Base class for update processes."""

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        """Generator to be wrapped in ``env.process``.

        Implementations yield simulation events (usually timeouts)
        between mutations.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary."""
        return type(self).__name__
