"""Update-process workloads for soft-state publishers.

The paper's model (Section 2) drives the publisher's table with an
update process: records arrive, are updated, and die.  Its motivation
section names concrete instances — MBone session directories (sdr/SAP),
route advertisements, DNS updates, and stock-quote dissemination — and
this package provides a generator for each, plus the plain Poisson
process used by the analysis and the figures.

Every workload implements :class:`~repro.workloads.base.Workload`: a
generator-driven process that calls ``actions`` on a publisher
(insert/update/delete with lifetimes) according to its own clock.
"""

from repro.workloads.base import PublisherActions, Workload
from repro.workloads.poisson import PoissonUpdateWorkload
from repro.workloads.static_bulk import StaticBulkWorkload
from repro.workloads.session_directory import SessionDirectoryWorkload
from repro.workloads.routing import RoutingUpdateWorkload
from repro.workloads.stockticker import StockTickerWorkload

__all__ = [
    "PoissonUpdateWorkload",
    "PublisherActions",
    "RoutingUpdateWorkload",
    "SessionDirectoryWorkload",
    "StaticBulkWorkload",
    "StockTickerWorkload",
    "Workload",
]
