"""An MBone session-directory workload (sdr/SAP).

The paper repeatedly motivates soft state with the multicast session
directory: conference announcements are long-lived records that expire
"when the associated conference session ends", and new sessions appear
throughout the day.  This workload models that: sessions arrive at a
modest Poisson rate, live for a long (exponential) duration, and
occasionally have their metadata edited (title or media description
changes), which invalidates receivers' copies until redelivered.
"""

from __future__ import annotations

import itertools
import random
from typing import Any

from repro.des import Environment
from repro.workloads.base import PublisherActions, Workload


class SessionDirectoryWorkload(Workload):
    """Long-lived conference announcements with occasional edits."""

    def __init__(
        self,
        session_rate: float = 1.0 / 120.0,
        session_duration_mean: float = 3600.0,
        edit_interval_mean: float = 900.0,
        media: tuple[str, ...] = ("audio", "video", "whiteboard"),
    ) -> None:
        if session_rate <= 0:
            raise ValueError(f"session_rate must be positive, got {session_rate}")
        if session_duration_mean <= 0:
            raise ValueError(
                "session_duration_mean must be positive, got "
                f"{session_duration_mean}"
            )
        if edit_interval_mean <= 0:
            raise ValueError(
                f"edit_interval_mean must be positive, got {edit_interval_mean}"
            )
        self.session_rate = session_rate
        self.session_duration_mean = session_duration_mean
        self.edit_interval_mean = edit_interval_mean
        self.media = media
        self._counter = itertools.count()

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        while True:
            yield env.timeout(rng.expovariate(self.session_rate))
            session_id = f"session-{next(self._counter)}"
            duration = rng.expovariate(1.0 / self.session_duration_mean)
            announcement = self._announcement(session_id, 0, rng)
            actions.insert(session_id, announcement, lifetime=duration)
            env.process(self._editor(env, actions, rng, session_id, duration))

    def _editor(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
        session_id: str,
        duration: float,
    ):
        """Occasionally edits a session's metadata while it is live."""
        deadline = env.now + duration
        edition = 0
        while True:
            wait = rng.expovariate(1.0 / self.edit_interval_mean)
            if env.now + wait >= deadline:
                return
            yield env.timeout(wait)
            edition += 1
            actions.update(
                session_id, self._announcement(session_id, edition, rng)
            )

    def _announcement(
        self, session_id: str, edition: int, rng: random.Random
    ) -> dict[str, Any]:
        return {
            "name": f"{session_id} (rev {edition})",
            "media": rng.sample(self.media, k=rng.randint(1, len(self.media))),
            "bandwidth_kbps": rng.choice([16, 64, 128, 256]),
        }

    def describe(self) -> str:
        return (
            f"SessionDirectory(arrivals={self.session_rate:.4f}/s, "
            f"duration~{self.session_duration_mean:.0f}s)"
        )
