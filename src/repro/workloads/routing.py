"""A routing-advertisement workload (RIP/BGP-style updates).

The paper lists "route advertisements" among the inherently soft,
periodically changing data that motivates SSTP.  This workload keeps a
fixed table of routes (immortal keys) whose next-hop/metric values
change when links flap; each flap makes every receiver's copy of that
route stale until the new value is delivered.  Flaps arrive per-route as
a Poisson process, with a configurable fraction of "flappy" routes that
change far more often (route-flap pathology).
"""

from __future__ import annotations

import math
import random
from typing import Any

from repro.des import Environment
from repro.workloads.base import PublisherActions, Workload


class RoutingUpdateWorkload(Workload):
    """A fixed route table with Poisson value flaps."""

    def __init__(
        self,
        n_routes: int = 50,
        flap_interval_mean: float = 60.0,
        flappy_fraction: float = 0.1,
        flappy_speedup: float = 20.0,
        max_metric: int = 16,
    ) -> None:
        if n_routes <= 0:
            raise ValueError(f"n_routes must be positive, got {n_routes}")
        if flap_interval_mean <= 0:
            raise ValueError(
                f"flap_interval_mean must be positive, got {flap_interval_mean}"
            )
        if not 0.0 <= flappy_fraction <= 1.0:
            raise ValueError(
                f"flappy_fraction must be in [0, 1], got {flappy_fraction}"
            )
        if flappy_speedup < 1.0:
            raise ValueError(
                f"flappy_speedup must be >= 1, got {flappy_speedup}"
            )
        self.n_routes = n_routes
        self.flap_interval_mean = flap_interval_mean
        self.flappy_fraction = flappy_fraction
        self.flappy_speedup = flappy_speedup
        self.max_metric = max_metric

    def run(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
    ):
        # Install the initial table, then flap each route independently.
        for index in range(self.n_routes):
            key = self._prefix(index)
            actions.insert(key, self._route(rng), lifetime=math.inf)
            flappy = rng.random() < self.flappy_fraction
            env.process(self._flapper(env, actions, rng, key, flappy))
        # The installer itself then idles forever (keeps a live process).
        while True:
            yield env.timeout(1e9)

    def _flapper(
        self,
        env: Environment,
        actions: PublisherActions,
        rng: random.Random,
        key: str,
        flappy: bool,
    ):
        mean = self.flap_interval_mean
        if flappy:
            mean /= self.flappy_speedup
        while True:
            yield env.timeout(rng.expovariate(1.0 / mean))
            actions.update(key, self._route(rng))

    def _prefix(self, index: int) -> str:
        return f"10.{index // 256}.{index % 256}.0/24"

    def _route(self, rng: random.Random) -> dict[str, Any]:
        return {
            "next_hop": f"192.168.0.{rng.randint(1, 254)}",
            "metric": rng.randint(1, self.max_metric),
        }

    def describe(self) -> str:
        return (
            f"Routing({self.n_routes} routes, "
            f"flap~{self.flap_interval_mean:.0f}s, "
            f"{self.flappy_fraction:.0%} flappy x{self.flappy_speedup:g})"
        )
