"""A hard-state ARQ baseline (positive ACKs + retransmission timer).

The contrast class for the soft-state protocols: every (key, version)
is transmitted once, the receiver returns a per-packet ACK on a reverse
channel, and the sender retransmits on an RTO until acknowledged or the
record dies.  After acknowledgment the sender transmits *nothing more*
for that version — no periodic refresh — so a receiver crash (cleared
table) silently desynchronizes the endpoints until the next update,
which is exactly the robustness trade the paper describes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.net import BernoulliLoss, Channel, LossModel, Packet
from repro.protocols.base import BaseSession, ProtocolResult


@dataclass
class ArqResult(ProtocolResult):
    """ARQ adds acknowledgment accounting to the common result."""

    acks_sent: int = 0
    acks_delivered: int = 0
    retransmissions: int = 0


class ArqSession(BaseSession):
    """Stop-and-repeat reliable delivery of table updates."""

    def __init__(
        self,
        ack_kbps: float = 8.0,
        rto: float = 1.0,
        ack_loss_rate: Optional[float] = None,
        ack_loss_model: Optional[LossModel] = None,
        ack_size_bits: int = 100,
        **kwargs,
    ) -> None:
        if ack_kbps <= 0:
            raise ValueError(f"ack_kbps must be positive, got {ack_kbps}")
        if rto <= 0:
            raise ValueError(f"rto must be positive, got {rto}")
        if ack_size_bits <= 0:
            raise ValueError(
                f"ack_size_bits must be positive, got {ack_size_bits}"
            )
        super().__init__(**kwargs)
        self.rto = rto
        # ACKs, like NACKs, are tiny compared to data announcements.
        self.ack_size_bits = ack_size_bits
        loss = ack_loss_model
        if loss is None:
            rate = (
                ack_loss_rate
                if ack_loss_rate is not None
                else self.data_channel.loss.mean_loss_rate
            )
            loss = BernoulliLoss(rate, rng=self.rng["ack-loss"])
        self.ack_channel = Channel(self.env, ack_kbps, loss=loss)
        self.ack_channel.subscribe(self._handle_ack)
        self.receiver.on_deliver = self._receiver_acks
        self._sendq: deque[Tuple[Any, int]] = deque()
        self._queued: set[Tuple[Any, int]] = set()
        self._acked: set[Tuple[Any, int]] = set()
        self._in_flight: Dict[Tuple[Any, int], int] = {}
        self.acks_sent = 0
        self.acks_delivered = 0
        self.retransmissions = 0

    # -- receiver side: one ACK per delivered data packet -------------------------
    def _receiver_acks(self, packet: Packet) -> None:
        payload = packet.payload
        ack = Packet(
            kind="ack",
            payload={"key": payload["key"], "version": payload["version"]},
            size_bits=self.ack_size_bits,
        )
        self.acks_sent += 1
        self.ledger.add("feedback", ack.size_bits)
        self.ack_channel.send(ack)

    # -- sender side ----------------------------------------------------------------
    def _handle_ack(self, packet: Packet) -> None:
        self.acks_delivered += 1
        identity = (packet.payload["key"], packet.payload["version"])
        self._acked.add(identity)
        self._in_flight.pop(identity, None)

    def _enqueue_new(self, key: Any) -> None:
        record = self.publisher.get(key)
        identity = (key, record.version)
        if identity in self._queued or identity in self._acked:
            return
        self._queued.add(identity)
        self._sendq.append(identity)

    def _dequeue_next(self) -> Optional[Any]:
        now = self.env.now
        while self._sendq:
            identity = self._sendq.popleft()
            self._queued.discard(identity)
            key, version = identity
            if identity in self._acked:
                continue
            record = self.publisher.get(key)
            if (
                record is None
                or not record.is_publisher_live(now)
                or record.version != version
            ):
                continue
            return key
        return None

    def _after_service(self, key: Any, lost: bool) -> None:
        record = self.publisher.get(key)
        if record is None:
            return
        identity = (key, record.version)
        attempt = self._in_flight.get(identity, 0) + 1
        self._in_flight[identity] = attempt
        if attempt > 1:
            self.retransmissions += 1
        self.env.process(self._retransmit_timer(identity, attempt))

    def _retransmit_timer(self, identity: Tuple[Any, int], attempt: int):
        # Exponential backoff, as any sane ARQ would do.
        yield self.env.timeout(self.rto * (2 ** (attempt - 1)))
        if identity in self._acked:
            return
        if self._in_flight.get(identity) != attempt:
            return  # a newer attempt owns the timer
        key, version = identity
        record = self.publisher.get(key)
        if (
            record is None
            or not record.is_publisher_live(self.env.now)
            or record.version != version
        ):
            return
        if identity not in self._queued:
            self._queued.add(identity)
            self._sendq.append(identity)
            self._wake_sender()

    def _drop_from_queues(self, key: Any) -> None:
        for identity in [i for i in self._queued if i[0] == key]:
            self._queued.discard(identity)
            try:
                self._sendq.remove(identity)
            except ValueError:
                pass

    def _clear_queues(self) -> None:
        self._sendq.clear()
        self._queued.clear()
        self._acked.clear()
        self._in_flight.clear()

    # Warm restart keeps hard-state semantics: an acknowledged record is
    # *done* and is never re-sent (the base `_requeue_missing` defers to
    # `_enqueue_new`, which skips acked identities), and unacked records
    # stay gated on their exponential-backoff timers.  This is precisely
    # the recovery path the paper contrasts with soft-state refresh.

    def _fault_channels(self):
        channels = super()._fault_channels()
        channels.append(self.ack_channel)
        return channels

    def feedback_packets_count(self) -> int:
        return self.ack_channel.packets_sent

    def crash_receiver(self) -> None:
        """Clear the receiver's table (the failure the paper motivates)."""
        self.receiver.table.clear()
        self._observe(self.env.now)

    def _result(self, duration: float) -> ArqResult:
        base = super()._result(duration)
        return ArqResult(
            **{
                field: getattr(base, field)
                for field in base.__dataclass_fields__
            },
            acks_sent=self.acks_sent,
            acks_delivered=self.acks_delivered,
            retransmissions=self.retransmissions,
        )
