"""The open-loop announce/listen protocol (Section 3, protocol level).

One FIFO announcement ring: a new record joins the tail, and after every
transmission a still-live record rejoins the tail, so the sender cycles
through its whole live table indefinitely — the "simple open-loop
repetitive announcement process".  There is no feedback of any kind;
reliability comes purely from repetition.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

from repro.protocols.base import BaseSession


class OpenLoopSession(BaseSession):
    """Single-queue announce/listen over a lossy channel.

    Dying records are removed from the ring *lazily*: ``deque.remove``
    is O(ring length) and record deaths arrive at the update rate, so
    eager removal made high-churn sessions quadratic.  A drop instead
    leaves the stale slot in place and counts a tombstone for the key;
    ``_dequeue_next`` consumes tombstones against the *earliest* ring
    occurrences — exactly the slots an eager remove would have excised,
    since a drop always targets the oldest un-dropped occurrence — so
    service order is identical to eager removal (pinned by
    ``tests/protocols/test_announce_tombstone.py``).
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._ring: deque[Any] = deque()
        self._queued: set[Any] = set()
        #: key -> number of dropped (stale) occurrences still in _ring.
        self._tombstones: Dict[Any, int] = {}

    def _enqueue_new(self, key: Any) -> None:
        # An updated record keeps its single slot in the ring; the next
        # pass announces the new value anyway.
        if key in self._queued:
            return
        self._queued.add(key)
        self._ring.append(key)

    def _dequeue_next(self) -> Optional[Any]:
        while self._ring:
            key = self._ring.popleft()
            if self._tombstones:
                stale = self._tombstones.get(key, 0)
                if stale:
                    if stale == 1:
                        del self._tombstones[key]
                    else:
                        self._tombstones[key] = stale - 1
                    continue
            self._queued.discard(key)
            record = self.publisher.get(key)
            if record is not None and record.is_publisher_live(self.env.now):
                return key
        return None

    def _after_service(self, key: Any, lost: bool) -> None:
        record = self.publisher.get(key)
        if record is not None and record.is_publisher_live(self.env.now):
            self._enqueue_new(key)

    def _drop_from_queues(self, key: Any) -> None:
        if key in self._queued:
            self._queued.discard(key)
            self._tombstones[key] = self._tombstones.get(key, 0) + 1

    def _clear_queues(self) -> None:
        self._ring.clear()
        self._queued.clear()
        self._tombstones.clear()

    def _announce_interval_hint(self) -> Optional[float]:
        # With L live records sharing mu packets/s, each record is
        # announced about every L/mu seconds; use the steady-state
        # estimate lam * lifetime for L when available.
        return None
