"""Receiver feedback via NACKs (Section 5).

Extends the two-queue scheme with a reverse channel: the receiver
detects losses through gaps in the sender's packet sequence numbers and
sends negative acknowledgments naming the missing sequence numbers.
The sender resolves each NACKed sequence number to its record and moves
that record from the cold queue to the *tail of the hot queue*
(Figure 7's C -> H edge), so hot bandwidth serves new data plus
requested retransmissions, while cold bandwidth continues the background
announcement cycle for late joiners.

Retransmissions carry a ``repairs`` tag listing the sequence numbers
they answer, letting the receiver clear its missing-sequence set.  NACKs
traverse a lossy feedback channel of bandwidth ``feedback_kbps``; when
that allocation is too small the NACK queue backs up and feedback
arrives too late to matter, and when it is too large the *data*
bandwidth starves — both ends of the Figure 8 curve.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net import BernoulliLoss, Channel, LossModel, Packet
from repro.obs.trace import RECORD as _RECORD
from repro.protocols.states import RecordState
from repro.protocols.two_queue import COLD, HOT, TwoQueueSession


class FeedbackSession(TwoQueueSession):
    """Two-queue announce/listen plus NACK feedback."""

    def __init__(
        self,
        feedback_kbps: float = 0.0,
        feedback_loss_rate: Optional[float] = None,
        feedback_loss_model: Optional[LossModel] = None,
        seqs_per_nack: int = 16,
        nack_retry: float = 1.0,
        nack_size_bits: int = 100,
        **kwargs,
    ) -> None:
        if feedback_kbps < 0:
            raise ValueError(
                f"feedback_kbps must be non-negative, got {feedback_kbps}"
            )
        if seqs_per_nack < 1:
            raise ValueError(
                f"seqs_per_nack must be >= 1, got {seqs_per_nack}"
            )
        if nack_retry is not None and nack_retry <= 0:
            raise ValueError(
                f"nack_retry must be positive or None, got {nack_retry}"
            )
        if nack_size_bits <= 0:
            raise ValueError(
                f"nack_size_bits must be positive, got {nack_size_bits}"
            )
        super().__init__(**kwargs)
        self.feedback_kbps = feedback_kbps
        self.seqs_per_nack = seqs_per_nack
        self.feedback_channel: Optional[Channel] = None
        if feedback_kbps > 0:
            loss = feedback_loss_model
            if loss is None:
                rate = (
                    feedback_loss_rate
                    if feedback_loss_rate is not None
                    else self.data_channel.loss.mean_loss_rate
                )
                loss = BernoulliLoss(rate, rng=self.rng["feedback-loss"])
            self.feedback_channel = Channel(
                self.env, feedback_kbps, loss=loss
            )
            self.feedback_channel.subscribe(self._handle_nack)
        self.nack_retry = nack_retry
        #: NACKs are far smaller than data announcements (a handful of
        #: sequence numbers vs a full ADU), so a small feedback
        #: *bandwidth* allocation buys a high NACK *packet* rate — the
        #: asymmetry behind the paper's "small fraction of bandwidth for
        #: feedback significantly improves consistency".
        self.nack_size_bits = nack_size_bits
        self.receiver.on_gap = self._on_receiver_gap
        #: Sequence numbers awaiting repair, grouped by record key.
        self._pending_repairs: Dict[Any, Set[int]] = {}
        #: When each missing sequence number was last NACKed.
        self._nack_times: Dict[int, float] = {}

    # -- receiver side ---------------------------------------------------------
    def _receiver_needs(self, seq: int) -> bool:
        """Does the receiver actually lack the ADU that ``seq`` carried?

        ALF packet headers name their ADUs, and adjacent packets carry
        enough naming context for a receiver to identify *which* data a
        hole in the sequence space contained (the paper's receiver-driven
        data naming, reference [40]).  We model that by resolving the
        sequence number against the sender's ADU map and checking the
        receiver's own table: a lost retransmission of data the receiver
        already holds is not worth a NACK — NACKing it would waste hot
        bandwidth on redundant repairs.
        """
        resolved = self._seq_to_key.get(seq)
        if resolved is None:
            return False
        key, version = resolved
        mirror = self.receiver.table.get(key)
        return (
            mirror is None
            or mirror.version < version
            or not mirror.is_subscriber_live(self.env.now)
        )

    def _on_receiver_gap(self, missing_seqs: List[int]) -> None:
        """Batch newly detected losses of needed data into NACK packets."""
        self._send_nacks(
            [seq for seq in missing_seqs if self._receiver_needs(seq)]
        )

    def _send_nacks(self, seqs: List[int]) -> None:
        if self.feedback_channel is None or not seqs:
            return
        now = self.env.now
        for seq in seqs:
            self._nack_times[seq] = now
        tr = self._trace
        trace_records = tr is not None and tr.record
        for start in range(0, len(seqs), self.seqs_per_nack):
            batch = tuple(seqs[start : start + self.seqs_per_nack])
            nack = Packet(
                kind="nack",
                payload={"seqs": batch},
                size_bits=self.nack_size_bits,
            )
            self.nacks_sent += 1
            self.ledger.add("feedback", nack.size_bits)
            if trace_records:
                # Span-opening marker: one repair chain per missing seq
                # (docs/SPANS.md); retries re-emit and deepen the chain.
                tr.emit(
                    _RECORD,
                    "repair_requested",
                    now,
                    seqs=batch,
                    session=self._session_label,
                )
            self.feedback_channel.send(nack)

    #: Most re-requests sent per retry sweep.  Bounds the work done when
    #: the hot queue is starved and holes accumulate faster than
    #: repairs; excess holes wait for the next sweep (or the cold cycle).
    RETRY_BATCH = 200

    def _nack_retry_loop(self):
        """Re-request still-missing data whose NACK (or repair) was lost.

        Periodically scans the receiver's missing-sequence set, prunes
        entries it no longer needs (repaired by the cold cycle, or the
        record died), and re-NACKs the rest — the standard SRM-style
        request retry with a fixed backoff interval.
        """
        while True:
            yield self.env.timeout(self.nack_retry)
            now = self.env.now
            stale: List[int] = []
            for seq in sorted(self.receiver.missing_seqs):
                if not self._receiver_needs(seq):
                    self.receiver.missing_seqs.discard(seq)
                    self._nack_times.pop(seq, None)
                    continue
                last = self._nack_times.get(seq, -float("inf"))
                if now - last >= self.nack_retry:
                    stale.append(seq)
                    if len(stale) >= self.RETRY_BATCH:
                        break
            self._send_nacks(stale)

    def _start_extra_processes(self) -> None:
        super()._start_extra_processes()
        if self.feedback_channel is not None and self.nack_retry is not None:
            self.env.process(self._nack_retry_loop())

    # -- sender side --------------------------------------------------------------
    def _handle_nack(self, packet: Packet) -> None:
        self.nacks_delivered += 1
        now = self.env.now
        for seq in packet.payload["seqs"]:
            resolved = self._seq_to_key.get(seq)
            if resolved is None:
                continue
            key, version = resolved
            record = self.publisher.get(key)
            if record is None or not record.is_publisher_live(now):
                continue
            if record.version != version:
                # The record has been updated since; the newer version is
                # (or will be) announced through the hot queue anyway.
                continue
            self._pending_repairs.setdefault(key, set()).add(seq)
            if self._location.get(key) == COLD:
                self.scheduler.remove(COLD, key)
                machine = self.machines.get(key)
                if machine is not None and machine.state is RecordState.COLD:
                    machine.on_nack()
                self.scheduler.enqueue(HOT, key)
                self._location[key] = HOT
                self._wake_sender()

    def _make_packet(self, key: Any, repairs: Tuple[int, ...] = ()) -> Packet:
        if not repairs:
            repairs = tuple(sorted(self._pending_repairs.pop(key, ())))
        if repairs:
            tr = self._trace
            if tr is not None and tr.record:
                # Span-closing marker: the sender commits these seqs to
                # the announce it is about to queue (docs/SPANS.md).
                tr.emit(
                    _RECORD,
                    "repair_sent",
                    self.env.now,
                    key=key,
                    seqs=repairs,
                    session=self._session_label,
                )
        return super()._make_packet(key, repairs)

    def _drop_from_queues(self, key: Any) -> None:
        self._pending_repairs.pop(key, None)
        super()._drop_from_queues(key)

    def _clear_queues(self) -> None:
        super()._clear_queues()
        self._pending_repairs.clear()
        self._nack_times.clear()

    def _fault_channels(self):
        # A severed link (or a partition isolating the receiver) cuts
        # the feedback path too: NACKs cannot cross an outage either.
        channels = super()._fault_channels()
        if self.feedback_channel is not None:
            channels.append(self.feedback_channel)
        return channels

    def feedback_packets_count(self) -> int:
        if self.feedback_channel is None:
            return 0
        return self.feedback_channel.packets_sent
