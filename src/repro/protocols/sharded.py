"""Sharded DES receiver populations (docs/SCALE.md).

The feedback sessions couple receivers to the sender schedule (a NACK
moves a record between queues), so they cannot be partitioned without
changing results.  Pure announce/listen *can*: the sender's schedule is
a function of ``(parameters, seed)`` only, so K shards that each
replicate the sender and simulate a disjoint slice of the receiver set
produce — packet for packet — the runs a single monolithic session
would, as long as per-receiver randomness is keyed by *global* receiver
index.

Determinism contract (shard-count invariance):

* the sender round-robins the record set in pull mode, consuming no
  randomness — every shard replays the identical announcement schedule;
* receiver ``i`` draws its loss (and churn) from
  ``RngStreams(seed).spawn(f"rcv-{i}")``, keyed by the global index
  ``i`` — the draw sequence a receiver sees is independent of which
  shard simulates it or how many shards exist;
* shards return **integer** series and counts only (held-pair counts on
  a shared tick grid, false-expiry and delivery counts), so the merge
  is elementwise integer addition — associative and therefore
  byte-identical for any K and any ``--jobs`` (floats are derived once,
  after the merge).

Held-pair sampling uses a difference array: a delivery at time ``t``
with deadline ``d`` increments ``inc[ceil(t/w)]`` and ``dec[ceil(d/w)]``
(a refresh cancels the old deadline's decrement), so sampling is O(1)
per delivery with no timer churn — the convention is *held at tick T
iff delivered at or before T and deadline strictly after T*.

:class:`ShardedMulticastSession` fans the shards out over the existing
process pool via ``map_cells`` (so the result cache and telemetry see
ordinary cells) and merges the per-shard fan-out delivery counts,
recovery metrics, and trace streams deterministically; ``ext_scale``
uses the same :func:`shard_cell` directly as its experiment cell.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.des import Environment
from repro.des.rng import RngStreams
from repro.net.channel import MulticastChannel
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.net.packet import Packet
from repro.obs import runtime as _obs
from repro.obs.trace import RUN as _RUN

__all__ = [
    "ScaleListenerSession",
    "ShardedMulticastSession",
    "merge_shards",
    "shard_bounds",
    "shard_cell",
    "shard_metrics",
]


def shard_bounds(n_receivers: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` global-index slices, remainder up front."""
    if n_receivers < 1:
        raise ValueError(f"need at least one receiver, got {n_receivers}")
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    shards = min(shards, n_receivers)
    base, extra = divmod(n_receivers, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ScaleListenerSession:
    """Pure announce/listen over one shard of a receiver population.

    The sender serializes the ``n_records`` store round-robin in pull
    mode at exactly one full pass per ``refresh_interval``; receivers
    are pure listeners holding each record for ``timeout_multiple``
    refresh intervals past its last receipt.  ``shard=(lo, hi)``
    simulates global receivers ``lo..hi-1`` (default: all of them).
    """

    def __init__(
        self,
        n_receivers: int,
        loss_rate: float,
        *,
        refresh_interval: float = 1.0,
        n_records: int = 4,
        timeout_multiple: int = 4,
        seed: int = 0,
        shard: Optional[Tuple[int, int]] = None,
        shard_index: int = 0,
        churn_rate: float = 0.0,
        burst_length: Optional[float] = None,
        tick: float = 1.0,
    ) -> None:
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver, got {n_receivers}")
        if not 0.0 < loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in (0, 1), got {loss_rate}")
        if n_records < 1:
            raise ValueError(f"need at least one record, got {n_records}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.n_receivers = n_receivers
        self.loss_rate = loss_rate
        self.refresh_interval = refresh_interval
        self.n_records = n_records
        self.timeout_multiple = timeout_multiple
        self.seed = seed
        self.shard = shard if shard is not None else (0, n_receivers)
        self.shard_index = shard_index
        self.churn_rate = churn_rate
        self.burst_length = burst_length
        self.tick = tick
        lo, hi = self.shard
        if not 0 <= lo < hi <= n_receivers:
            raise ValueError(f"shard {self.shard} outside [0, {n_receivers})")

    def _loss_model(self, family: RngStreams):
        rng = family["loss"]
        if self.burst_length is None:
            return BernoulliLoss(self.loss_rate, rng=rng)
        return GilbertElliottLoss.with_mean(
            self.loss_rate, burst_length=self.burst_length, rng=rng
        )

    def run(self, horizon: float) -> Dict[str, Any]:
        """Simulate the shard; returns integer-valued mergeable data."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        lo, hi = self.shard
        env = Environment()
        rng = RngStreams(self.seed)
        # One full store pass per refresh interval: with the default
        # 1000-bit packets, kbps == packets/s (see repro.net.packet).
        channel = MulticastChannel(env, self.n_records / self.refresh_interval)
        hold = self.timeout_multiple * self.refresh_interval
        tick = self.tick
        n_ticks = int(round(horizon / tick))
        limit = n_ticks + 1  # overflow slot: deadlines past the horizon
        inc = [0] * (n_ticks + 2)
        dec = [0] * (n_ticks + 2)
        expiries = [0]
        tables: List[Dict[int, float]] = []
        for rid in range(lo, hi):
            family = rng.spawn(f"rcv-{rid}")
            table: Dict[int, float] = {}
            tables.append(table)
            channel.join(
                rid,
                _make_sink(env, table, inc, dec, expiries, tick, hold, limit),
                loss=self._loss_model(family),
            )
            if self.churn_rate > 0.0:
                env.process(
                    _churn(
                        env,
                        family["churn"],
                        self.churn_rate,
                        table,
                        dec,
                        expiries,
                        tick,
                        limit,
                    )
                )
        env.process(self._announce(env, channel))
        tr = _obs.current_tracer()
        if tr is not None and tr.run:
            tr.emit(
                _RUN,
                "shard_start",
                0.0,
                shard=self.shard_index,
                lo=lo,
                hi=hi,
                receivers=hi - lo,
            )
        env.run(until=horizon)
        # Lazy false-expiry counting: re-deliveries counted theirs in
        # the sink; whatever expired and was never refreshed is swept
        # here.  (The publisher is live for the whole run, so every
        # timeout is a *false* expiry.)
        for table in tables:
            for deadline in table.values():
                # Strict <: a deadline exactly at the horizon may still
                # be refreshed by the announcement arriving with it.
                if deadline < horizon:
                    expiries[0] += 1
        held = []
        level = 0
        for index in range(n_ticks + 1):
            level += inc[index] - dec[index]
            held.append(level)
        delivered = channel.delivered_per_receiver
        result = {
            "shard": self.shard_index,
            "lo": lo,
            "hi": hi,
            "n_receivers": self.n_receivers,
            "n_records": self.n_records,
            "tick": tick,
            "horizon": float(horizon),
            "held": held,
            "false_expiries": expiries[0],
            "deliveries": [delivered.get(rid, 0) for rid in range(lo, hi)],
            "packets_sent": channel.packets_sent,
        }
        if tr is not None and tr.run:
            tr.emit(
                _RUN,
                "shard_end",
                float(horizon),
                shard=self.shard_index,
                held=held[-1],
                false_expiries=expiries[0],
            )
        return result

    def _announce(self, env: Environment, channel: MulticastChannel):
        """Round-robin the store in pull mode: zero randomness, so the
        schedule replays identically in every shard."""
        seq = 0
        records = self.n_records
        while True:
            yield channel.transmit(
                Packet(kind="announce", key=seq % records, seq=seq)
            )
            seq += 1


def _make_sink(env, table, inc, dec, expiries, tick, hold, limit):
    """Per-receiver delivery callback updating the difference arrays."""
    ceil = math.ceil

    def sink(packet: Packet) -> None:
        now = env._now
        key = packet.key
        deadline = table.get(key)
        # The >= matters: with period-aligned announcements the m-th
        # announcement after a receipt arrives *exactly* at the
        # deadline, and the epoch chain (expiry = m consecutive
        # losses) counts that arrival as a refresh, not an expiry.
        if deadline is not None and deadline >= now:
            # Refresh while held: move the pending decrement.
            dec[min(ceil(deadline / tick), limit)] -= 1
        else:
            if deadline is not None:
                # Expired earlier and only now re-delivered: that gap
                # was a false expiry (counted lazily, exactly once).
                expiries[0] += 1
            inc[min(ceil(now / tick), limit)] += 1
        new_deadline = now + hold
        dec[min(ceil(new_deadline / tick), limit)] += 1
        table[key] = new_deadline

    return sink


def _churn(env, stream, rate, table, dec, expiries, tick, limit):
    """Receiver resets (leave + naive rejoin): forget all held records."""
    ceil = math.ceil
    draw = stream.expovariate
    while True:
        yield env.timeout(draw(rate))
        now = env._now
        for deadline in table.values():
            if deadline >= now:
                dec[min(ceil(deadline / tick), limit)] -= 1
                dec[min(ceil(now / tick), limit)] += 1
            else:
                expiries[0] += 1
        table.clear()


def shard_cell(
    *,
    n_receivers: int,
    lo: int,
    hi: int,
    shard: int,
    loss_rate: float,
    seed: int,
    horizon: float,
    refresh_interval: float = 1.0,
    n_records: int = 4,
    timeout_multiple: int = 4,
    churn_rate: float = 0.0,
    burst_length: Optional[float] = None,
    tick: float = 1.0,
) -> Dict[str, Any]:
    """Module-level cell: one shard, picklable and cacheable."""
    _obs.note_shard({"index": shard, "lo": lo, "hi": hi})
    session = ScaleListenerSession(
        n_receivers,
        loss_rate,
        refresh_interval=refresh_interval,
        n_records=n_records,
        timeout_multiple=timeout_multiple,
        seed=seed,
        shard=(lo, hi),
        shard_index=shard,
        churn_rate=churn_rate,
        burst_length=burst_length,
        tick=tick,
    )
    return session.run(horizon=horizon)


def merge_shards(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard results into the monolithic session's view.

    Everything merged here is an integer (held-pair counts sum
    elementwise, delivery lists concatenate in global receiver order,
    expiry counts add), so the result is identical for every shard
    count — including K=1 — and every ``--jobs`` value.
    """
    if not rows:
        raise ValueError("need at least one shard result")
    ordered = sorted(rows, key=lambda row: row["lo"])
    expected_lo = 0
    for row in ordered:
        if row["lo"] != expected_lo:
            raise ValueError(
                f"shards do not tile the receiver set: gap at {expected_lo}"
            )
        expected_lo = row["hi"]
    first = ordered[0]
    if expected_lo != first["n_receivers"]:
        raise ValueError(
            f"shards cover {expected_lo} of {first['n_receivers']} receivers"
        )
    held = [0] * len(first["held"])
    deliveries: List[int] = []
    false_expiries = 0
    for row in ordered:
        if row["packets_sent"] != first["packets_sent"]:
            raise ValueError("shards disagree on the announcement schedule")
        for index, count in enumerate(row["held"]):
            held[index] += count
        deliveries.extend(row["deliveries"])
        false_expiries += row["false_expiries"]
    # Deliberately no shard-count field: the merged view is the
    # monolithic session's view, byte-identical for every K.
    return {
        "n_receivers": first["n_receivers"],
        "n_records": first["n_records"],
        "tick": first["tick"],
        "horizon": first["horizon"],
        "held": held,
        "false_expiries": false_expiries,
        "deliveries": deliveries,
        "packets_sent": first["packets_sent"],
    }


def shard_metrics(merged: Dict[str, Any]) -> Dict[str, float]:
    """Consistency metrics from a merged run — floats derived once.

    ``consistency`` is the tail average of the held fraction (the
    empirical equilibrium over the last fifth of the ticks);
    time-to-reconsistency thresholds are relative to it, mirroring the
    fluid summary.
    """
    pairs = merged["n_receivers"] * merged["n_records"]
    held = merged["held"]
    tick = merged["tick"]
    window = max(1, len(held) // 5)
    tail = sum(held[-window:]) / (window * pairs)
    times = {q: math.nan for q in (0.5, 0.9, 0.99)}
    for index, count in enumerate(held):
        for q in times:
            if math.isnan(times[q]) and count >= q * tail * pairs:
                times[q] = index * tick
    return {
        "consistency": tail,
        "t50_s": times[0.5],
        "t90_s": times[0.9],
        "t99_s": times[0.99],
        "false_expiry_per_s": merged["false_expiries"] / merged["horizon"],
        "delivered_total": float(sum(merged["deliveries"])),
    }


class ShardedMulticastSession:
    """Partition a receiver population over the process pool.

    Builds one :func:`shard_cell` per shard, fans them out with
    ``map_cells`` (sequentially for ``jobs<=1``), emits a
    ``shard_merge`` trace instant, and returns the deterministic merge.
    Standalone counterpart of the ``ext_scale`` experiment path — both
    share the same cell function, so cached shard results are reused
    across the two entry points.
    """

    def __init__(
        self,
        n_receivers: int,
        shards: int,
        loss_rate: float,
        *,
        refresh_interval: float = 1.0,
        n_records: int = 4,
        timeout_multiple: int = 4,
        seed: int = 0,
        churn_rate: float = 0.0,
        burst_length: Optional[float] = None,
        tick: float = 1.0,
    ) -> None:
        self.n_receivers = n_receivers
        self.shards = shards
        self.loss_rate = loss_rate
        self.refresh_interval = refresh_interval
        self.n_records = n_records
        self.timeout_multiple = timeout_multiple
        self.seed = seed
        self.churn_rate = churn_rate
        self.burst_length = burst_length
        self.tick = tick

    def cells(self, horizon: float) -> List[Dict[str, Any]]:
        return [
            {
                "n_receivers": self.n_receivers,
                "lo": lo,
                "hi": hi,
                "shard": index,
                "loss_rate": self.loss_rate,
                "seed": self.seed,
                "horizon": float(horizon),
                "refresh_interval": self.refresh_interval,
                "n_records": self.n_records,
                "timeout_multiple": self.timeout_multiple,
                "churn_rate": self.churn_rate,
                "burst_length": self.burst_length,
                "tick": self.tick,
            }
            for index, (lo, hi) in enumerate(
                shard_bounds(self.n_receivers, self.shards)
            )
        ]

    def run(self, horizon: float, jobs: int = 1) -> Dict[str, Any]:
        """Returns ``{"merged": ..., "metrics": ..., "per_shard": ...}``."""
        # Imported here, not at module top: repro.experiments imports
        # the protocols package, so the runner must not be a load-time
        # dependency of it.
        from repro.experiments.runner import map_cells

        rows = map_cells(shard_cell, self.cells(horizon), jobs=jobs)
        tr = _obs.current_tracer()
        if tr is not None and tr.run:
            tr.emit(
                _RUN,
                "shard_merge",
                None,
                shards=len(rows),
                receivers=self.n_receivers,
            )
        merged = merge_shards(rows)
        return {
            "shards": len(rows),
            "merged": merged,
            "metrics": shard_metrics(merged),
            "per_shard": rows,
        }
