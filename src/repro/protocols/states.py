"""The hot/cold/dead record state machine (Figure 7).

A record enters the system in the HOT (foreground) state, moves to COLD
(background) once it has been transmitted, returns to HOT when a
receiver NACK requests it, and leaves the system to DEAD when its
lifetime ends.  The machine validates transitions and keeps an audit of
visits, which the Figure 7 experiment prints alongside the diagram.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple


class RecordState(enum.Enum):
    """Figure 7's three states."""

    HOT = "hot"
    COLD = "cold"
    DEAD = "dead"


#: Legal transitions and the protocol event that triggers each.
TRANSITIONS: Dict[Tuple[RecordState, RecordState], str] = {
    (RecordState.HOT, RecordState.COLD): "transmit",
    (RecordState.HOT, RecordState.HOT): "transmit (retained: loss-suspect)",
    (RecordState.COLD, RecordState.HOT): "nack",
    (RecordState.COLD, RecordState.COLD): "retransmit",
    (RecordState.HOT, RecordState.DEAD): "death",
    (RecordState.COLD, RecordState.DEAD): "death",
}


class IllegalTransition(Exception):
    """Raised when a protocol attempts a transition Figure 7 forbids."""


class RecordStateMachine:
    """Per-record state with transition validation and audit counters."""

    def __init__(self) -> None:
        self.state = RecordState.HOT
        self.history: List[Tuple[RecordState, RecordState, str]] = []
        self.transmissions = 0
        self.nacks = 0

    def transition(self, target: RecordState) -> str:
        """Move to ``target``; returns the event label.

        Raises :class:`IllegalTransition` for moves not in Figure 7
        (e.g. resurrecting a DEAD record).
        """
        key = (self.state, target)
        label = TRANSITIONS.get(key)
        if label is None:
            raise IllegalTransition(
                f"cannot move {self.state.value} -> {target.value}"
            )
        self.history.append((self.state, target, label))
        if label.startswith("transmit") or label == "retransmit":
            self.transmissions += 1
        if label == "nack":
            self.nacks += 1
        self.state = target
        return label

    # Convenience wrappers used by the protocol senders -------------------------
    def on_transmitted(self) -> None:
        """First transmission: HOT -> COLD (stays COLD on retransmit)."""
        if self.state is RecordState.HOT:
            self.transition(RecordState.COLD)
        elif self.state is RecordState.COLD:
            self.transition(RecordState.COLD)
        else:
            raise IllegalTransition("transmitting a dead record")

    def on_nack(self) -> None:
        """A NACK moves a COLD record back to the HOT queue tail."""
        if self.state is RecordState.COLD:
            self.transition(RecordState.HOT)
        # A NACK for an already-hot record is a no-op (it is queued).

    def on_death(self) -> None:
        if self.state is not RecordState.DEAD:
            self.transition(RecordState.DEAD)

    @property
    def is_dead(self) -> bool:
        return self.state is RecordState.DEAD


def ascii_diagram() -> str:
    """The Figure 7 diagram, rendered for terminals."""
    return "\n".join(
        [
            "            transmit",
            "   +-----+ ---------> +-----+",
            "   |  H  |            |  C  | <--+ retransmit",
            "   +-----+ <--------- +-----+ ---+",
            "      |       nack       |",
            "death |                  | death",
            "      v                  v",
            "   +----------------------+",
            "   |          D           |",
            "   +----------------------+",
        ]
    )
