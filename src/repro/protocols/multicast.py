"""Multicast announce/listen with scalable NACK suppression.

The paper: "SSTP may be applied to multicast as well as unicast
transport.  In the case of multicast, a scalable mechanism such as
slotting and damping [11, 20] may be used in managing feedback traffic."
This module implements that mechanism over the protocol ladder:

* one sender multicasts announcements through a hot/cold scheduler
  (as in Section 4/5) over a :class:`~repro.net.MulticastChannel` with
  independent per-receiver loss;
* receivers detect losses by sequence gaps, exactly as in the unicast
  feedback protocol;
* instead of NACKing immediately, a receiver **slots**: it draws a
  random delay before sending, and **damps**: NACKs are multicast to
  the whole group, so a receiver that hears another member request the
  same sequence suppresses its own pending request (SRM's
  slotting-and-damping, the paper's references [11, 20]);
* a single retransmission (moved cold -> hot, as in Figure 7) repairs
  every receiver that missed the packet.

The headline property — total NACK traffic grows sublinearly in the
group size — is asserted by the suppression bench and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import (
    BandwidthLedger,
    ConsistencyMeter,
    FaultReport,
    LatencyRecorder,
    RecoveryTracker,
    SoftStateTable,
)
from repro.des import Environment, Interrupt, RngStreams, SimulationError
from repro.faults import FaultInjector, sender_side
from repro.obs import runtime as _obs
from repro.obs.trace import RECORD as _RECORD, RUN as _RUN
from repro.net import BernoulliLoss, CombinedLoss, MulticastChannel, Packet, TotalLoss
from repro.protocols.states import RecordState, RecordStateMachine
from repro.protocols.two_queue import COLD, HOT, make_scheduler
from repro.workloads import PoissonUpdateWorkload, Workload

NACK_BITS = 100


@dataclass
class MulticastResult:
    """Measured outcome of a multicast feedback session."""

    consistency: float
    per_receiver_consistency: Dict[str, float]
    mean_receive_latency: float
    data_packets: int
    nacks_sent: int
    nacks_suppressed: int
    repairs_transmitted: int
    duration: float
    bandwidth_bits: Dict[str, float] = field(default_factory=dict)
    fault_reports: List[FaultReport] = field(default_factory=list)
    false_expiries: int = 0

    @property
    def nacks_per_loss_event(self) -> float:
        """Feedback economy: requests sent per repair performed."""
        if self.repairs_transmitted == 0:
            return math.nan
        return self.nacks_sent / self.repairs_transmitted


class _GroupReceiver:
    """One group member: mirror table, gap detection, slotted NACKs."""

    def __init__(
        self,
        receiver_id: str,
        session: "MulticastFeedbackSession",
        seed_rng,
    ) -> None:
        self.receiver_id = receiver_id
        self.session = session
        self.env = session.env
        self.table = SoftStateTable("subscriber")
        self._rng = seed_rng
        self._next_seq = 0
        self.missing: Set[int] = set()
        #: Sequences with a slotting timer armed locally.
        self._pending: Set[int] = set()
        #: Sequences whose request we heard from another member.
        self._heard: Dict[int, float] = {}
        #: Request attempts per sequence, for exponential backoff: when
        #: the feedback channel is congested, re-requesting at a fixed
        #: interval melts it down (each late repair spawns more NACKs
        #: than it resolves).  SRM's answer, used here, is to double the
        #: retry timer per attempt.
        self._attempts: Dict[int, int] = {}
        self.nacks_sent = 0
        self.nacks_suppressed = 0
        #: Set while the member is off the network (churn, partition):
        #: its slot timers keep ticking but no NACK can be transmitted.
        self.unreachable = False

    # -- data path --------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        payload = packet.payload
        now = self.env.now
        if packet.seq is not None:
            if packet.seq >= self._next_seq:
                fresh = range(self._next_seq, packet.seq)
                self._next_seq = packet.seq + 1
                needed = [
                    seq
                    for seq in fresh
                    if self.session.receiver_needs(self, seq)
                ]
                if needed:
                    self.missing.update(needed)
                    self._arm_slots(needed)
            for repaired in payload.get("repairs", ()):
                self.missing.discard(repaired)
                self._heard.pop(repaired, None)
                self._attempts.pop(repaired, None)
        key = payload["key"]
        version = payload["version"]
        existing = self.table.get(key)
        if (
            existing is not None
            and existing.version >= version
            and existing.is_subscriber_live(now)
        ):
            self.table.refresh(key, now)
        else:
            self.table.put(
                key,
                payload["value"],
                now=now,
                version=version,
                hold_time=max(payload["expires_at"] - now, 1e-9),
            )
            self.session.latency.received(
                (self.receiver_id, key), version, now
            )
        self.table.expire(now)
        self.session.observe()

    # -- slotting and damping ------------------------------------------------------
    def _arm_timer(self, seq: int) -> None:
        if seq in self._pending:
            return
        self._pending.add(seq)
        delay = self._rng.uniform(
            self.session.slot_min, self.session.slot_max
        )
        self.env.timeout(delay).callbacks.append(
            partial(self._slot_fired, seq)
        )

    def _arm_slots(self, seqs: List[int]) -> None:
        """Arm slotting timers for a whole gap in one bulk schedule.

        A multi-packet loss burst surfaces as one gap with many
        sequences; drawing all slot delays up front (one draw per seq,
        in seq order — the ``slots`` stream has no other consumer, so
        the draw sequence matches the per-timer path) and pushing them
        through :meth:`Environment.timeout_many` costs one heap entry
        per timer instead of a three-event process spawn each.
        """
        pending = self._pending
        to_arm = [seq for seq in seqs if seq not in pending]
        if not to_arm:
            return
        pending.update(to_arm)
        uniform = self._rng.uniform
        slot_min = self.session.slot_min
        slot_max = self.session.slot_max
        delays = [uniform(slot_min, slot_max) for _ in to_arm]
        events = self.env.timeout_many(delays)
        fired = self._slot_fired
        for seq, event in zip(to_arm, events):
            event.callbacks.append(partial(fired, seq))

    def _slot_fired(self, seq: int, _event) -> None:
        self._pending.discard(seq)
        if seq not in self.missing:
            return  # repaired while we waited
        if not self.session.receiver_needs(self, seq):
            self.missing.discard(seq)
            return
        heard_at = self._heard.get(seq)
        if heard_at is not None and (
            self.env.now - heard_at < self.session.damp_interval
        ):
            # Someone else already asked: damp our request and back off.
            self.nacks_suppressed += 1
            self.session.nacks_suppressed += 1
            self._schedule_backoff(seq)
            return
        self._send_nack(seq)
        self._schedule_backoff(seq)

    def _schedule_backoff(self, seq: int) -> None:
        """Re-arm the request if the repair never shows up.

        Exponentially backed off per attempt (capped), so a congested
        feedback channel drains instead of melting down.
        """
        attempt = self._attempts.get(seq, 0) + 1
        self._attempts[seq] = attempt
        delay = self.session.retry_interval * min(2 ** (attempt - 1), 32)
        self.env.timeout(delay).callbacks.append(
            partial(self._backoff_fired, seq)
        )

    def _backoff_fired(self, seq: int, _event) -> None:
        if seq in self.missing and self.session.receiver_needs(self, seq):
            self._arm_timer(seq)
        else:
            self.missing.discard(seq)
            self._attempts.pop(seq, None)

    def _send_nack(self, seq: int) -> None:
        if self.unreachable:
            return
        self.nacks_sent += 1
        self.session.nacks_sent += 1
        self.session.ledger.add("feedback", NACK_BITS)
        tr = self.session._trace
        if tr is not None and tr.record:
            # Span-opening marker (docs/SPANS.md): backoff retries
            # re-emit for the same seq and deepen the repair chain.
            tr.emit(
                _RECORD,
                "repair_requested",
                self.env.now,
                seq=seq,
                receiver=self.receiver_id,
            )
        self.session.feedback_channel.send(
            Packet(
                kind="nack",
                payload={"seq": seq, "from": self.receiver_id},
                size_bits=NACK_BITS,
            )
        )

    def hear_nack(self, packet: Packet) -> None:
        """Another member's (or our own) multicast NACK reaches us."""
        seq = packet.payload["seq"]
        if packet.payload["from"] == self.receiver_id:
            return
        self._heard[seq] = self.env.now


class MulticastFeedbackSession:
    """A multicast group with slotted-and-damped NACK feedback."""

    def __init__(
        self,
        n_receivers: int,
        data_kbps: float,
        feedback_kbps: float,
        loss_rate: float = 0.0,
        shared_loss_rate: float = 0.0,
        hot_share: float = 0.7,
        update_rate: Optional[float] = None,
        lifetime_mean: float = 20.0,
        workload: Optional[Workload] = None,
        slot_min: float = 0.05,
        slot_max: float = 0.5,
        slot_scale_with_group: bool = True,
        damp_interval: float = 1.0,
        retry_interval: float = 1.5,
        scheduler: str = "stride",
        seed: int = 0,
        tick: float = 1.0,
        join_times: Optional[Dict[str, float]] = None,
        faults=None,
    ) -> None:
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver, got {n_receivers}")
        if data_kbps <= 0:
            raise ValueError(f"data_kbps must be positive, got {data_kbps}")
        if feedback_kbps <= 0:
            raise ValueError(
                f"feedback_kbps must be positive, got {feedback_kbps}"
            )
        if not 0.0 < hot_share < 1.0:
            raise ValueError(f"hot_share must be in (0, 1), got {hot_share}")
        if not 0.0 <= slot_min < slot_max:
            raise ValueError(
                f"need 0 <= slot_min < slot_max, got {slot_min}, {slot_max}"
            )
        if workload is None:
            if update_rate is None:
                raise ValueError("provide either update_rate or workload")
            workload = PoissonUpdateWorkload(
                arrival_rate=update_rate, lifetime_mean=lifetime_mean
            )
        self.env = Environment()
        self.rng = RngStreams(seed=seed)
        self.workload = workload
        self.slot_min = slot_min
        # SRM-style timer scaling: the slot window must grow with the
        # group, or every member fires its request before it can hear
        # anyone else's and the feedback channel melts down.  A window
        # of ~N/8 base widths keeps expected requests per loss O(1).
        if slot_scale_with_group:
            slot_max = slot_max * max(1.0, n_receivers / 8.0)
        self.slot_max = slot_max
        self.damp_interval = max(damp_interval, self.slot_max)
        self.retry_interval = retry_interval
        self.tick = tick

        # shared_loss_rate models a lossy upstream link whose drops hit
        # every group member at once — the regime where slotting and
        # damping pay off (members request the same repairs).
        self.data_channel = MulticastChannel(
            self.env,
            data_kbps,
            shared_loss=BernoulliLoss(
                shared_loss_rate, rng=self.rng["shared-loss"]
            ),
        )
        self.feedback_channel = MulticastChannel(self.env, feedback_kbps)

        self.publisher = SoftStateTable("publisher")
        session_label = _obs.next_session_label()
        self._session_label = session_label
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        protocol = type(self).__name__
        self.latency = LatencyRecorder(
            session=session_label, protocol=protocol
        )
        self.ledger = BandwidthLedger(session=session_label, protocol=protocol)
        self.scheduler = make_scheduler(scheduler, self.rng["scheduler"])
        self.scheduler.add_class(HOT, weight=hot_share)
        self.scheduler.add_class(COLD, weight=1.0 - hot_share)
        self._location: Dict[Any, str] = {}
        self.machines: Dict[Any, RecordStateMachine] = {}
        self._seq = 0
        self._seq_to_key: Dict[int, Tuple[Any, int]] = {}
        self._pending_repairs: Dict[Any, Set[int]] = {}
        self._wakeup = None
        self.nacks_sent = 0
        self.nacks_suppressed = 0
        self.repairs_transmitted = 0

        join_times = join_times or {}
        self.receivers: List[_GroupReceiver] = []
        self._receiver_by_id: Dict[str, _GroupReceiver] = {}
        self._receiver_loss: Dict[str, BernoulliLoss] = {}
        late_joiners: List[Tuple[_GroupReceiver, float, BernoulliLoss]] = []
        for index in range(n_receivers):
            receiver_id = f"rcv-{index}"
            family = self.rng.spawn(receiver_id)
            receiver = _GroupReceiver(receiver_id, self, family["slots"])
            self.receivers.append(receiver)
            self._receiver_by_id[receiver_id] = receiver
            join_at = join_times.get(receiver_id, 0.0)
            data_loss = BernoulliLoss(loss_rate, rng=family["loss"])
            self._receiver_loss[receiver_id] = data_loss
            if join_at <= 0.0:
                self.data_channel.join(
                    receiver_id, receiver.deliver, loss=data_loss
                )
            else:
                # A late joiner: it catches up purely from the cold
                # announcement cycle once it tunes in — the benefit the
                # paper credits periodic retransmissions with.
                late_joiners.append((receiver, join_at, data_loss))
            # Receivers hear each other's NACKs (damping); they may be
            # lost independently like any multicast packet.
            self.feedback_channel.join(
                receiver_id,
                receiver.hear_nack,
                loss=BernoulliLoss(loss_rate, rng=family["nack-loss"]),
            )
        if late_joiners:
            # One bulk schedule for the whole join wave: each timer's
            # callback performs the join at its receiver's tune-in time.
            events = self.env.timeout_many(
                [join_at for _receiver, join_at, _loss in late_joiners]
            )
            for (receiver, _join_at, loss), event in zip(late_joiners, events):
                event.callbacks.append(
                    partial(self._late_join_fired, receiver, loss)
                )
        self.feedback_channel.join(
            "sender",
            self._handle_nack,
            loss=BernoulliLoss(loss_rate, rng=self.rng["sender-nack-loss"]),
        )
        self.meter: Optional[ConsistencyMeter] = None
        self._per_receiver_meters: Dict[str, ConsistencyMeter] = {}
        self._last_observed = -float("inf")

        #: Fault-injection state (same contract as BaseSession).
        self.faults = faults
        self.fault_tracker: Optional[RecoveryTracker] = None
        if faults is not None:
            self.fault_tracker = RecoveryTracker()
            for receiver in self.receivers:
                receiver.table.on_expire(self._note_receiver_expiry)
        self.sender_process = None
        self._partition_state: List[Tuple[str, "_GroupReceiver"]] = []

    def _late_join_fired(self, receiver: "_GroupReceiver", loss, _event) -> None:
        # Skip the sequence space that predates the join: those packets
        # were not "lost", the member simply was not listening yet.
        receiver._next_seq = self._seq
        self.data_channel.join(receiver.receiver_id, receiver.deliver, loss=loss)

    # -- helpers receivers call ------------------------------------------------------
    def receiver_needs(self, receiver: _GroupReceiver, seq: int) -> bool:
        """ALF naming: would this receiver benefit from a repair of seq?"""
        resolved = self._seq_to_key.get(seq)
        if resolved is None:
            return False
        key, version = resolved
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(self.env.now):
            return False
        mirror = receiver.table.get(key)
        return (
            mirror is None
            or mirror.version < version
            or not mirror.is_subscriber_live(self.env.now)
        )

    def observe(self, force: bool = False) -> None:
        """Sample the consistency meters.

        Metering cost is O(receivers x live records) per sample, and
        deliveries arrive N-per-packet, so per-event sampling would be
        quadratic in the group size.  The meters are therefore sampled
        at most every ``tick/2`` seconds (plus the forced end-of-run
        sample); at hundreds of live records the time-average converges
        the same way with bounded per-sample error.
        """
        now = self.env.now
        if self.meter is None:
            return
        if not force and now - self._last_observed < self.tick / 2.0:
            return
        self._last_observed = now
        for receiver in self.receivers:
            receiver.table.expire(now)
        self.meter.observe(now)
        for meter in self._per_receiver_meters.values():
            meter.observe(now)
        tr = self._trace
        if tr is not None and tr.run:
            tr.emit(
                _RUN,
                "consistency_sample",
                now,
                value=self.meter._effective_value(self.meter._last_value),
                session=self._session_label,
            )

    # -- publisher actions --------------------------------------------------------------
    def insert(self, key: Any, value: Any, lifetime: float = math.inf) -> None:
        now = self.env.now
        record = self.publisher.put(key, value, now=now, lifetime=lifetime)
        for receiver in self.receivers:
            self.latency.introduced(
                (receiver.receiver_id, key), record.version, now
            )
        self._promote(key)
        if lifetime != math.inf:
            self._schedule_death(key, lifetime)
        self.observe()

    def update(self, key: Any, value: Any) -> None:
        now = self.env.now
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(now):
            return
        record.value = value
        record.version += 1
        record.last_refreshed = now
        for receiver in self.receivers:
            self.latency.introduced(
                (receiver.receiver_id, key), record.version, now
            )
        self._promote(key)
        self.observe()

    def delete(self, key: Any) -> None:
        self._kill(key)

    def _schedule_death(self, key: Any, lifetime: float) -> None:
        # A bare Timeout + callback: one heap entry per record death
        # instead of the three events a generator process costs.
        self.env.timeout(lifetime).callbacks.append(
            lambda _event, key=key: self._kill(key)
        )

    def _kill(self, key: Any) -> None:
        record = self.publisher.get(key)
        if record is None:
            return
        for receiver in self.receivers:
            self.latency.abandoned(
                (receiver.receiver_id, key), record.version
            )
        self.publisher.delete(key)
        location = self._location.pop(key, None)
        if location is not None:
            self.scheduler.remove(location, key)
        machine = self.machines.pop(key, None)
        if machine is not None:
            machine.on_death()
        self._pending_repairs.pop(key, None)
        if hasattr(self.workload, "note_death"):
            self.workload.note_death(key)
        self.observe()

    # -- sender ---------------------------------------------------------------------------
    def _promote(self, key: Any) -> None:
        location = self._location.get(key)
        if location == HOT:
            return
        if location == COLD:
            self.scheduler.remove(COLD, key)
        machine = self.machines.get(key)
        if machine is None:
            machine = RecordStateMachine()
            self.machines[key] = machine
        elif machine.state is RecordState.COLD:
            machine.on_nack()
        self.scheduler.enqueue(HOT, key)
        self._location[key] = HOT
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _handle_nack(self, packet: Packet) -> None:
        seq = packet.payload["seq"]
        resolved = self._seq_to_key.get(seq)
        if resolved is None:
            return
        key, version = resolved
        record = self.publisher.get(key)
        if (
            record is None
            or not record.is_publisher_live(self.env.now)
            or record.version != version
        ):
            return
        self._pending_repairs.setdefault(key, set()).add(seq)
        if self._location.get(key) == COLD:
            self.repairs_transmitted += 1
            self._promote(key)

    def _sender_loop(self):
        while True:
            try:
                while True:
                    self.publisher.expire(self.env.now)
                    entry = self.scheduler.dequeue()
                    if entry is None:
                        self._wakeup = self.env.event()
                        yield self._wakeup
                        self._wakeup = None
                        continue
                    _, key = entry
                    self._location.pop(key, None)
                    record = self.publisher.get(key)
                    if record is None or not record.is_publisher_live(
                        self.env.now
                    ):
                        continue
                    seq = self._seq
                    self._seq += 1
                    self._seq_to_key[seq] = (key, record.version)
                    repairs = tuple(sorted(self._pending_repairs.pop(key, ())))
                    if repairs:
                        tr = self._trace
                        if tr is not None and tr.record:
                            # Span-closing marker: these seqs ride the
                            # announce queued below (docs/SPANS.md).
                            tr.emit(
                                _RECORD,
                                "repair_sent",
                                self.env.now,
                                key=key,
                                seqs=repairs,
                            )
                    packet = Packet(
                        kind="announce",
                        key=key,
                        seq=seq,
                        payload={
                            "key": key,
                            "value": record.value,
                            "version": record.version,
                            "expires_at": record.publisher_expiry,
                            "repairs": repairs,
                        },
                    )
                    self.ledger.add(
                        "repair" if repairs else "new", packet.size_bits
                    )
                    record.announcements += 1
                    yield self.data_channel.transmit(packet)
                    self.observe()
                    if self.publisher.get(key) is not None:
                        machine = self.machines[key]
                        machine.on_transmitted()
                        if self._location.get(key) != HOT:
                            self.scheduler.enqueue(COLD, key)
                            self._location[key] = COLD
            except Interrupt as interrupt:
                yield from self._crashed_sender(interrupt.cause)

    # -- fault support ---------------------------------------------------------------------
    def _note_receiver_expiry(self, record, now: float) -> None:
        if self.fault_tracker is None:
            return
        mine = self.publisher.get(record.key)
        if mine is not None and mine.is_publisher_live(now):
            self.fault_tracker.note_false_expiry(now, record.key)

    def _crashed_sender(self, crash):
        self._wakeup = None
        if getattr(crash, "cold", False):
            for key, location in list(self._location.items()):
                self.scheduler.remove(location, key)
            self._location.clear()
            for machine in self.machines.values():
                machine.on_death()
            self.machines.clear()
            self._pending_repairs.clear()
            for record in list(self.publisher):
                for receiver in self.receivers:
                    self.latency.abandoned(
                        (receiver.receiver_id, record.key), record.version
                    )
                if hasattr(self.workload, "note_death"):
                    self.workload.note_death(record.key)
            self.publisher.clear()
        yield self.env.timeout(crash.down_for)
        # Warm restart: unscheduled survivors rejoin the background
        # cycle; recovery happens at cold speed, as the paper predicts.
        for record in self.publisher.live_records(self.env.now):
            key = record.key
            if key in self._location:
                continue
            if key not in self.machines:
                self._promote(key)
                continue
            self.scheduler.enqueue(COLD, key)
            self._location[key] = COLD
        self.observe(force=True)

    def fault_crash_sender(self, crash) -> None:
        if self.sender_process is None:
            raise SimulationError(
                "session is not running; there is no sender to crash"
            )
        self.sender_process.interrupt(crash)

    def fault_outage_begin(self):
        token = []
        for channel in (self.data_channel, self.feedback_channel):
            token.append((channel, channel.shared_loss))
            channel.shared_loss = TotalLoss()
        return token

    def fault_outage_end(self, token) -> None:
        for channel, loss in token:
            channel.shared_loss = loss

    def fault_loss_overlay(self, make_model):
        token = [(self.data_channel, self.data_channel.shared_loss)]
        self.data_channel.shared_loss = CombinedLoss(
            [self.data_channel.shared_loss, make_model()]
        )
        return token

    def fault_loss_restore(self, token) -> None:
        for channel, loss in token:
            channel.shared_loss = loss

    def fault_receiver_ids(self) -> List[str]:
        return [receiver.receiver_id for receiver in self.receivers]

    def fault_receiver_leave(self, receiver_id: str, cold: bool = True) -> None:
        receiver = self._receiver_by_id[receiver_id]
        self.data_channel.leave(receiver_id)
        self.feedback_channel.block(receiver_id)
        receiver.unreachable = True
        if cold:
            receiver.table.clear()
            receiver.missing.clear()
            receiver._heard.clear()
            receiver._attempts.clear()
        self.observe(force=True)

    def fault_receiver_rejoin(self, receiver_id: str) -> None:
        receiver = self._receiver_by_id[receiver_id]
        # The sequence space that passed while away is unknown state to
        # relearn from the announcement cycle, not a burst of gaps.
        receiver._next_seq = self._seq
        receiver.missing.clear()
        receiver.unreachable = False
        self.data_channel.join(
            receiver_id,
            receiver.deliver,
            loss=self._receiver_loss[receiver_id],
        )
        self.feedback_channel.unblock(receiver_id)
        self.observe(force=True)

    def fault_partition_begin(self, groups) -> None:
        connected = sender_side(groups)
        for receiver in self.receivers:
            if receiver.receiver_id in connected:
                continue
            self.data_channel.block(receiver.receiver_id)
            self.feedback_channel.block(receiver.receiver_id)
            receiver.unreachable = True
            self._partition_state.append((receiver.receiver_id, receiver))
        self.observe(force=True)

    def fault_partition_end(self) -> None:
        for receiver_id, receiver in self._partition_state:
            self.data_channel.unblock(receiver_id)
            self.feedback_channel.unblock(receiver_id)
            # Partitioned members kept listening state; missed sequence
            # numbers are relearned, not NACK-stormed.
            receiver._next_seq = self._seq
            receiver.missing.clear()
            receiver.unreachable = False
        self._partition_state = []
        self.observe(force=True)

    def _ticker(self):
        while True:
            yield self.env.timeout(self.tick)
            self.observe()

    # -- running ------------------------------------------------------------------------------
    def run(self, horizon: float, warmup: float = 0.0) -> MulticastResult:
        if horizon <= warmup:
            raise ValueError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        self.env.process(
            self.workload.run(self.env, self, self.rng["workload"])
        )
        self.sender_process = self.env.process(self._sender_loop())
        self.env.process(self._ticker())
        if self.faults is not None:
            FaultInjector(self, self.faults, self.fault_tracker).start(
                horizon=horizon
            )
        self.env.run(until=warmup)
        self.meter = ConsistencyMeter(
            self.publisher,
            [receiver.table for receiver in self.receivers],
            start_time=warmup,
        )
        if self.fault_tracker is not None:
            self.meter.enable_series()
        for receiver in self.receivers:
            self._per_receiver_meters[receiver.receiver_id] = (
                ConsistencyMeter(
                    self.publisher, [receiver.table], start_time=warmup
                )
            )
        self.observe(force=True)
        self.env.run(until=horizon)
        self.observe(force=True)
        return MulticastResult(
            consistency=self.meter.average(),
            per_receiver_consistency={
                receiver_id: meter.average()
                for receiver_id, meter in self._per_receiver_meters.items()
            },
            mean_receive_latency=self.latency.mean(),
            data_packets=self.data_channel.packets_sent,
            nacks_sent=self.nacks_sent,
            nacks_suppressed=self.nacks_suppressed,
            repairs_transmitted=self.repairs_transmitted,
            duration=horizon - warmup,
            bandwidth_bits=self.ledger.as_dict(),
            fault_reports=(
                self.fault_tracker.analyze(self.meter.series)
                if self.fault_tracker is not None
                else []
            ),
            false_expiries=(
                self.fault_tracker.false_expiries
                if self.fault_tracker is not None
                else 0
            ),
        )
