"""Soft-state gateways bridging bandwidth islands (Amir et al. [2]).

The paper's related work describes "soft state gateways and multiple
transmission queues for the scalable exchange of RTCP-like control
traffic between islands of high bandwidth bridged by low bandwidth
links", and notes the scheme "is a specific instantiation of our more
general parameterized SSTP framework".  This module builds that
instantiation:

* **island A** — a publisher chattering on a fast local channel;
* **gateway** — subscribes locally, keeps its *own* soft-state table,
  and re-announces across the bottleneck with a hot/cold scheduler at
  the bottleneck's rate.  Because it always transmits the *latest*
  value of each key, local update bursts collapse into at most one
  pending bottleneck transmission per key;
* **island B** — a remote receiver mirroring state from the gateway.

The contrast mode (``mode="forwarder"``) queues every local
announcement into the bottleneck FIFO verbatim.  Whenever the local
announcement rate exceeds the bottleneck rate, that queue grows without
bound and island B's view becomes arbitrarily stale — the failure the
soft-state gateway exists to prevent.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core import BandwidthLedger, ConsistencyMeter, LatencyRecorder, SoftStateTable
from repro.des import Environment, RngStreams
from repro.net import BernoulliLoss, Channel, Packet
from repro.obs import runtime as _obs
from repro.workloads import PoissonUpdateWorkload, Workload

MODES = ("soft_state", "forwarder")


@dataclass
class GatewayResult:
    """Measured outcome of a gateway run."""

    end_to_end_consistency: float
    gateway_consistency: float
    mean_remote_latency: float
    local_packets: int
    bottleneck_packets: int
    bottleneck_backlog_end: int
    mode: str
    bandwidth_bits: Dict[str, float] = field(default_factory=dict)


class GatewaySession:
    """Two bandwidth islands bridged by a (possibly soft-state) gateway."""

    def __init__(
        self,
        local_kbps: float = 100.0,
        bottleneck_kbps: float = 8.0,
        local_loss: float = 0.01,
        bottleneck_loss: float = 0.05,
        hot_share: float = 0.6,
        mode: str = "soft_state",
        update_rate: Optional[float] = None,
        lifetime_mean: float = 60.0,
        workload: Optional[Workload] = None,
        announce_interval: float = 0.25,
        seed: int = 0,
        tick: float = 1.0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if local_kbps <= 0 or bottleneck_kbps <= 0:
            raise ValueError("link rates must be positive")
        if not 0.0 < hot_share < 1.0:
            raise ValueError(f"hot_share must be in (0, 1), got {hot_share}")
        if announce_interval <= 0:
            raise ValueError(
                f"announce_interval must be positive, got {announce_interval}"
            )
        if workload is None:
            if update_rate is None:
                raise ValueError("provide either update_rate or workload")
            workload = PoissonUpdateWorkload(
                arrival_rate=update_rate,
                lifetime_mean=lifetime_mean,
                update_fraction=0.5,
            )
        self.env = Environment()
        self.rng = RngStreams(seed=seed)
        self.mode = mode
        self.workload = workload
        self.announce_interval = announce_interval
        self.tick = tick
        session_label = _obs.next_session_label()
        protocol = type(self).__name__
        self.ledger = BandwidthLedger(session=session_label, protocol=protocol)
        self.latency = LatencyRecorder(
            session=session_label, protocol=protocol
        )

        # Island A: publisher + fast local channel into the gateway.
        self.publisher = SoftStateTable("publisher")
        self.local_channel = Channel(
            self.env,
            local_kbps,
            loss=BernoulliLoss(local_loss, rng=self.rng["local-loss"]),
        )
        self.local_channel.subscribe(self._gateway_receive)

        # The gateway's own soft state.
        self.gateway_table = SoftStateTable("subscriber")

        # The bottleneck into island B.
        self.bottleneck = Channel(
            self.env,
            bottleneck_kbps,
            loss=BernoulliLoss(
                bottleneck_loss, rng=self.rng["bottleneck-loss"]
            ),
        )
        self.bottleneck.subscribe(self._remote_receive)
        self.remote_table = SoftStateTable("subscriber")

        # Gateway scheduling state (soft_state mode).
        self._hot: deque[Any] = deque()
        self._hot_set: set[Any] = set()
        self._cold: deque[Any] = deque()
        self._hot_share = hot_share
        self._hot_credit = 0.0
        self._wakeup = None

        # Island A announcement ring: insert() appends new keys, the
        # announcer cycles them and drops the dead ones as it pops.
        self._local_ring: deque[Any] = deque()

        self.meter: Optional[ConsistencyMeter] = None
        self.gateway_meter: Optional[ConsistencyMeter] = None
        self._last_observed = -math.inf

    # -- island A publisher actions (workload interface) ----------------------
    def insert(self, key: Any, value: Any, lifetime: float = math.inf) -> None:
        now = self.env.now
        record = self.publisher.put(key, value, now=now, lifetime=lifetime)
        self.latency.introduced(key, record.version, now)
        self._local_ring.append(key)
        if lifetime != math.inf:
            self._schedule_death(key, lifetime)
        self._observe()

    def update(self, key: Any, value: Any) -> None:
        now = self.env.now
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(now):
            return
        record.value = value
        record.version += 1
        record.last_refreshed = now
        self.latency.introduced(key, record.version, now)
        self._observe()

    def delete(self, key: Any) -> None:
        self._kill(key)

    def _schedule_death(self, key: Any, lifetime: float) -> None:
        # A bare Timeout + callback: one heap entry per record death
        # instead of the three events a generator process costs.
        self.env.timeout(lifetime).callbacks.append(
            lambda _event, key=key: self._kill(key)
        )

    def _kill(self, key: Any) -> None:
        record = self.publisher.get(key)
        if record is None:
            return
        self.latency.abandoned(key, record.version)
        self.publisher.delete(key)
        if hasattr(self.workload, "note_death"):
            self.workload.note_death(key)
        self._drop_gateway_key(key)
        self._observe()

    def _drop_gateway_key(self, key: Any) -> None:
        self._hot_set.discard(key)
        for queue in (self._hot, self._cold):
            try:
                queue.remove(key)
            except ValueError:
                pass

    # -- island A announcement loop --------------------------------------------
    def _local_announcer(self):
        """The publisher chatters its whole table on the fast channel.

        The announcement ring is maintained incrementally: ``insert``
        appends new keys, dead keys are dropped as they are popped, so
        every live key keeps its place in the cycle.
        """
        ring = self._local_ring
        while True:
            now = self.env.now
            self.publisher.expire(now)
            if not ring:
                yield self.env.timeout(self.announce_interval)
                continue
            key = ring.popleft()
            record = self.publisher.get(key)
            if record is None or not record.is_publisher_live(now):
                continue
            ring.append(key)
            packet = Packet(
                kind="announce",
                key=key,
                payload={
                    "key": key,
                    "value": record.value,
                    "version": record.version,
                    "expires_at": record.publisher_expiry,
                },
            )
            self.ledger.add("new", packet.size_bits)
            yield self.local_channel.transmit(packet)
            yield self.env.timeout(self.announce_interval / 10.0)

    # -- gateway -------------------------------------------------------------------
    def _gateway_receive(self, packet: Packet) -> None:
        payload = packet.payload
        now = self.env.now
        key = payload["key"]
        existing = self.gateway_table.get(key)
        fresh = existing is None or existing.version < payload["version"]
        self.gateway_table.put(
            key,
            payload["value"],
            now=now,
            version=payload["version"],
            hold_time=max(payload["expires_at"] - now, 1e-9),
        )
        self.gateway_table.expire(now)
        if self.mode == "forwarder":
            # Verbatim relay: every local announcement joins the FIFO.
            self.ledger.add("redundant", packet.size_bits)
            self.bottleneck.send(packet.copy_for("island-b"))
        elif fresh:
            # Soft state: a changed key owes exactly one hot transmission.
            if key not in self._hot_set:
                self._hot_set.add(key)
                self._hot.append(key)
                try:
                    self._cold.remove(key)
                except ValueError:
                    pass
            self._wake()
        self._observe()

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _gateway_sender(self):
        """Hot/cold re-announcement over the bottleneck (soft state)."""
        while True:
            key = self._next_key()
            if key is None:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            record = self.gateway_table.get(key)
            if record is None or not record.is_subscriber_live(self.env.now):
                self._drop_gateway_key(key)
                continue
            packet = Packet(
                kind="announce",
                key=key,
                payload={
                    "key": key,
                    "value": record.value,
                    "version": record.version,
                    "expires_at": record.subscriber_expiry,
                },
            )
            self.ledger.add("repair", packet.size_bits)
            yield self.bottleneck.transmit(packet)
            if self.gateway_table.get(key) is not None:
                self._cold.append(key)
            self._observe()

    def _next_key(self) -> Optional[Any]:
        # Deterministic proportional share via a credit counter.
        for _ in range(2):
            use_hot = self._hot and (
                self._hot_credit >= 0 or not self._cold
            )
            if use_hot:
                key = self._hot.popleft()
                self._hot_set.discard(key)
                self._hot_credit -= 1.0 - self._hot_share
                return key
            if self._cold:
                self._hot_credit += self._hot_share
                return self._cold.popleft()
        return None

    # -- island B ----------------------------------------------------------------------
    def _remote_receive(self, packet: Packet) -> None:
        payload = packet.payload
        now = self.env.now
        existing = self.remote_table.get(payload["key"])
        if (
            existing is None
            or existing.version < payload["version"]
            or not existing.is_subscriber_live(now)
        ):
            self.remote_table.put(
                payload["key"],
                payload["value"],
                now=now,
                version=payload["version"],
                hold_time=max(payload["expires_at"] - now, 1e-9),
            )
            self.latency.received(payload["key"], payload["version"], now)
        else:
            self.remote_table.refresh(payload["key"], now)
        self.remote_table.expire(now)
        self._observe()

    # -- metering ----------------------------------------------------------------------
    def _observe(self, force: bool = False) -> None:
        now = self.env.now
        if self.meter is None:
            return
        if not force and now - self._last_observed < self.tick / 2.0:
            return
        self._last_observed = now
        self.remote_table.expire(now)
        self.gateway_table.expire(now)
        self.meter.observe(now)
        self.gateway_meter.observe(now)

    def _ticker(self):
        while True:
            yield self.env.timeout(self.tick)
            self._observe()

    # -- running ------------------------------------------------------------------------
    def run(self, horizon: float, warmup: float = 0.0) -> GatewayResult:
        if horizon <= warmup:
            raise ValueError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        self.env.process(
            self.workload.run(self.env, self, self.rng["workload"])
        )
        self.env.process(self._local_announcer())
        if self.mode == "soft_state":
            self.env.process(self._gateway_sender())
        self.env.process(self._ticker())
        self.env.run(until=warmup)
        self.meter = ConsistencyMeter(
            self.publisher, [self.remote_table], start_time=warmup
        )
        self.gateway_meter = ConsistencyMeter(
            self.publisher, [self.gateway_table], start_time=warmup
        )
        self._observe(force=True)
        self.env.run(until=horizon)
        self._observe(force=True)
        return GatewayResult(
            end_to_end_consistency=self.meter.average(),
            gateway_consistency=self.gateway_meter.average(),
            mean_remote_latency=self.latency.mean(),
            local_packets=self.local_channel.packets_sent,
            bottleneck_packets=self.bottleneck.packets_sent,
            bottleneck_backlog_end=self.bottleneck.backlog,
            mode=self.mode,
            bandwidth_bits=self.ledger.as_dict(),
        )
