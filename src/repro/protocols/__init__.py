"""Soft-state protocol variants (Sections 3-5 of the paper).

* :mod:`repro.protocols.states` — the hot/cold/dead record state
  machine of Figure 7;
* :mod:`repro.protocols.queue_model` — an exact discrete-event twin of
  the Section 3 queueing model, for cross-validating the closed forms;
* :mod:`repro.protocols.base` — shared publisher/receiver machinery and
  the :class:`~repro.protocols.base.ProtocolResult` report;
* :mod:`repro.protocols.announce_listen` — the open-loop protocol
  (single FIFO announcement queue);
* :mod:`repro.protocols.two_queue` — Section 4: hot/cold transmission
  queues with proportional bandwidth sharing;
* :mod:`repro.protocols.feedback` — Section 5: receiver NACKs moving
  records back into the hot queue;
* :mod:`repro.protocols.arq` — a hard-state ACK/retransmit baseline;
* :mod:`repro.protocols.sharded` — receiver populations partitioned
  into shard-count-invariant slices for million-receiver sweeps
  (docs/SCALE.md).
"""

from repro.protocols.states import RecordState, RecordStateMachine
from repro.protocols.queue_model import QueueModelResult, QueueModelSim
from repro.protocols.base import ProtocolResult, SoftStateReceiver
from repro.protocols.announce_listen import OpenLoopSession
from repro.protocols.two_queue import (
    RateCappedTwoQueueSession,
    TwoQueueSession,
)
from repro.protocols.feedback import FeedbackSession
from repro.protocols.arq import ArqResult, ArqSession
from repro.protocols.gateway import GatewayResult, GatewaySession
from repro.protocols.multicast import (
    MulticastFeedbackSession,
    MulticastResult,
)
from repro.protocols.sharded import (
    ScaleListenerSession,
    ShardedMulticastSession,
)

__all__ = [
    "ArqResult",
    "ArqSession",
    "FeedbackSession",
    "GatewayResult",
    "GatewaySession",
    "MulticastFeedbackSession",
    "MulticastResult",
    "OpenLoopSession",
    "ProtocolResult",
    "QueueModelResult",
    "QueueModelSim",
    "RateCappedTwoQueueSession",
    "RecordState",
    "RecordStateMachine",
    "ScaleListenerSession",
    "ShardedMulticastSession",
    "SoftStateReceiver",
    "TwoQueueSession",
]
