"""An exact discrete-event twin of the Section 3 queueing model.

This simulator reproduces the paper's analytic model *literally*: a
single FIFO queue with exponential service at rate ``mu``; Poisson
record arrivals at rate ``lam`` entering in the "inconsistent" class;
per-service independent loss (probability ``p_loss``) and death
(probability ``p_death``); surviving records re-enter the queue tail in
the class given by Table 1.

It exists to *validate the closed forms against simulation*: the
measured time-average of n_C / (n_I + n_C) (counting empty instants as
zero) must match ``expected_consistency``, and the fraction of services
spent on consistent records must match ``redundant_bandwidth_fraction``.
The integration tests do exactly that comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.des import Environment, RngStreams, Store


@dataclass(frozen=True)
class QueueModelResult:
    """Measured statistics of one simulation run."""

    consistency: float
    redundant_fraction: float
    mean_receive_latency: float
    receipt_fraction: float
    services: int
    arrivals: int
    deaths: int
    mean_queue_length: float
    #: Empirical Table 1: {"I": {"I": n, "C": n, "exit": n}, "C": {...}}.
    transitions: "dict[str, dict[str, int]]" = None  # type: ignore[assignment]

    def transition_probabilities(self) -> "dict[str, dict[str, float]]":
        """Row-normalized empirical state-change probabilities."""
        result: dict[str, dict[str, float]] = {}
        for src, row in (self.transitions or {}).items():
            total = sum(row.values())
            result[src] = {
                dst: (count / total if total else 0.0)
                for dst, count in row.items()
            }
        return result


class _Job:
    """One record circulating through the queue."""

    __slots__ = ("consistent", "arrived_at", "received_at")

    def __init__(self, arrived_at: float) -> None:
        self.consistent = False
        self.arrived_at = arrived_at
        self.received_at: Optional[float] = None


class QueueModelSim:
    """Simulate the open-loop announce/listen queueing model."""

    def __init__(
        self,
        update_rate: float,
        channel_rate: float,
        p_loss: float,
        p_death: float,
        seed: int = 0,
        deterministic_service: bool = False,
    ) -> None:
        if update_rate <= 0:
            raise ValueError(f"update_rate must be positive, got {update_rate}")
        if channel_rate <= 0:
            raise ValueError(
                f"channel_rate must be positive, got {channel_rate}"
            )
        if not 0.0 <= p_loss <= 1.0:
            raise ValueError(f"p_loss must be in [0, 1], got {p_loss}")
        if not 0.0 < p_death <= 1.0:
            raise ValueError(f"p_death must be in (0, 1], got {p_death}")
        self.update_rate = update_rate
        self.channel_rate = channel_rate
        self.p_loss = p_loss
        self.p_death = p_death
        self.seed = seed
        self.deterministic_service = deterministic_service

    def run(self, horizon: float, warmup: float = 0.0) -> QueueModelResult:
        """Simulate for ``horizon`` seconds (statistics skip ``warmup``)."""
        if horizon <= warmup:
            raise ValueError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        env = Environment()
        rng = RngStreams(seed=self.seed)
        queue: Store = Store(env)
        state = _Stats(warmup)

        def arrivals():
            while True:
                yield env.timeout(
                    rng["arrivals"].expovariate(self.update_rate)
                )
                state.note_change(env.now)
                job = _Job(env.now)
                state.arrivals += 1
                state.n_inconsistent += 1
                queue.put(job)

        def server():
            service_rng = rng["service"]
            loss_rng = rng["loss"]
            death_rng = rng["death"]
            while True:
                job = yield queue.get()
                if self.deterministic_service:
                    yield env.timeout(1.0 / self.channel_rate)
                else:
                    yield env.timeout(
                        service_rng.expovariate(self.channel_rate)
                    )
                state.note_change(env.now)
                state.services += 1
                entered_consistent = job.consistent
                if job.consistent:
                    state.redundant_services += 1
                lost = loss_rng.random() < self.p_loss
                died = death_rng.random() < self.p_death
                if not lost and not job.consistent:
                    job.consistent = True
                    job.received_at = env.now
                    state.n_inconsistent -= 1
                    state.n_consistent += 1
                    if env.now >= warmup:
                        state.latencies.append(env.now - job.arrived_at)
                source = "C" if entered_consistent else "I"
                target = (
                    "exit" if died else ("C" if job.consistent else "I")
                )
                state.transitions[source][target] += 1
                if died:
                    state.deaths += 1
                    if job.consistent:
                        state.n_consistent -= 1
                    else:
                        state.n_inconsistent -= 1
                        state.never_received += 1
                else:
                    queue.put(job)

        env.process(arrivals())
        env.process(server())
        env.run(until=horizon)
        state.note_change(horizon)
        return state.result()


class _Stats:
    """Time-weighted accumulators for the queue-model run."""

    def __init__(self, warmup: float) -> None:
        self.warmup = warmup
        self.n_inconsistent = 0
        self.n_consistent = 0
        self.last_time = warmup
        self.consistency_integral = 0.0
        self.queue_integral = 0.0
        self.duration = 0.0
        self.arrivals = 0
        self.services = 0
        self.redundant_services = 0
        self.deaths = 0
        self.never_received = 0
        self.latencies: list[float] = []
        self.transitions = {
            "I": {"I": 0, "C": 0, "exit": 0},
            "C": {"I": 0, "C": 0, "exit": 0},
        }

    def note_change(self, now: float) -> None:
        """Fold the elapsed interval in *before* applying a state change."""
        if now <= self.warmup:
            return
        start = max(self.last_time, self.warmup)
        interval = now - start
        if interval > 0:
            total = self.n_inconsistent + self.n_consistent
            value = self.n_consistent / total if total > 0 else 0.0
            self.consistency_integral += value * interval
            self.queue_integral += total * interval
            self.duration += interval
        self.last_time = now

    def result(self) -> QueueModelResult:
        received = len(self.latencies)
        finished = received + self.never_received
        return QueueModelResult(
            consistency=(
                self.consistency_integral / self.duration
                if self.duration
                else 0.0
            ),
            redundant_fraction=(
                self.redundant_services / self.services
                if self.services
                else 0.0
            ),
            mean_receive_latency=(
                sum(self.latencies) / received if received else math.nan
            ),
            receipt_fraction=(
                received / finished if finished else math.nan
            ),
            services=self.services,
            arrivals=self.arrivals,
            deaths=self.deaths,
            mean_queue_length=(
                self.queue_integral / self.duration if self.duration else 0.0
            ),
            transitions={
                src: dict(row) for src, row in self.transitions.items()
            },
        )
