"""Shared machinery for protocol-level simulations.

Each protocol variant is packaged as a *session*: a publisher table
driven by a workload, a lossy data channel, one receiver, and the
metrics plumbing (consistency meter, latency recorder, bandwidth
ledger).  Sessions differ only in how the sender schedules
announcements and how (whether) the receiver feeds back.

The common lifecycle is::

    session = TwoQueueSession(...parameters...)
    result = session.run(horizon=2000.0, warmup=200.0)

``run`` executes the simulation and returns a :class:`ProtocolResult`.
Consistency statistics exclude the warmup interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core import (
    BandwidthLedger,
    ConsistencyMeter,
    FaultReport,
    LatencyRecorder,
    RecoveryTracker,
    SoftStateTable,
)
from repro.des import Environment, Interrupt, RngStreams, SimulationError
from repro.faults import FaultInjector, sender_side
from repro.net import (
    BernoulliLoss,
    Channel,
    CombinedLoss,
    LossModel,
    Packet,
    TotalLoss,
)
from repro.obs import runtime as _obs
from repro.obs.trace import RECORD as _RECORD, RUN as _RUN
from repro.workloads import PoissonUpdateWorkload, Workload


@dataclass
class ProtocolResult:
    """Measured outcome of one protocol session run."""

    consistency: float
    mean_receive_latency: float
    latency_p95: float
    redundant_fraction: float
    data_packets: int
    delivered_packets: int
    observed_loss_rate: float
    feedback_packets: int = 0
    nacks_sent: int = 0
    nacks_delivered: int = 0
    duration: float = 0.0
    live_records: int = 0
    bandwidth_bits: Dict[str, float] = field(default_factory=dict)
    consistency_series: List[Tuple[float, float]] = field(default_factory=list)
    fault_reports: List[FaultReport] = field(default_factory=list)
    false_expiries: int = 0

    def as_row(self) -> Dict[str, float]:
        return {
            "consistency": self.consistency,
            "latency": self.mean_receive_latency,
            "redundant_fraction": self.redundant_fraction,
            "loss": self.observed_loss_rate,
        }


class SoftStateReceiver:
    """A subscriber: mirrors the table, detects losses by sequence gaps.

    Announcement packets carry ``(key, value, version, expires_at,
    repairs)``.  The receiver refreshes its copy, clears repaired gaps,
    and reports newly detected gaps to an optional ``on_gap`` callback
    (installed by the feedback protocol to emit NACKs).
    """

    def __init__(
        self,
        env: Environment,
        latency: LatencyRecorder,
        on_event=None,
        hold_multiple: Optional[float] = None,
        announce_interval_hint: Optional[float] = None,
        refresh_estimator=None,
    ) -> None:
        self.env = env
        self.table = SoftStateTable("subscriber")
        self.latency = latency
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        #: Optional scalable-timers estimator (repro.sstp.timers): when
        #: set, hold times come from measured refresh intervals instead
        #: of a static announce_interval_hint.
        self.refresh_estimator = refresh_estimator
        self._on_event = on_event
        self.on_gap = None
        #: Optional callback invoked with every delivered packet
        #: (used by the ARQ baseline to emit per-packet ACKs).
        self.on_deliver = None
        self.hold_multiple = hold_multiple
        self.announce_interval_hint = announce_interval_hint
        self._next_seq = 0
        self.missing_seqs: set[int] = set()
        #: Bound on tracked holes: under hot-queue starvation losses
        #: outpace repairs indefinitely, and an unbounded set would turn
        #: the retry sweep quadratic.  Oldest holes are dropped first —
        #: the periodic cold announcements repair those eventually anyway.
        self.max_missing = 10000
        self.duplicates = 0
        self.receptions = 0

    def _hold_time(self, key: Any, expires_at: float) -> float:
        """Receiver-side expiry: publisher-announced death time, and
        optionally a soft-state timer of ``hold_multiple`` announcement
        intervals (the Sharma et al. scalable-timers knob) — either a
        static hint or a measured estimate."""
        hold = max(expires_at - self.env.now, 1e-9)
        if self.refresh_estimator is not None:
            return min(hold, self.refresh_estimator.hold_time(key))
        if self.hold_multiple is not None:
            if self.announce_interval_hint is None:
                raise ValueError(
                    "hold_multiple requires announce_interval_hint"
                )
            hold = min(
                hold, self.hold_multiple * self.announce_interval_hint
            )
        return hold

    def deliver(self, packet: Packet) -> None:
        """Channel sink for data packets."""
        self.receptions += 1
        payload = packet.payload
        now = self.env.now
        # Gap detection on the channel sequence number.
        if packet.seq is not None:
            if packet.seq >= self._next_seq:
                new_missing = set(range(self._next_seq, packet.seq))
                self._next_seq = packet.seq + 1
                if new_missing:
                    self.missing_seqs |= new_missing
                    if len(self.missing_seqs) > self.max_missing:
                        for stale in sorted(self.missing_seqs)[
                            : len(self.missing_seqs) - self.max_missing
                        ]:
                            self.missing_seqs.discard(stale)
                    if self.on_gap is not None:
                        self.on_gap(sorted(new_missing))
            # Clear any gaps this packet explicitly repairs.
            for repaired in payload.get("repairs", ()):
                self.missing_seqs.discard(repaired)

        key = payload["key"]
        version = payload["version"]
        if self.refresh_estimator is not None:
            self.refresh_estimator.observe(key, now)
        existing = self.table.get(key)
        if (
            existing is not None
            and existing.version >= version
            and existing.is_subscriber_live(now)
        ):
            self.duplicates += 1
            self.table.refresh(key, now)
            if self.refresh_estimator is not None:
                existing.hold_time = self._hold_time(
                    key, payload["expires_at"]
                )
                # Direct timer shrink bypasses put(); keep the table's
                # lazy-expiry bound conservative.
                self.table.bound_expiry(
                    existing.last_refreshed + existing.hold_time
                )
            tr = self._trace
            if tr is not None and tr.record:
                # ``hold`` is the timer actually granted — the spec
                # checker derives each record's true expiry deadline
                # from (refresh time, hold) pairs.
                tr.emit(
                    _RECORD,
                    "refresh_received",
                    now,
                    key=key,
                    version=existing.version,
                    hold=existing.hold_time,
                    table=self.table.trace_id,
                )
        else:
            stored = self.table.put(
                key,
                payload["value"],
                now=now,
                version=version,
                hold_time=self._hold_time(key, payload["expires_at"]),
            )
            self.latency.received(key, version, now)
            tr = self._trace
            if tr is not None and tr.record:
                tr.emit(
                    _RECORD,
                    "refresh_received",
                    now,
                    key=key,
                    version=stored.version,
                    hold=stored.hold_time,
                    table=self.table.trace_id,
                )
        self.table.expire(now)
        if self.on_deliver is not None:
            self.on_deliver(packet)
        if self._on_event is not None:
            self._on_event(now)

    def expire_now(self) -> None:
        self.table.expire(self.env.now)


class BaseSession:
    """Common state and helpers for the soft-state protocol sessions."""

    def __init__(
        self,
        data_kbps: float,
        loss_rate: float = 0.0,
        update_rate: Optional[float] = None,
        lifetime_mean: float = 20.0,
        workload: Optional[Workload] = None,
        seed: int = 0,
        loss_model: Optional[LossModel] = None,
        hold_multiple: Optional[float] = None,
        refresh_estimator=None,
        tick: float = 1.0,
        record_series: bool = False,
        empty_policy: str = "zero",
        faults=None,
    ) -> None:
        if data_kbps <= 0:
            raise ValueError(f"data_kbps must be positive, got {data_kbps}")
        if workload is None:
            if update_rate is None:
                raise ValueError("provide either update_rate or workload")
            workload = PoissonUpdateWorkload(
                arrival_rate=update_rate, lifetime_mean=lifetime_mean
            )
        self.env = Environment()
        self.rng = RngStreams(seed=seed)
        self.data_kbps = data_kbps
        self.workload = workload
        self.tick = tick
        self.record_series = record_series
        self.empty_policy = empty_policy

        loss = loss_model
        if loss is None:
            loss = BernoulliLoss(loss_rate, rng=self.rng["loss"])
        self.data_channel = Channel(self.env, data_kbps, loss=loss)

        self.publisher = SoftStateTable("publisher")
        # Deterministic per-cell session label ("s0", "s1", ...) keys
        # this session's series in the ambient metric registry.
        session_label = _obs.next_session_label()
        self._session_label = session_label
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        protocol = type(self).__name__
        self.latency = LatencyRecorder(
            session=session_label, protocol=protocol
        )
        self.ledger = BandwidthLedger(session=session_label, protocol=protocol)
        self.receiver = SoftStateReceiver(
            self.env,
            self.latency,
            on_event=self._observe,
            hold_multiple=hold_multiple,
            announce_interval_hint=self._announce_interval_hint(),
            refresh_estimator=refresh_estimator,
        )
        self.data_channel.subscribe(self._deliver_data)

        self.meter: Optional[ConsistencyMeter] = None
        self._last_observe = -math.inf
        self._seq = 0
        self._seq_to_key: Dict[int, Tuple[Any, int]] = {}
        self._wakeup = None
        self._first_tx_done: set[Tuple[Any, int]] = set()
        self.nacks_sent = 0
        self.nacks_delivered = 0

        #: Fault-injection state.  A schedule forces series recording
        #: (recovery analysis needs the consistency time series) and
        #: hooks receiver-side expirations for false-expiry counting.
        self.faults = faults
        self.fault_tracker: Optional[RecoveryTracker] = None
        if faults is not None:
            self.fault_tracker = RecoveryTracker()
            self.record_series = True
            self.receiver.table.on_expire(self._note_receiver_expiry)
        self.sender_process = None
        self._receiver_attached = True
        self._partition_token = None

    # -- subclass responsibilities ---------------------------------------------
    def _enqueue_new(self, key: Any) -> None:
        """Place a newly inserted/updated record for transmission."""
        raise NotImplementedError

    def _dequeue_next(self):
        """Pick the next record key to announce, or None when idle."""
        raise NotImplementedError

    def _after_service(self, key: Any, lost: bool) -> None:
        """Post-transmission bookkeeping (re-enqueue, state machine)."""
        raise NotImplementedError

    def _drop_from_queues(self, key: Any) -> None:
        """Remove a dying record from all transmission queues."""
        raise NotImplementedError

    def _clear_queues(self) -> None:
        """Empty every transmission queue (cold sender restart)."""
        raise NotImplementedError

    def _requeue_missing(self, key: Any) -> None:
        """Ensure a live record is scheduled again (warm sender restart).

        The default treats it like a fresh insert; schedulers that would
        be distorted by a full-table burst (e.g. the two-queue HOT list)
        override this to requeue only records not already scheduled.
        """
        self._enqueue_new(key)

    def _announce_interval_hint(self) -> Optional[float]:
        """Expected per-record announcement interval (for hold timers)."""
        return None

    def feedback_packets_count(self) -> int:
        return 0

    # -- publisher actions (workload-facing) -------------------------------------
    def insert(self, key: Any, value: Any, lifetime: float = math.inf) -> None:
        now = self.env.now
        record = self.publisher.put(key, value, now=now, lifetime=lifetime)
        self.latency.introduced(key, record.version, now)
        self._enqueue_new(key)
        if lifetime != math.inf:
            self._schedule_death(key, lifetime)
        self._observe(now)
        self._wake_sender()

    def update(self, key: Any, value: Any) -> None:
        now = self.env.now
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(now):
            return
        record.value = value
        record.version += 1
        record.last_refreshed = now
        self.latency.introduced(key, record.version, now)
        self._first_tx_done.discard((key, record.version))
        self._enqueue_new(key)
        self._observe(now)
        self._wake_sender()

    def delete(self, key: Any) -> None:
        self._kill(key)

    # -- internals -----------------------------------------------------------------
    def _schedule_death(self, key: Any, lifetime: float) -> None:
        # A bare Timeout + callback: one heap entry per record death
        # instead of the three events a generator process costs.
        self.env.timeout(lifetime).callbacks.append(
            lambda _event, key=key: self._kill(key)
        )

    def _kill(self, key: Any) -> None:
        record = self.publisher.get(key)
        if record is None:
            return
        self.latency.abandoned(key, record.version)
        self.publisher.delete(key)
        self._drop_from_queues(key)
        if hasattr(self.workload, "note_death"):
            self.workload.note_death(key)
        # The receiver's copy expires on its own announced timer (the
        # paper's synchronized elimination from both tables).
        self._observe(self.env.now)

    def _wake_sender(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _observe(self, now: float, force: bool = False) -> None:
        """Sample the consistency meter.

        A sample costs O(live records); event-driven sampling at packet
        rate makes large simulations quadratic-feeling, so samples are
        rate-limited to every ``tick/4`` seconds (the run start/end are
        forced).  With live sets of hundreds of records the sampled
        time-average matches the exact one to well under 0.01.
        """
        if self.meter is None:
            return
        if not force and now - self._last_observe < self.tick / 4.0:
            return
        self._last_observe = now
        self.receiver.table.expire(now)
        self.meter.observe(now)
        tr = self._trace
        if tr is not None and tr.run:
            tr.emit(
                _RUN,
                "consistency_sample",
                now,
                value=self.meter._effective_value(self.meter._last_value),
                session=self._session_label,
            )

    def _make_packet(self, key: Any, repairs: Tuple[int, ...] = ()) -> Packet:
        record = self.publisher.get(key)
        seq = self._seq
        self._seq += 1
        self._seq_to_key[seq] = (key, record.version)
        # Bound the seq map: old entries are useless once repaired/expired.
        if len(self._seq_to_key) > 100000:
            for stale in sorted(self._seq_to_key)[:50000]:
                del self._seq_to_key[stale]
        return Packet(
            kind="announce",
            key=key,
            seq=seq,
            payload={
                "key": key,
                "value": record.value,
                "version": record.version,
                "expires_at": record.publisher_expiry,
                "repairs": repairs,
            },
        )

    def _account_transmission(self, key: Any, packet: Packet) -> None:
        """Classify the transmission for the bandwidth ledger
        (omniscient view, as a simulator may have)."""
        record = self.publisher.get(key)
        identity = (key, record.version)
        mirror = self.receiver.table.get(key)
        if identity not in self._first_tx_done:
            self._first_tx_done.add(identity)
            category = "new"
        elif (
            mirror is not None
            and mirror.version >= record.version
            and mirror.is_subscriber_live(self.env.now)
        ):
            category = "redundant"
        else:
            category = "repair"
        self.ledger.add(category, packet.size_bits)

    def _sender_loop(self):
        while True:
            try:
                while True:
                    self.publisher.expire(self.env.now)
                    key = self._dequeue_next()
                    if key is None:
                        self._wakeup = self.env.event()
                        yield self._wakeup
                        self._wakeup = None
                        continue
                    record = self.publisher.get(key)
                    if record is None or not record.is_publisher_live(
                        self.env.now
                    ):
                        continue
                    packet = self._make_packet(key)
                    self._account_transmission(key, packet)
                    record.announcements += 1
                    lost = yield self.data_channel.transmit(packet)
                    self._observe(self.env.now)
                    self._after_service(key, lost)
            except Interrupt as interrupt:
                yield from self._crashed_sender(interrupt.cause)

    # -- fault support -------------------------------------------------------------
    def _deliver_data(self, packet: Packet) -> None:
        """Channel sink: gate deliveries on receiver membership.

        A receiver taken down by churn or a crash simply stops hearing
        announcements; its soft state then ages out on its own timers.
        """
        if self._receiver_attached:
            self.receiver.deliver(packet)

    def _note_receiver_expiry(self, record, now: float) -> None:
        """Count receiver expirations of data the publisher still holds.

        This is the scalable-timers false-sharing cost: with a small
        hold multiple, a crashed (but recovering) sender looks dead and
        receivers discard perfectly valid state.
        """
        if self.fault_tracker is None:
            return
        mine = self.publisher.get(record.key)
        if mine is not None and mine.is_publisher_live(now):
            self.fault_tracker.note_false_expiry(now, record.key)

    def _crashed_sender(self, crash):
        """Resumed inside the sender process after an interrupt."""
        self._wakeup = None
        if getattr(crash, "cold", False):
            self._lose_publisher_state()
        yield self.env.timeout(crash.down_for)
        self._restart_sender()
        self._observe(self.env.now, force=True)

    def _restart_sender(self) -> None:
        """Warm restart: rescan the surviving table into the queues."""
        for record in self.publisher.live_records(self.env.now):
            self._requeue_missing(record.key)

    def _lose_publisher_state(self) -> None:
        """Cold restart: the publisher table itself is gone."""
        for record in list(self.publisher):
            self.latency.abandoned(record.key, record.version)
            if hasattr(self.workload, "note_death"):
                self.workload.note_death(record.key)
        self.publisher.clear()
        self._clear_queues()

    # Hooks consumed by repro.faults (duck-typed; absence of a hook
    # means the session rejects that fault class).
    def fault_crash_sender(self, crash) -> None:
        """Interrupt the sender process for ``crash.down_for`` seconds."""
        if self.sender_process is None:
            raise SimulationError(
                "session is not running; there is no sender to crash"
            )
        self.sender_process.interrupt(crash)

    def _fault_channels(self) -> List[Channel]:
        """Every channel severed by an outage or partition."""
        return [self.data_channel]

    def _fault_data_channels(self) -> List[Channel]:
        """Forward-path channels overlaid by a loss episode."""
        return [self.data_channel]

    def fault_outage_begin(self):
        token = []
        for channel in self._fault_channels():
            token.append((channel, channel.loss))
            channel.loss = TotalLoss()
        return token

    def fault_outage_end(self, token) -> None:
        for channel, loss in token:
            channel.loss = loss

    def fault_loss_overlay(self, make_model):
        token = []
        for channel in self._fault_data_channels():
            token.append((channel, channel.loss))
            channel.loss = CombinedLoss([channel.loss, make_model()])
        return token

    def fault_loss_restore(self, token) -> None:
        for channel, loss in token:
            channel.loss = loss

    def fault_receiver_ids(self) -> List[Any]:
        return ["receiver"]

    def fault_receiver_leave(self, receiver_id: Any, cold: bool = True) -> None:
        self._receiver_attached = False
        if cold:
            # Not an expiry: the receiver lost its state, it did not
            # time anything out, so no false-expiry events fire.
            self.receiver.table.clear()
        self._observe(self.env.now, force=True)

    def fault_receiver_rejoin(self, receiver_id: Any) -> None:
        self._receiver_attached = True
        # Sequence numbering restarts from "now": everything missed
        # while away is not a gap to NACK, it is simply unknown state
        # to be relearned from the announcement stream.
        self.receiver._next_seq = self._seq
        self.receiver.missing_seqs.clear()
        self._observe(self.env.now, force=True)

    def fault_partition_begin(self, groups) -> None:
        if "receiver" in sender_side(groups):
            self._partition_token = None
        else:
            self._partition_token = self.fault_outage_begin()

    def fault_partition_end(self) -> None:
        if self._partition_token is not None:
            self.fault_outage_end(self._partition_token)
            self._partition_token = None

    def _ticker(self):
        while True:
            yield self.env.timeout(self.tick)
            self._observe(self.env.now)

    # -- running -------------------------------------------------------------------
    def run(self, horizon: float, warmup: float = 0.0) -> ProtocolResult:
        if horizon <= warmup:
            raise ValueError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        #: Kept so failure-injection tests can interrupt the workload
        #: (e.g. to model a publisher crash that stops all updates).
        self.workload_process = self.env.process(
            self.workload.run(self.env, self, self.rng["workload"])
        )
        self.sender_process = self.env.process(self._sender_loop())
        self.env.process(self._ticker())
        self._start_extra_processes()
        if self.faults is not None:
            FaultInjector(self, self.faults, self.fault_tracker).start(
                horizon=horizon
            )
        self.env.run(until=warmup)
        self.meter = ConsistencyMeter(
            self.publisher,
            [self.receiver.table],
            empty_policy=self.empty_policy,
            start_time=warmup,
        )
        if self.record_series:
            self.meter.enable_series()
        self._observe(warmup, force=True)  # seed the meter at warmup
        self.env.run(until=horizon)
        self._observe(horizon, force=True)
        return self._result(horizon - warmup)

    def _start_extra_processes(self) -> None:
        """Hook for subclasses (feedback loops, report timers)."""

    def _result(self, duration: float) -> ProtocolResult:
        channel = self.data_channel
        return ProtocolResult(
            consistency=self.meter.average(),
            mean_receive_latency=self.latency.mean(),
            latency_p95=self.latency.percentile(95),
            redundant_fraction=self.ledger.redundant_fraction(),
            data_packets=channel.packets_sent,
            delivered_packets=channel.packets_delivered,
            observed_loss_rate=channel.observed_loss_rate,
            feedback_packets=self.feedback_packets_count(),
            nacks_sent=self.nacks_sent,
            nacks_delivered=self.nacks_delivered,
            duration=duration,
            live_records=len(self.publisher.live_records(self.env.now)),
            bandwidth_bits=self.ledger.as_dict(),
            consistency_series=(
                self.meter.running_average_series()
                if self.record_series
                else []
            ),
            fault_reports=(
                self.fault_tracker.analyze(self.meter.series)
                if self.fault_tracker is not None
                else []
            ),
            false_expiries=(
                self.fault_tracker.false_expiries
                if self.fault_tracker is not None
                else 0
            ),
        )
