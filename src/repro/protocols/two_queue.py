"""The two-transmission-queue schemes (Section 4).

Two variants:

* :class:`TwoQueueSession` — one data channel whose bandwidth is shared
  *proportionally* between hot and cold queues (work-conserving, the
  paper's preferred arrangement for Figure 5);
* :class:`RateCappedTwoQueueSession` — hot and cold each get a strict
  rate cap with no borrowing (separate serializers).  Figure 6's sweep
  "increasing mu_cold (and hence mu_data) while maintaining mu_hot just
  above the arrival rate" needs this variant: with borrowing, idle hot
  bandwidth would flow to cold and erase the mu_cold axis.

The sender differentiates new from old data: a "hot" (foreground) queue
carries records never yet transmitted (or just updated), and a "cold"
(background) queue cycles through everything transmitted at least once.
In the proportional variant the paper suggests lottery scheduling, WFQ,
or stride scheduling; all are available here.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Dict, Optional

from repro.des import Interrupt
from repro.net import BernoulliLoss, Channel
from repro.protocols.base import BaseSession, ProtocolResult
from repro.protocols.states import RecordState, RecordStateMachine
from repro.sched import (
    DrrScheduler,
    LotteryScheduler,
    Scheduler,
    StrideScheduler,
    WfqScheduler,
)

HOT = "hot"
COLD = "cold"

_SCHEDULERS = {
    "stride": lambda rng: StrideScheduler(),
    "lottery": lambda rng: LotteryScheduler(rng=rng),
    "wfq": lambda rng: WfqScheduler(),
    "drr": lambda rng: DrrScheduler(),
}


def make_scheduler(name: str, rng: random.Random) -> Scheduler:
    """Build one of the proportional-share schedulers by name."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None
    return factory(rng)


class TwoQueueSession(BaseSession):
    """Hot/cold scheduling of announcements.

    ``hot_share`` is the fraction of the data bandwidth allocated to the
    hot queue (the paper's mu_hot / mu_data); the remainder drives cold
    background retransmissions.
    """

    def __init__(
        self,
        hot_share: float = 0.5,
        scheduler: str = "stride",
        **kwargs,
    ) -> None:
        if not 0.0 < hot_share < 1.0:
            raise ValueError(
                f"hot_share must be in (0, 1), got {hot_share}"
            )
        super().__init__(**kwargs)
        self.hot_share = hot_share
        self.scheduler_name = scheduler
        self.scheduler = make_scheduler(scheduler, self.rng["scheduler"])
        self.scheduler.add_class(HOT, weight=hot_share)
        self.scheduler.add_class(COLD, weight=1.0 - hot_share)
        #: Where each live key currently sits (HOT/COLD), if queued.
        self._location: Dict[Any, str] = {}
        self.machines: Dict[Any, RecordStateMachine] = {}

    @property
    def hot_kbps(self) -> float:
        return self.hot_share * self.data_kbps

    @property
    def cold_kbps(self) -> float:
        return (1.0 - self.hot_share) * self.data_kbps

    def set_hot_share(self, hot_share: float) -> None:
        """Re-tune the hot/cold split mid-run (allocator hook)."""
        if not 0.0 < hot_share < 1.0:
            raise ValueError(f"hot_share must be in (0, 1), got {hot_share}")
        self.hot_share = hot_share
        self.scheduler.set_weight(HOT, hot_share)
        self.scheduler.set_weight(COLD, 1.0 - hot_share)

    # -- queue management --------------------------------------------------------
    def _enqueue_new(self, key: Any) -> None:
        location = self._location.get(key)
        if location == HOT:
            return  # already awaiting a hot transmission
        if location == COLD:
            # An updated record is new data again: promote it.
            self.scheduler.remove(COLD, key)
        machine = self.machines.get(key)
        if machine is None:
            machine = RecordStateMachine()
            self.machines[key] = machine
        elif machine.state is RecordState.COLD:
            machine.on_nack()  # reuse the COLD->HOT edge for promotion
        self.scheduler.enqueue(HOT, key)
        self._location[key] = HOT

    def _dequeue_next(self) -> Optional[Any]:
        while True:
            entry = self.scheduler.dequeue()
            if entry is None:
                return None
            _, key = entry
            self._location.pop(key, None)
            record = self.publisher.get(key)
            if record is not None and record.is_publisher_live(self.env.now):
                return key

    def _after_service(self, key: Any, lost: bool) -> None:
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(self.env.now):
            return
        machine = self.machines[key]
        machine.on_transmitted()
        if self._location.get(key) == HOT:
            return  # an update raced in and re-queued it hot
        self.scheduler.enqueue(COLD, key)
        self._location[key] = COLD

    def _drop_from_queues(self, key: Any) -> None:
        location = self._location.pop(key, None)
        if location is not None:
            self.scheduler.remove(location, key)
        machine = self.machines.pop(key, None)
        if machine is not None:
            machine.on_death()

    def _clear_queues(self) -> None:
        for key, location in list(self._location.items()):
            self.scheduler.remove(location, key)
        self._location.clear()
        for machine in self.machines.values():
            machine.on_death()
        self.machines.clear()

    def _requeue_missing(self, key: Any) -> None:
        # A warm restart must not promote the whole table to HOT (that
        # would let the foreground queue mask the crash); unscheduled
        # survivors rejoin the background cycle and recover at cold
        # speed — O(refresh interval), the paper's claim.
        if key in self._location:
            return
        machine = self.machines.get(key)
        if machine is None:
            self._enqueue_new(key)
            return
        self.scheduler.enqueue(COLD, key)
        self._location[key] = COLD


class RateCappedTwoQueueSession(BaseSession):
    """Hot and cold queues with strict, independent rate caps.

    The base session's data channel serves as the hot path
    (``hot_kbps``); a second serializer carries the cold ring at
    ``cold_kbps`` with no borrowing in either direction.  ``cold_kbps``
    may be zero, modelling the paper's "data items are never
    retransmitted" endpoint of Figure 6.
    """

    def __init__(
        self,
        hot_kbps: float,
        cold_kbps: float,
        loss_rate: float = 0.0,
        **kwargs,
    ) -> None:
        if cold_kbps < 0:
            raise ValueError(f"cold_kbps must be non-negative, got {cold_kbps}")
        super().__init__(data_kbps=hot_kbps, loss_rate=loss_rate, **kwargs)
        self.hot_kbps = hot_kbps
        self.cold_kbps = cold_kbps
        self.cold_channel: Optional[Channel] = None
        if cold_kbps > 0:
            self.cold_channel = Channel(
                self.env,
                cold_kbps,
                loss=BernoulliLoss(loss_rate, rng=self.rng["cold-loss"]),
            )
            self.cold_channel.subscribe(self._deliver_data)
        self._hot_queue: deque[Any] = deque()
        self._cold_ring: deque[Any] = deque()
        self._cold_wakeup = None
        self._cold_process = None

    # -- hot path (runs inside the base sender loop) -------------------------
    def _enqueue_new(self, key: Any) -> None:
        if key not in self._hot_queue:
            self._hot_queue.append(key)

    def _dequeue_next(self) -> Optional[Any]:
        now = self.env.now
        while self._hot_queue:
            key = self._hot_queue.popleft()
            record = self.publisher.get(key)
            if record is not None and record.is_publisher_live(now):
                return key
        return None

    def _after_service(self, key: Any, lost: bool) -> None:
        record = self.publisher.get(key)
        if record is None or not record.is_publisher_live(self.env.now):
            return
        self._cold_ring.append(key)
        if self._cold_wakeup is not None and not self._cold_wakeup.triggered:
            self._cold_wakeup.succeed()

    def _drop_from_queues(self, key: Any) -> None:
        for queue in (self._hot_queue, self._cold_ring):
            try:
                queue.remove(key)
            except ValueError:
                pass

    def _clear_queues(self) -> None:
        self._hot_queue.clear()
        self._cold_ring.clear()

    def _requeue_missing(self, key: Any) -> None:
        # Survivors of a warm restart resume background cycling; only
        # genuinely unscheduled records re-enter, and via the cold ring
        # rather than the (strictly capped) hot path.
        if key in self._hot_queue or key in self._cold_ring:
            return
        self._cold_ring.append(key)
        if self._cold_wakeup is not None and not self._cold_wakeup.triggered:
            self._cold_wakeup.succeed()

    # -- fault support -----------------------------------------------------------
    def _fault_channels(self):
        channels = super()._fault_channels()
        if self.cold_channel is not None:
            channels.append(self.cold_channel)
        return channels

    _fault_data_channels = _fault_channels

    def fault_crash_sender(self, crash) -> None:
        # Both serializers die together: the crash takes out the whole
        # sender host, not just the foreground loop.
        super().fault_crash_sender(crash)
        if self._cold_process is not None:
            self._cold_process.interrupt(crash)

    # -- cold path --------------------------------------------------------------
    def _start_extra_processes(self) -> None:
        super()._start_extra_processes()
        if self.cold_channel is not None:
            self._cold_process = self.env.process(self._cold_loop())

    def _cold_loop(self):
        while True:
            try:
                while True:
                    key = self._next_cold_key()
                    if key is None:
                        self._cold_wakeup = self.env.event()
                        yield self._cold_wakeup
                        self._cold_wakeup = None
                        continue
                    packet = self._make_packet(key)
                    self._account_transmission(key, packet)
                    self.publisher.get(key).announcements += 1
                    yield self.cold_channel.transmit(packet)
                    self._observe(self.env.now)
                    record = self.publisher.get(key)
                    if record is not None and record.is_publisher_live(
                        self.env.now
                    ):
                        self._cold_ring.append(key)
            except Interrupt as interrupt:
                # The base sender's crash handler owns state cleanup and
                # requeueing; this loop just goes quiet for the outage.
                self._cold_wakeup = None
                yield self.env.timeout(interrupt.cause.down_for)

    def _next_cold_key(self) -> Optional[Any]:
        now = self.env.now
        while self._cold_ring:
            key = self._cold_ring.popleft()
            record = self.publisher.get(key)
            if record is not None and record.is_publisher_live(now):
                return key
        return None

    # -- results ---------------------------------------------------------------
    def _result(self, duration: float) -> ProtocolResult:
        result = super()._result(duration)
        if self.cold_channel is not None:
            sent = result.data_packets + self.cold_channel.packets_sent
            dropped = (
                self.data_channel.packets_dropped
                + self.cold_channel.packets_dropped
            )
            result.data_packets = sent
            result.delivered_packets += self.cold_channel.packets_delivered
            result.observed_loss_rate = dropped / sent if sent else 0.0
        return result
