"""Figure 10: with feedback, consistency vs hot-queue bandwidth.

Paper parameters: mu_data = 38 kbps, mu_fb = 7 kbps, loss = 10%,
lambda = 15 kbps.  While lambda exceeds mu_hot the hot queue is
unstable and new records never reach receivers before dying —
consistency stays very low; once mu_hot crosses lambda it jumps sharply
and further hot bandwidth adds little.  lambda <= mu_hot is the optimal
operating region.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import FeedbackSession

MU_DATA = 38.0
MU_FB = 7.0
LAMBDA = 15.0
LOSS = 0.1
LIFETIME_MEAN = 20.0


def _cell(hot_share: float, horizon: float, warmup: float, seed: int) -> Row:
    """One feedback session at a given hot-queue share."""
    result = FeedbackSession(
        hot_share=hot_share,
        data_kbps=MU_DATA,
        feedback_kbps=MU_FB,
        loss_rate=LOSS,
        update_rate=LAMBDA,
        lifetime_mean=LIFETIME_MEAN,
        seed=seed,
    ).run(horizon=horizon, warmup=warmup)
    return {
        "hot_share": hot_share,
        "mu_hot_kbps": round(hot_share * MU_DATA, 1),
        "hot_over_lambda": round(hot_share * MU_DATA / LAMBDA, 2),
        "consistency": result.consistency,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=600.0, reduced=150.0)
    warmup = horizon / 5.0
    hot_shares = sweep_points(
        quick,
        full=[0.1, 0.2, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9],
        reduced=[0.2, 0.45, 0.8],
    )
    cells = [
        {
            "hot_share": hot_share,
            "horizon": horizon,
            "warmup": warmup,
            "seed": seed,
        }
        for hot_share in hot_shares
    ]
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="figure10",
        title="Consistency vs mu_hot (with feedback)",
        rows=rows,
        parameters={
            "mu_data_kbps": MU_DATA,
            "mu_fb_kbps": MU_FB,
            "lambda_kbps": LAMBDA,
            "loss": LOSS,
        },
        notes=(
            "Sharp rise where mu_hot crosses lambda "
            f"(hot_share ~ {LAMBDA / MU_DATA:.2f}); flat beyond — "
            "lambda <= mu_hot is the optimal region."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
