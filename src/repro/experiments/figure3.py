"""Figure 3: open-loop consistency vs loss rate and death rate.

The paper's parameters: lambda = 20 kbps, mu_ch = 128 kbps; E[c(t)]
plotted against the channel loss rate for several announcement death
rates.  Consistency degrades with both; at p_death = 0.15 the paper
reads 85-95% consistency for loss rates of 1-10%.

This is an analytic experiment (the closed forms of Section 3); the
simulation cross-check lives in ``tests/protocols/test_queue_model.py``
and in the figure3 bench.
"""

from __future__ import annotations

from typing import List

from repro.analysis import expected_consistency
from repro.experiments.common import ExperimentResult, Row, run_cells, sweep_points

LAMBDA_KBPS = 20.0
MU_KBPS = 128.0
DEATH_RATES = [0.15, 0.20, 0.30, 0.40, 0.50]


def _cell(p_death: float, loss_rates: List[float]) -> List[Row]:
    """One death-rate curve: the closed form across the loss sweep."""
    return [
        {
            "p_death": p_death,
            "p_loss": p_loss,
            "consistency": expected_consistency(
                p_loss, p_death, LAMBDA_KBPS, MU_KBPS
            ),
        }
        for p_loss in loss_rates
    ]


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    loss_rates = sweep_points(
        quick,
        full=[round(0.02 * i, 2) for i in range(0, 51)],
        reduced=[0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
    cells = [
        {"p_death": p_death, "loss_rates": loss_rates}
        for p_death in DEATH_RATES
    ]
    rows = [row for curve in run_cells(_cell, cells, jobs=jobs) for row in curve]
    return ExperimentResult(
        experiment_id="figure3",
        title="Consistency vs loss rate, per announcement death rate",
        rows=rows,
        parameters={"lambda_kbps": LAMBDA_KBPS, "mu_kbps": MU_KBPS},
        notes=(
            "Headline: p_death=0.15 stays within 0.80-0.95 for loss 1-10% "
            "(paper quotes 85-95%)."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
