"""Figure 11: the consistency "knee" across loss rates.

Same setup as Figure 10 (lambda = 15 kbps, mu_data = 38 kbps,
mu_fb = 7 kbps) swept across loss rates 1-50%.  Two claims: the loss
rate caps the attainable consistency regardless of the hot/cold split,
and once the hot queue can absorb new arrivals the exact split barely
matters.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import FeedbackSession
from repro.experiments.figure10 import LAMBDA, LIFETIME_MEAN, MU_DATA, MU_FB

LOSS_RATES = [0.01, 0.2, 0.3, 0.4, 0.5]


def _cell(
    loss: float, hot_share: float, horizon: float, warmup: float, seed: int
) -> Row:
    """One (loss, hot-share) feedback session."""
    result = FeedbackSession(
        hot_share=hot_share,
        data_kbps=MU_DATA,
        feedback_kbps=MU_FB,
        loss_rate=loss,
        update_rate=LAMBDA,
        lifetime_mean=LIFETIME_MEAN,
        seed=seed,
    ).run(horizon=horizon, warmup=warmup)
    return {
        "loss": loss,
        "hot_share": hot_share,
        "consistency": result.consistency,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=600.0, reduced=150.0)
    warmup = horizon / 5.0
    hot_shares = sweep_points(
        quick,
        full=[0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        reduced=[0.3, 0.6, 0.9],
    )
    cells = [
        {
            "loss": loss,
            "hot_share": hot_share,
            "horizon": horizon,
            "warmup": warmup,
            "seed": seed,
        }
        for loss in LOSS_RATES
        for hot_share in hot_shares
    ]
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="figure11",
        title="Consistency knee vs hot share, per loss rate",
        rows=rows,
        parameters={
            "mu_data_kbps": MU_DATA,
            "mu_fb_kbps": MU_FB,
            "lambda_kbps": LAMBDA,
        },
        notes=(
            "The loss rate bounds attainable consistency; past the knee "
            "(mu_hot > lambda) the hot/cold split changes little."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
