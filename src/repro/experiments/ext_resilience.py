"""Extension experiment: soft-state resilience under sender crashes.

The paper's qualitative robustness claim (Section 7) is that a
soft-state session recovers from a sender crash *automatically*: the
restarted sender simply resumes its announcement cycle, and receivers
re-converge within a refresh interval or two with no repair protocol at
all.  A hard-state ARQ transfer, by contrast, recovers through its
timeout/retry machinery, whose exponential backoff stretches recovery
far beyond the announcement timescale.

This experiment quantifies the claim.  A :class:`~repro.faults.SenderCrash`
is injected into each protocol mid-run, and the
:class:`~repro.core.metrics.RecoveryTracker` reports, per cell:

* ``recovery_s`` — time from the restart until consistency returns to
  within 5% of its pre-crash baseline;
* ``stale_read_s`` — the integral of (1 - c) over the episode, i.e. the
  stale-read exposure a client would have experienced;
* ``false_expiries`` — receiver-side expirations of data the publisher
  still held, the scalable-timers trade-off: the soft sessions sweep the
  refresh-timeout multiple k (hold = k x measured refresh interval), and
  a small k turns a transient crash into a mass purge while a large k
  rides it out at the cost of slower garbage collection.

Expected shape: announce/listen, two-queue, and SSTP all recover in
O(refresh interval) regardless of crash length; the ARQ baseline's
recovery is gated on its RTO backoff and is strictly slower.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_cells,
    sweep_points,
)
from repro.faults import FaultSchedule, SenderCrash
from repro.protocols import ArqSession, OpenLoopSession, TwoQueueSession
from repro.sstp import ReliabilityLevel, SstpSession
from repro.sstp.timers import RefreshEstimator

MU_KBPS = 50.0
LOSS = 0.25
ARRIVAL = 2.0
LIFETIME = 20.0
WARMUP = 30.0
#: Post-heal observation window; long enough for the slowest ARQ
#: backoff ladder to complete.
TAIL = 60.0
#: The estimator's hold hint before any interval has been measured.
INITIAL_INTERVAL = 5.0

#: Refresh-timeout multiples k.  With ~40 live records sharing 50 pkt/s,
#: a cold announcement cycle takes on the order of a second; k=2 expires
#: mirrors a couple of seconds into a crash (mass false expiry), k=12
#: holds through a 10 s outage.
MULTIPLES_FULL = [2.0, 4.0, 12.0]
MULTIPLES_QUICK = [2.0, 12.0]
CRASH_FULL = [10.0, 25.0]
CRASH_QUICK = [10.0]

SOFT_PROTOCOLS = ("announce-listen", "two-queue")


def _estimator(multiple: float) -> RefreshEstimator:
    return RefreshEstimator(
        multiple=multiple, initial_interval=INITIAL_INTERVAL
    )


def _build_session(
    protocol: str, multiple: Optional[float], seed: int, faults: FaultSchedule
):
    common = dict(
        update_rate=ARRIVAL,
        lifetime_mean=LIFETIME,
        loss_rate=LOSS,
        seed=seed,
        tick=0.25,
        faults=faults,
    )
    if protocol == "announce-listen":
        return OpenLoopSession(
            data_kbps=MU_KBPS,
            refresh_estimator=_estimator(multiple),
            **common,
        )
    if protocol == "two-queue":
        return TwoQueueSession(
            data_kbps=MU_KBPS,
            hot_share=0.3,
            refresh_estimator=_estimator(multiple),
            **common,
        )
    if protocol == "arq":
        # Hard state: positive ACKs, RTO retries, no refresh at all.
        return ArqSession(data_kbps=MU_KBPS, rto=4.0, **common)
    raise ValueError(f"unknown protocol {protocol!r}")


def _sstp_driver(session: SstpSession, horizon: float):
    """An application keeping the SSTP namespace busy for the whole run.

    A working set of ADUs is published up front, then updated at the
    same Poisson rate the protocol-ladder sessions see, so the crash
    hits a namespace that keeps evolving while the sender is down.
    """
    rng = session.rng["driver"]
    n_paths = 40
    paths = [f"store/s{i % 5}/item{i}" for i in range(n_paths)]
    for i, path in enumerate(paths):
        session.publish(path, {"v": 0, "i": i})
    version = 0
    while session.env.now < horizon:
        yield session.env.timeout(rng.expovariate(ARRIVAL))
        version += 1
        session.publish(rng.choice(paths), {"v": version})


def _cell(
    protocol: str,
    multiple: Optional[float],
    crash_at: float,
    crash_s: float,
    seed: int,
) -> Row:
    """One protocol's crash-and-recover run."""
    faults = FaultSchedule([SenderCrash(at=crash_at, down_for=crash_s)])
    horizon = crash_at + crash_s + TAIL
    if protocol == "sstp":
        session = SstpSession(
            total_kbps=MU_KBPS,
            n_receivers=2,
            loss_rate=LOSS,
            reliability=ReliabilityLevel.RELIABLE,
            seed=seed,
            faults=faults,
        )
        session.env.process(_sstp_driver(session, horizon))
        result = session.run(horizon=horizon, warmup=WARMUP)
    else:
        session = _build_session(protocol, multiple, seed, faults)
        result = session.run(horizon=horizon, warmup=WARMUP)
    report = result.fault_reports[0]
    row = {"protocol": protocol}
    if multiple is not None:
        # ARQ and SSTP have no refresh timer, hence no multiple entry
        # (NaN would poison row-equality determinism checks); the table
        # renderer leaves the cell blank.
        row["multiple"] = multiple
    row.update(
        crash_s=crash_s,
        baseline=report.baseline,
        min_c=report.min_consistency,
        recovery_s=report.recovery_s,
        stale_read_s=report.stale_read_s,
        false_expiries=report.false_expiries,
    )
    return row


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    multiples = MULTIPLES_QUICK if quick else MULTIPLES_FULL
    crashes = sweep_points(quick, full=CRASH_FULL, reduced=CRASH_QUICK)
    crash_at = 60.0 if quick else 80.0
    cells = []
    for crash_s in crashes:
        for protocol in SOFT_PROTOCOLS:
            for multiple in multiples:
                cells.append(
                    {
                        "protocol": protocol,
                        "multiple": multiple,
                        "crash_at": crash_at,
                        "crash_s": crash_s,
                        "seed": seed,
                    }
                )
        for protocol in ("arq", "sstp"):
            cells.append(
                {
                    "protocol": protocol,
                    "multiple": None,
                    "crash_at": crash_at,
                    "crash_s": crash_s,
                    "seed": seed,
                }
            )
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="ext_resilience",
        title="Recovery from sender crashes (soft state vs hard state)",
        rows=rows,
        parameters={
            "mu_kbps": MU_KBPS,
            "loss_rate": LOSS,
            "arrival_rate": ARRIVAL,
            "lifetime_mean_s": LIFETIME,
            "crash_at_s": crash_at,
            "arq_rto_s": 4.0,
        },
        notes=(
            "Soft-state sessions re-converge within a couple of refresh "
            "intervals of the restart at any crash length; ARQ recovery "
            "rides the RTO backoff ladder instead.  The false-expiry "
            "column shows the scalable-timers trade-off: small hold "
            "multiples purge receiver state during the crash, large "
            "ones ride it out."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
