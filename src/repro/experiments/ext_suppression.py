"""Extension experiment: NACK suppression vs multicast group size.

Not a figure in the paper, but the scalability property the paper's
Section 6 invokes when it says multicast SSTP should manage feedback
with "a scalable mechanism such as slotting and damping [11, 20]".
With a lossy *shared* upstream link, group members lose the same
packets; slotting (random request delays) plus damping (suppression on
hearing another member's request) keeps total NACK traffic roughly flat
as the group grows, where naive per-receiver feedback would scale
linearly (the NACK implosion problem).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    ExperimentResult,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import MulticastFeedbackSession

SHARED_LOSS = 0.25
TAIL_LOSS = 0.02


def _cell(n: int, horizon: float, warmup: float, seed: int) -> Dict[str, float]:
    """One multicast session at a given group size."""
    result = MulticastFeedbackSession(
        n_receivers=n,
        data_kbps=40.0,
        feedback_kbps=5.0,
        loss_rate=TAIL_LOSS,
        shared_loss_rate=SHARED_LOSS,
        hot_share=0.7,
        update_rate=8.0,
        lifetime_mean=25.0,
        seed=seed,
    ).run(horizon=horizon, warmup=warmup)
    return {
        "consistency": result.consistency,
        "nacks": result.nacks_sent,
        "suppressed": result.nacks_suppressed,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=400.0, reduced=120.0)
    warmup = horizon / 5.0
    group_sizes = [
        int(n)
        for n in sweep_points(
            quick, full=[1, 2, 4, 8, 16, 32], reduced=[1, 4, 8]
        )
    ]
    cells = [
        {"n": n, "horizon": horizon, "warmup": warmup, "seed": seed}
        for n in group_sizes
    ]
    measured = run_cells(_cell, cells, jobs=jobs)
    rows = []
    base_nacks = None
    for n, point in zip(group_sizes, measured):
        if base_nacks is None:
            base_nacks = max(point["nacks"], 1)
        rows.append(
            {
                "group_size": n,
                "consistency": point["consistency"],
                "nacks": point["nacks"],
                "suppressed": point["suppressed"],
                "nacks_vs_n1": point["nacks"] / base_nacks,
                "naive_scaling": float(n),
            }
        )
    return ExperimentResult(
        experiment_id="ext_suppression",
        title="NACK traffic vs group size under slotting and damping",
        rows=rows,
        parameters={
            "shared_loss": SHARED_LOSS,
            "tail_loss": TAIL_LOSS,
            "horizon_s": horizon,
        },
        notes=(
            "nacks_vs_n1 grows far slower than naive_scaling: damping "
            "suppresses duplicate requests for shared losses."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
