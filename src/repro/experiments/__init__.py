"""Experiment harness: one module per table/figure in the paper.

Every module exposes ``run(quick=False, seed=0)`` returning an
:class:`~repro.experiments.common.ExperimentResult` (rows of the same
series the paper plots) and a ``main()`` that prints it.  ``quick=True``
shrinks horizons for benchmark use; ``quick=False`` runs the
publication-scale sweep.

Run everything::

    python -m repro.experiments          # all experiments, full scale
    python -m repro.experiments figure8  # one experiment

See DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "run_experiment",
]
