"""Figure 6: receive latency vs cold/hot bandwidth ratio.

The paper sweeps mu_cold while "maintaining mu_hot at its optimal
level, just higher than the arrival rate" — mu_data grows with
mu_cold, so hot and cold need strict rate caps (no borrowing), which
is what :class:`RateCappedTwoQueueSession` provides.

Two competing effects shape the curve: with mu_cold ~ 0 data items are
never retransmitted, so only never-lost records are counted and the
measured latency is the small M/M/1-style hot sojourn (the paper's
~300 ms point); a little cold bandwidth lets lost records be repaired
after very long waits (mean latency *rises*); ample cold bandwidth
makes repairs fast (latency falls), and consistency rises throughout —
turning off background retransmissions is a false economy.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import RateCappedTwoQueueSession

LAMBDA = 1.5
MU_HOT = 2.0  # "just higher than the arrival rate"
LIFETIME_MEAN = 120.0
LOSS_RATE = 0.3


def _cell(ratio: float, horizon: float, warmup: float, seed: int) -> Row:
    """One rate-capped session at a given cold/hot bandwidth ratio."""
    result = RateCappedTwoQueueSession(
        hot_kbps=MU_HOT,
        cold_kbps=ratio * MU_HOT,
        loss_rate=LOSS_RATE,
        update_rate=LAMBDA,
        lifetime_mean=LIFETIME_MEAN,
        seed=seed,
    ).run(horizon=horizon, warmup=warmup)
    return {
        "cold_over_hot": ratio,
        "mu_cold_kbps": round(ratio * MU_HOT, 3),
        "receive_latency_s": result.mean_receive_latency,
        "latency_p95_s": result.latency_p95,
        "consistency": result.consistency,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=1500.0, reduced=400.0)
    warmup = horizon / 7.5
    cold_over_hot = sweep_points(
        quick,
        full=[0.005, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0],
        reduced=[0.005, 0.3, 3.0],
    )
    cells = [
        {"ratio": ratio, "horizon": horizon, "warmup": warmup, "seed": seed}
        for ratio in cold_over_hot
    ]
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="figure6",
        title="Receive latency vs mu_cold/mu_hot (rate-capped queues)",
        rows=rows,
        parameters={
            "mu_hot_kbps": MU_HOT,
            "lambda_kbps": LAMBDA,
            "loss": LOSS_RATE,
            "lifetime_mean_s": LIFETIME_MEAN,
            "horizon_s": horizon,
        },
        notes=(
            "Latency rises from the mu_cold~0 floor (only never-lost "
            "records are counted) to a peak, then falls as cold "
            "bandwidth accelerates repairs; consistency rises "
            "monotonically with mu_cold."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
