"""Parallel experiment runner: deterministic ``(params, seed)`` cells.

Every experiment decomposes into independent *cells* — one simulation or
one analytic evaluation per ``(sweep-point, seed)`` combination.  Each
cell builds its own :class:`~repro.des.core.Environment` and its own
seeded RNG streams, so cells share no state and can execute in any
order, on any worker, with identical results.

:func:`map_cells` is the single execution primitive.  With ``jobs <= 1``
it is a plain in-process loop (exactly the historical sequential
behaviour).  With ``jobs > 1`` the cells run on a ``multiprocessing``
pool via ``imap_unordered(chunksize=1)`` — each worker pulls the next
cell the moment it finishes, so one slow cell never stalls a chunk of
queued fast ones on skewed grids — and every result carries its cell
index, so the parent reassembles **positionally**.  The merged rows an
experiment sees — and therefore its rendered output — are byte-identical
to a sequential run: determinism is a merge property, not a scheduling
property.

When a result cache is active (``repro.cache``, installed by
``run_experiment`` around the run), the cache is consulted *before*
dispatch: hit cells are served from the store (result plus replayed
telemetry meta), only misses go to the pool, and misses are written
back afterwards — so merged output is byte-identical whether a cell
was computed fresh or served from cache, at any ``--jobs`` value.

Cell functions must be module-level (picklable) and take only picklable
keyword arguments; they should return plain data (dicts, lists,
numbers), not live sessions.  By the determinism contract their result
is a pure function of their kwargs — which is exactly what makes the
cache sound.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import runtime as _cache_runtime
from repro.obs import runtime as _obs
from repro.obs import telemetry as _telemetry
from repro.obs.profile import Profiler, profile_enabled
from repro.obs.telemetry import CellMeta
from repro.obs.trace import RUN as _RUN

__all__ = ["CellError", "map_cells", "resolve_jobs"]

Cell = Dict[str, Any]


class CellError(RuntimeError):
    """A cell function raised: carries *which* cell failed.

    A bare worker traceback from a 48-cell sweep is useless without the
    ``(experiment, params, seed)`` identity of the failing cell, so
    :func:`map_cells` wraps every failure with that identity.  The
    original exception is chained as ``__cause__`` (sequentially the
    exception object itself; across a pool, the pickled remote
    traceback).
    """


def _cell_identity(fn: Callable[..., Any], index: int, kwargs: Cell) -> str:
    params = ", ".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
    return (
        f"cell {index} = {fn.__module__}.{fn.__qualname__}({params})"
    )


def _run_cell(
    fn: Callable[..., Any], index: int, kwargs: Cell
) -> Tuple[Any, CellMeta]:
    """Run one cell inside an accounting context; returns (result, meta).

    The meta travels with the result (pooled workers pickle both back),
    so the parent process always owns telemetry aggregation.
    """
    sample_heap = _telemetry.tracemalloc_enabled()
    #: REPRO_PROFILE=1 (checked per cell, so spawned workers pick it up
    #: from their inherited environment just like REPRO_TRACEMALLOC):
    #: a fresh profiler per cell keeps attribution jobs-invariant.
    profiler = Profiler() if profile_enabled() else None
    tr = _obs.current_tracer()
    try:
        if sample_heap:
            tracemalloc.start()
        if tr is not None and tr.run:
            # Cell boundaries let a trace checker partition one JSONL
            # stream into per-cell segments (each cell restarts the
            # simulation clock at zero).  No clock is in scope here.
            tr.emit(
                _RUN,
                "cell_start",
                None,
                index=index,
                fn=f"{fn.__module__}.{fn.__qualname__}",
            )
        # Host wall time is the *measurement target* here (per-cell cost
        # telemetry); it never feeds simulation state.
        start = time.perf_counter()  # repro-lint: disable=RPR002
        with _obs.cell_context() as ctx:
            if profiler is not None:
                with _obs.profiling(profiler):
                    result = fn(**kwargs)
            else:
                result = fn(**kwargs)
        wall = time.perf_counter() - start  # repro-lint: disable=RPR002
        if tr is not None and tr.run:
            tr.emit(_RUN, "cell_end", None, index=index)
        peak = None
        if sample_heap:
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
    except Exception as exc:
        if sample_heap and tracemalloc.is_tracing():
            tracemalloc.stop()
        if tr is not None:
            # Leave the partial trace durable and parseable: a failed
            # cell's events are exactly what a post-mortem check needs.
            tr.flush()
        raise CellError(
            f"{_cell_identity(fn, index, kwargs)} failed: {exc!r}"
        ) from exc
    meta = CellMeta(
        index=index,
        wall_s=wall,
        events=ctx.events,
        peak_heap_bytes=peak,
        rng_streams=sorted(ctx.rng_streams),
        registry=ctx.registry.snapshot(),
        profile=profiler.snapshot() if profiler is not None else None,
        shard=ctx.shard,
    )
    return result, meta


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/absent -> 1, 0 -> cpu_count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def _invoke(payload: tuple) -> Tuple[int, Tuple[Any, CellMeta]]:
    """Pool entry point: run one cell, tagged with its index.

    The tag is what makes unordered completion safe: the parent slots
    each result back by index, so merge order never depends on worker
    scheduling.
    """
    fn, index, kwargs = payload
    return index, _run_cell(fn, index, kwargs)


def _load_cached(
    cache, keys: List[str], cells: List[Cell]
) -> Tuple[List[Optional[Tuple[Any, CellMeta]]], List[int]]:
    """Fill result slots from the store; returns (slots, miss indices)."""
    slots: List[Optional[Tuple[Any, CellMeta]]] = [None] * len(cells)
    pending: List[int] = []
    for index, key in enumerate(keys):
        entry = cache.load(key)
        if entry is None:
            pending.append(index)
            continue
        meta = CellMeta(
            index=index,
            wall_s=0.0,
            events=entry.events,
            peak_heap_bytes=None,
            rng_streams=list(entry.rng_streams),
            registry=entry.registry,
            cached=True,
        )
        slots[index] = (entry.result, meta)
    return slots, pending


def _note_cache_counts(hits: int, misses: int) -> None:
    """Publish one lookup round to the registry and the active run.

    Counters land in the *parent* ambient registry (cells push their
    own), labelled by layer so the in-process memoizer could publish
    alongside if it ever became jobs-invariant.
    """
    reg = _obs.registry()
    reg.counter(
        "repro_cache_hits_total",
        "Result-cache lookups served from the store.",
        ("layer",),
    ).inc(hits, layer="store")
    reg.counter(
        "repro_cache_misses_total",
        "Result-cache lookups that fell through to compute.",
        ("layer",),
    ).inc(misses, layer="store")
    run = _telemetry.active_run()
    if run is not None:
        run.note_cache(hits, misses)


def map_cells(
    fn: Callable[..., Any],
    cells: Sequence[Cell],
    jobs: int = 1,
) -> List[Any]:
    """Run ``fn(**cell)`` for every cell, returning results in cell order.

    ``jobs <= 1`` (or a single pending cell) executes sequentially
    in-process.  ``jobs > 1`` fans the cells out over a process pool
    with per-cell dispatch; results are merged positionally so the
    output is byte-identical to sequential.  An active result cache
    (``repro.cache``) short-circuits hit cells entirely.
    """
    jobs = resolve_jobs(jobs)
    cells = list(cells)
    cache = _cache_runtime.active_cache()
    keys: Optional[List[str]] = None
    if cache is not None and cells:
        keys = [cache.key_for(fn, cell) for cell in cells]
        slots, pending = _load_cached(cache, keys, cells)
    else:
        slots = [None] * len(cells)
        pending = list(range(len(cells)))

    if jobs <= 1 or len(pending) <= 1:
        for index in pending:
            slots[index] = _run_cell(fn, index, cells[index])
    else:
        workers = min(jobs, len(pending))
        context = _pool_context()
        with context.Pool(processes=workers) as pool:
            payloads = [(fn, index, cells[index]) for index in pending]
            for index, pair in pool.imap_unordered(
                _invoke, payloads, chunksize=1
            ):
                slots[index] = pair

    if keys is not None:
        for index in pending:
            result, meta = slots[index]
            cache.store(
                keys[index],
                fn,
                cells[index],
                result,
                events=meta.events,
                rng_streams=meta.rng_streams,
                registry=meta.registry,
            )
        _note_cache_counts(len(cells) - len(pending), len(pending))

    # Telemetry is recorded here, in the parent, in submission order —
    # never in the workers — so the aggregate is jobs-independent.
    run = _telemetry.active_run()
    results = []
    for result, meta in slots:
        if run is not None:
            run.record_cell(meta)
        results.append(result)
    return results


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (no re-import, inherits sys.path); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(methods[0])
