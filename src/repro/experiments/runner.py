"""Parallel experiment runner: deterministic ``(params, seed)`` cells.

Every experiment decomposes into independent *cells* — one simulation or
one analytic evaluation per ``(sweep-point, seed)`` combination.  Each
cell builds its own :class:`~repro.des.core.Environment` and its own
seeded RNG streams, so cells share no state and can execute in any
order, on any worker, with identical results.

:func:`map_cells` is the single execution primitive.  With ``jobs <= 1``
it is a plain in-process loop (exactly the historical sequential
behaviour).  With ``jobs > 1`` the cells run on a ``multiprocessing``
pool and the results are merged **in submission order**, so the rows an
experiment assembles from them — and therefore its rendered output — are
byte-identical to a sequential run.  Determinism is a merge property,
not a scheduling property: workers may finish in any order, but
``Pool.map`` returns results positionally.

Cell functions must be module-level (picklable) and take only picklable
keyword arguments; they should return plain data (dicts, lists,
numbers), not live sessions.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import runtime as _obs
from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import CellMeta

__all__ = ["CellError", "map_cells", "resolve_jobs"]

Cell = Dict[str, Any]


class CellError(RuntimeError):
    """A cell function raised: carries *which* cell failed.

    A bare worker traceback from a 48-cell sweep is useless without the
    ``(experiment, params, seed)`` identity of the failing cell, so
    :func:`map_cells` wraps every failure with that identity.  The
    original exception is chained as ``__cause__`` (sequentially the
    exception object itself; across a pool, the pickled remote
    traceback).
    """


def _cell_identity(fn: Callable[..., Any], index: int, kwargs: Cell) -> str:
    params = ", ".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
    return (
        f"cell {index} = {fn.__module__}.{fn.__qualname__}({params})"
    )


def _run_cell(
    fn: Callable[..., Any], index: int, kwargs: Cell
) -> Tuple[Any, CellMeta]:
    """Run one cell inside an accounting context; returns (result, meta).

    The meta travels with the result (pooled workers pickle both back),
    so the parent process always owns telemetry aggregation.
    """
    sample_heap = _telemetry.tracemalloc_enabled()
    try:
        if sample_heap:
            tracemalloc.start()
        # Host wall time is the *measurement target* here (per-cell cost
        # telemetry); it never feeds simulation state.
        start = time.perf_counter()  # repro-lint: disable=RPR002
        with _obs.cell_context() as ctx:
            result = fn(**kwargs)
        wall = time.perf_counter() - start  # repro-lint: disable=RPR002
        peak = None
        if sample_heap:
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
    except Exception as exc:
        if sample_heap and tracemalloc.is_tracing():
            tracemalloc.stop()
        raise CellError(
            f"{_cell_identity(fn, index, kwargs)} failed: {exc!r}"
        ) from exc
    meta = CellMeta(
        index=index,
        wall_s=wall,
        events=ctx.events,
        peak_heap_bytes=peak,
        rng_streams=sorted(ctx.rng_streams),
        registry=ctx.registry.snapshot(),
    )
    return result, meta


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/absent -> 1, 0 -> cpu_count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def _invoke(payload: tuple) -> Any:
    """Pool entry point: apply ``fn`` to one cell's keyword arguments."""
    fn, index, kwargs = payload
    return _run_cell(fn, index, kwargs)


def map_cells(
    fn: Callable[..., Any],
    cells: Sequence[Cell],
    jobs: int = 1,
) -> List[Any]:
    """Run ``fn(**cell)`` for every cell, returning results in cell order.

    ``jobs <= 1`` (or a single cell) executes sequentially in-process.
    ``jobs > 1`` fans the cells out over a process pool; results are
    merged positionally so the output is byte-identical to sequential.
    """
    jobs = resolve_jobs(jobs)
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        pairs = [
            _run_cell(fn, index, cell) for index, cell in enumerate(cells)
        ]
    else:
        workers = min(jobs, len(cells))
        context = _pool_context()
        with context.Pool(processes=workers) as pool:
            pairs = pool.map(
                _invoke,
                [(fn, index, cell) for index, cell in enumerate(cells)],
                chunksize=1,
            )
    # Telemetry is recorded here, in the parent, in submission order —
    # never in the workers — so the aggregate is jobs-independent.
    run = _telemetry.active_run()
    results = []
    for result, meta in pairs:
        if run is not None:
            run.record_cell(meta)
        results.append(result)
    return results


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (no re-import, inherits sys.path); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(methods[0])
