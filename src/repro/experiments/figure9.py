"""Figure 9: consistency vs feedback-bandwidth share, per loss rate.

Holding mu_total fixed and sweeping the feedback share: consistency is
improved ~10% at 10% loss and up to ~50% at >= 50% loss, plateaus once
NACK capacity covers loss-generated feedback, and degrades when data
bandwidth starves.  This sweep doubles as the generator for the
allocator's consistency profile (``as_profile``).
"""

from __future__ import annotations

from typing import Dict

from repro.core import ConsistencyProfile, ProfilePoint
from repro.experiments.common import (
    ExperimentResult,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.experiments.figure8 import LAMBDA, LIFETIME_MEAN, MU_TOTAL, build_session

LOSS_RATES = [0.1, 0.3, 0.5]


def _cell(
    loss: float, fb: float, horizon: float, warmup: float, seed: int
) -> Dict[str, float]:
    """One (loss, feedback-share) session's consistency and NACK count."""
    session = build_session(fb, seed, loss=loss, record_series=False)
    result = session.run(horizon=horizon, warmup=warmup)
    return {"consistency": result.consistency, "nacks": result.nacks_sent}


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=600.0, reduced=150.0)
    warmup = horizon / 5.0
    fb_fractions = sweep_points(
        quick,
        full=[0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
        reduced=[0.0, 0.1, 0.5],
    )
    cells = [
        {
            "loss": loss,
            "fb": fb,
            "horizon": horizon,
            "warmup": warmup,
            "seed": seed,
        }
        for loss in LOSS_RATES
        for fb in fb_fractions
    ]
    measured = iter(run_cells(_cell, cells, jobs=jobs))
    rows = []
    for loss in LOSS_RATES:
        baseline = None
        for fb in fb_fractions:
            point = next(measured)
            if fb == 0.0:
                baseline = point["consistency"]
            rows.append(
                {
                    "loss": loss,
                    "fb_share": fb,
                    "consistency": point["consistency"],
                    "gain_vs_open_loop": (
                        point["consistency"] - baseline
                        if baseline is not None
                        else 0.0
                    ),
                    "nacks": point["nacks"],
                }
            )
    return ExperimentResult(
        experiment_id="figure9",
        title="Consistency vs feedback share, per loss rate",
        rows=rows,
        parameters={
            "lambda_kbps": LAMBDA,
            "mu_total_kbps": MU_TOTAL,
            "lifetime_mean_s": LIFETIME_MEAN,
            "horizon_s": horizon,
        },
        notes=(
            "Gain grows with loss rate (paper: +10% at 10% loss, +50% at "
            ">=50% loss); past the optimum, more feedback hurts."
        ),
    )


def as_profile(result: ExperimentResult) -> ConsistencyProfile:
    """Convert the sweep into the allocator's consistency profile."""
    profile = ConsistencyProfile("figure9", knob_name="fb_share")
    for row in result.rows:
        profile.add(
            ProfilePoint(
                loss_rate=row["loss"],
                knob=row["fb_share"],
                consistency=min(row["consistency"], 1.0),
            )
        )
    return profile


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
