"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

from repro.obs import telemetry as _telemetry

from repro.experiments import (
    ext_convergence,
    ext_gateway,
    ext_resilience,
    ext_scale,
    ext_suppression,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "ext_suppression": ext_suppression.run,
    "ext_convergence": ext_convergence.run,
    "ext_gateway": ext_gateway.run,
    "ext_resilience": ext_resilience.run,
    "ext_scale": ext_scale.run,
}


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> ExperimentResult:
    """Run one experiment by id (e.g. "figure8").

    ``jobs`` controls the parallel cell runner: 1 is sequential, N > 1
    fans the experiment's independent cells over a process pool, and 0
    means one worker per CPU.  When omitted, the ``REPRO_JOBS``
    environment variable applies (default 1), so callers that predate
    the runner — the benchmarks in particular — pick it up for free.
    Output is byte-identical at any job count.

    ``cache`` controls the content-addressed result store
    (docs/CACHE.md): ``True`` serves unchanged cells from
    ``results/.cache/``, ``False`` bypasses reads *and* writes, and
    ``None`` defers to the ``REPRO_CACHE`` environment variable
    (default off).  Output is byte-identical either way.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    from repro.cache import caching, resolve_cache
    from repro.experiments.runner import resolve_jobs

    cache_store = resolve_cache(cache)
    run = _telemetry.begin_run(experiment_id)
    run.jobs = resolve_jobs(jobs)
    run.seed = seed
    run.quick = quick
    run.cache_enabled = cache_store is not None
    # Run telemetry measures host wall time on purpose; the simulation
    # itself only ever sees env.now.
    start = time.perf_counter()  # repro-lint: disable=RPR002
    try:
        with caching(cache_store):
            result = runner(quick=quick, seed=seed, jobs=jobs)
    finally:
        _telemetry.end_run()
    run.wall_s = time.perf_counter() - start  # repro-lint: disable=RPR002
    result.telemetry = run.as_dict()
    return result
