"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ext_convergence,
    ext_gateway,
    ext_suppression,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "ext_suppression": ext_suppression.run,
    "ext_convergence": ext_convergence.run,
    "ext_gateway": ext_gateway.run,
}


def run_experiment(
    experiment_id: str, quick: bool = False, seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id (e.g. "figure8")."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick, seed=seed)
