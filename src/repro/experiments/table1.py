"""Table 1: state-change probabilities as a record leaves the server.

Reports the analytic matrix side by side with empirical transition
frequencies measured by the queue-model simulation — the two must agree
to within sampling noise.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis import transition_matrix
from repro.experiments.common import ExperimentResult, run_cells
from repro.protocols import QueueModelSim

P_LOSS = 0.2
P_DEATH = 0.25


def _cell(horizon: float, seed: int) -> Dict[str, Dict[str, float]]:
    """The queue-model simulation's empirical transition frequencies."""
    sim = QueueModelSim(
        update_rate=2.0,
        channel_rate=16.0,
        p_loss=P_LOSS,
        p_death=P_DEATH,
        seed=seed,
    ).run(horizon=horizon)
    return sim.transition_probabilities()


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = 500.0 if quick else 5000.0
    analytic = transition_matrix(P_LOSS, P_DEATH)
    (empirical,) = run_cells(
        _cell, [{"horizon": horizon, "seed": seed}], jobs=jobs
    )
    label = {"inconsistent": "I", "consistent": "C"}
    rows = []
    for source in ("inconsistent", "consistent"):
        for target in ("inconsistent", "consistent", "exit"):
            short_target = label.get(target, target)
            rows.append(
                {
                    "from": label[source],
                    "to": short_target,
                    "analytic": analytic[source][target],
                    "measured": empirical[label[source]].get(short_target, 0.0),
                }
            )
    return ExperimentResult(
        experiment_id="table1",
        title="State change probabilities (analytic vs measured)",
        rows=rows,
        parameters={"p_loss": P_LOSS, "p_death": P_DEATH, "horizon": horizon},
        notes=(
            "I->I = p_l(1-p_d); I->C = (1-p_l)(1-p_d); ->exit = p_d; "
            "C->I = 0 (consistency is never un-learned)."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
