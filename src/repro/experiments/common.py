"""Shared experiment machinery: result containers, table rendering, and
the cell-decomposition helper every experiment runs its sweep through."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

Row = Dict[str, Any]


def run_cells(
    fn: Callable[..., Any],
    cells: Sequence[Dict[str, Any]],
    jobs: int = 1,
) -> List[Any]:
    """Execute an experiment's independent cells, sequentially or pooled.

    Experiments decompose their sweep into cells — one module-level
    function call per ``(params, seed)`` combination — build the cell
    list in row order, and assemble rows from the returned payloads.
    Delegates to :mod:`repro.experiments.runner`; with ``jobs > 1`` the
    cells run on a process pool and come back in submission order, so
    assembled rows are byte-identical to a sequential run.
    """
    from repro.experiments.runner import map_cells

    return map_cells(fn, cells, jobs=jobs)


@dataclass
class ExperimentResult:
    """The reproduced series for one paper table or figure."""

    experiment_id: str
    title: str
    rows: List[Row]
    parameters: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    #: Run telemetry payload (see :mod:`repro.obs.telemetry`), attached
    #: by ``run_experiment``.  Not part of the reproduced series: wall
    #: times vary run to run, so it never participates in rendering or
    #: determinism checks.
    telemetry: Optional[Dict[str, Any]] = None

    def series(self, x: str, y: str, group: Optional[str] = None) -> Dict[Any, List[tuple]]:
        """Group rows into {group_value: [(x, y), ...]} plot series."""
        grouped: Dict[Any, List[tuple]] = {}
        for row in self.rows:
            key = row.get(group) if group else None
            grouped.setdefault(key, []).append((row[x], row[y]))
        return grouped

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            params = ", ".join(
                f"{key}={value}" for key, value in self.parameters.items()
            )
            lines.append(f"   parameters: {params}")
        lines.append(format_table(self.rows))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(rows: Sequence[Row], columns: Optional[List[str]] = None) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return "   (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, "")) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(
        column.rjust(width) for column, width in zip(columns, widths)
    )
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join(["   " + header, "   " + separator] + [
        "   " + line for line in body
    ])


def sweep_points(quick: bool, full: List[float], reduced: List[float]) -> List[float]:
    """Pick the sweep grid for the requested scale."""
    return reduced if quick else full


def horizon_for(quick: bool, full: float, reduced: float) -> float:
    return reduced if quick else full
