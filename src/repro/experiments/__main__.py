"""Run paper experiments from the command line.

Usage::

    python -m repro.experiments                 # everything, full scale
    python -m repro.experiments --quick         # everything, reduced
    python -m repro.experiments figure8 table1  # a subset
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs.telemetry import write_telemetry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=(
            "experiment ids, or 'run-all' "
            f"(default: all of {sorted(EXPERIMENTS)})"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps and horizons"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII chart after each table where one applies",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run each experiment's cells on N worker processes "
            "(0 = one per CPU; output is byte-identical at any N)"
        ),
    )
    parser.add_argument(
        "--telemetry-dir",
        default="results",
        metavar="DIR",
        help=(
            "write run telemetry to DIR/<id>/telemetry.json "
            "('' disables the file)"
        ),
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "serve unchanged cells from the content-addressed result "
            "store (results/.cache; see docs/CACHE.md).  --no-cache "
            "bypasses reads and writes; default follows REPRO_CACHE"
        ),
    )
    args = parser.parse_args(argv)

    requested = args.experiments or sorted(EXPERIMENTS)
    if "run-all" in requested:
        requested = sorted(EXPERIMENTS)
    for experiment_id in requested:
        result = run_experiment(
            experiment_id,
            quick=args.quick,
            seed=args.seed,
            jobs=args.jobs,
            cache=args.cache,
        )
        print(result.render())
        if args.telemetry_dir and result.telemetry is not None:
            write_telemetry(
                os.path.join(
                    args.telemetry_dir, experiment_id, "telemetry.json"
                ),
                result.telemetry,
            )
        if args.plot:
            chart = _chart_for(experiment_id, result)
            if chart:
                print()
                print(chart)
        print()
    return 0


#: How to chart each experiment: (x, y, group) — None means tables only.
_CHART_AXES = {
    "figure3": ("p_loss", "consistency", "p_death"),
    "figure4": ("p_loss", "redundant_fraction", "p_death"),
    "figure5": ("hot_share", "consistency", "loss"),
    "figure6": ("cold_over_hot", "receive_latency_s", None),
    "figure8": ("time_s", "running_consistency", "fb_share"),
    "figure9": ("fb_share", "consistency", "loss"),
    "figure10": ("hot_share", "consistency", None),
    "figure11": ("hot_share", "consistency", "loss"),
    "ext_suppression": ("group_size", "nacks_vs_n1", None),
    "ext_resilience": ("multiple", "recovery_s", "protocol"),
}


def _chart_for(experiment_id: str, result) -> str | None:
    axes = _CHART_AXES.get(experiment_id)
    if axes is None:
        return None
    from repro.experiments.plotting import plot_experiment

    x, y, group = axes
    y_range = (0.0, 1.0) if "consistency" in y or "fraction" in y else None
    return plot_experiment(result, x=x, y=y, group=group, y_range=y_range)


if __name__ == "__main__":
    sys.exit(main())
