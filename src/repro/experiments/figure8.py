"""Figure 8: consistency over time for several feedback-bandwidth shares.

Paper parameters: lambda = 15 kbps, mu_tot = 45 kbps, loss = 40%.  The
running time-average of c(t): open loop (fb=0) settles near 80%;
moderate feedback shares reach the high 90s; at fb=70% the data channel
starves and consistency collapses.

The hot share is provisioned per point so the hot queue can carry new
data plus requested repairs (mu_hot >= 1.15 * lambda / (1 - loss)),
clamped to [0.4, 0.95] — the allocator's rule.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import FeedbackSession, TwoQueueSession

LAMBDA = 15.0
MU_TOTAL = 45.0
LOSS = 0.4
#: Mean record lifetime.  The paper's per-transmission death probability
#: of ~0.1 at its cold-cycle service intervals corresponds to records
#: living tens of seconds to minutes; 40 s keeps the open-loop baseline
#: near the paper's ~80% while letting feedback show its full benefit.
LIFETIME_MEAN = 40.0
#: Lost NACKs/repairs are re-requested quickly; at 40-50% loss a slow
#: retry timer, not bandwidth, becomes the bottleneck.
NACK_RETRY = 0.5


def provision_hot_share(data_kbps: float, loss: float = LOSS) -> float:
    """mu_hot >= headroom * lambda / (1 - loss), clamped."""
    needed = LAMBDA * 1.15 / max((1.0 - loss) * data_kbps, 1e-9)
    return min(0.95, max(0.4, needed))


def build_session(fb_fraction: float, seed: int, loss: float = LOSS,
                  record_series: bool = True):
    feedback_kbps = fb_fraction * MU_TOTAL
    data_kbps = MU_TOTAL - feedback_kbps
    kwargs = dict(
        hot_share=provision_hot_share(data_kbps, loss),
        data_kbps=data_kbps,
        loss_rate=loss,
        update_rate=LAMBDA,
        lifetime_mean=LIFETIME_MEAN,
        seed=seed,
        record_series=record_series,
    )
    if feedback_kbps == 0:
        return TwoQueueSession(**kwargs)
    return FeedbackSession(
        feedback_kbps=feedback_kbps, nack_retry=NACK_RETRY, **kwargs
    )


def _cell(fb: float, horizon: float, warmup: float, seed: int) -> List[Row]:
    """One feedback share's sampled running-consistency series."""
    sample_count = 8
    session = build_session(fb, seed)
    result = session.run(horizon=horizon, warmup=warmup)
    series = result.consistency_series
    if series:
        step = max(len(series) // sample_count, 1)
        samples = series[::step][:sample_count]
    else:
        samples = []
    rows = [
        {
            "fb_share": fb,
            "time_s": round(t, 1),
            "running_consistency": value,
        }
        for t, value in samples
    ]
    rows.append(
        {
            "fb_share": fb,
            "time_s": round(horizon, 1),
            "running_consistency": result.consistency,
        }
    )
    return rows


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=1000.0, reduced=200.0)
    warmup = horizon / 10.0
    fb_fractions = sweep_points(
        quick, full=[0.0, 0.1, 0.2, 0.3, 0.5, 0.7], reduced=[0.0, 0.2, 0.7]
    )
    cells = [
        {"fb": fb, "horizon": horizon, "warmup": warmup, "seed": seed}
        for fb in fb_fractions
    ]
    rows = [
        row for curve in run_cells(_cell, cells, jobs=jobs) for row in curve
    ]
    return ExperimentResult(
        experiment_id="figure8",
        title="Running consistency over time per feedback share",
        rows=rows,
        parameters={
            "lambda_kbps": LAMBDA,
            "mu_total_kbps": MU_TOTAL,
            "loss": LOSS,
            "horizon_s": horizon,
        },
        notes=(
            "fb=0 settles near 0.81; fb=0.1-0.3 reaches ~0.98; fb=0.7 "
            "collapses (data starved) — the paper's 80% / ~99% / collapse "
            "shape."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
