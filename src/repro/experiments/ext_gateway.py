"""Extension experiment: soft-state gateway vs naive forwarding.

The paper's related work (Amir et al. [2]) bridges "islands of high
bandwidth ... by low bandwidth links" with soft-state gateways and
calls the scheme an instantiation of the SSTP framework.  This
experiment quantifies why the gateway must be *soft state* and not a
plain relay: across a range of bottleneck bandwidths, the soft-state
gateway (own table + hot/cold re-announcement at the link rate) keeps
the remote island consistent, while verbatim forwarding builds an
unbounded queue the moment the local announcement rate exceeds the
bottleneck rate.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import GatewaySession

LOCAL_KBPS = 100.0
UPDATE_RATE = 3.0
LIFETIME = 60.0


def _cell(
    bottleneck: float, mode: str, horizon: float, warmup: float, seed: int
) -> Row:
    """One gateway session at a given bottleneck bandwidth and mode."""
    result = GatewaySession(
        local_kbps=LOCAL_KBPS,
        bottleneck_kbps=bottleneck,
        update_rate=UPDATE_RATE,
        lifetime_mean=LIFETIME,
        mode=mode,
        seed=seed,
    ).run(horizon=horizon, warmup=warmup)
    return {
        "bottleneck_kbps": bottleneck,
        "mode": mode,
        "e2e_consistency": result.end_to_end_consistency,
        "remote_latency_s": result.mean_remote_latency,
        "backlog_end": result.bottleneck_backlog_end,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=400.0, reduced=150.0)
    warmup = horizon / 5.0
    bottlenecks = sweep_points(
        quick, full=[2.0, 4.0, 8.0, 16.0, 32.0], reduced=[4.0, 16.0]
    )
    cells = [
        {
            "bottleneck": bottleneck,
            "mode": mode,
            "horizon": horizon,
            "warmup": warmup,
            "seed": seed,
        }
        for bottleneck in bottlenecks
        for mode in ("soft_state", "forwarder")
    ]
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="ext_gateway",
        title="Soft-state gateway vs naive forwarder across a bottleneck",
        rows=rows,
        parameters={
            "local_kbps": LOCAL_KBPS,
            "update_rate": UPDATE_RATE,
            "horizon_s": horizon,
        },
        notes=(
            "The forwarder's backlog grows without bound whenever the "
            "local announcement rate exceeds the bottleneck; the "
            "soft-state gateway sends only the latest value per key and "
            "stays fresh at any link speed."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
