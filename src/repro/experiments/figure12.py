"""Figure 12: the profile-driven allocation hierarchy, end to end.

The figure shows SSTP's scheduler tree (session -> data/feedback ->
hot/cold) fed by receiver reports through the profile-driven allocator.
This experiment runs the allocator at several measured loss rates and
offered loads and prints both the chosen allocations and a live
scheduler tree after serving traffic under one of them.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.experiments.common import ExperimentResult, run_cells
from repro.sched import HierarchicalScheduler
from repro.sstp import ProfileDrivenAllocator, StaticCongestionManager

TOTAL_KBPS = 50.0
SCENARIOS = [
    {"loss": 0.01, "update_kbps": 5.0},
    {"loss": 0.10, "update_kbps": 5.0},
    {"loss": 0.30, "update_kbps": 5.0},
    {"loss": 0.30, "update_kbps": 20.0},
    {"loss": 0.50, "update_kbps": 20.0},
]


def demo_tree(hot_share: float, fb_share: float) -> HierarchicalScheduler:
    """Build the Figure 12 tree and push synthetic traffic through it."""
    scheduler = HierarchicalScheduler()
    scheduler.add_class("data", weight=max(1.0 - fb_share, 1e-6))
    scheduler.add_class("feedback", weight=max(fb_share, 1e-6))
    scheduler.add_class("data/hot", weight=hot_share)
    scheduler.add_class("data/cold", weight=1.0 - hot_share)
    for index in range(300):
        scheduler.enqueue("data/hot", f"h{index}")
        scheduler.enqueue("data/cold", f"c{index}")
        scheduler.enqueue("feedback", f"f{index}")
    for _ in range(300):
        scheduler.dequeue()
    return scheduler


def _cell(loss: float, update_kbps: float) -> Dict[str, Any]:
    """One allocator evaluation at a measured network condition."""
    allocator = ProfileDrivenAllocator(StaticCongestionManager(TOTAL_KBPS))
    allocation = allocator.allocate(
        now=0.0, loss_rate=loss, update_kbps=update_kbps
    )
    return {
        "row": {
            "loss": loss,
            "offered_kbps": update_kbps,
            "data_kbps": round(allocation.data_kbps, 2),
            "fb_kbps": round(allocation.feedback_kbps, 2),
            "hot_kbps": round(allocation.hot_kbps, 2),
            "cold_kbps": round(allocation.cold_kbps, 2),
            "predicted_c": round(allocation.predicted_consistency, 3),
            "max_offered_kbps": round(allocation.max_update_kbps, 2),
        },
        "hot_share": allocation.hot_share,
        "feedback_share": allocation.feedback_share,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    cells = [
        {"loss": scenario["loss"], "update_kbps": scenario["update_kbps"]}
        for scenario in SCENARIOS
    ]
    results = run_cells(_cell, cells, jobs=jobs)
    rows = [result["row"] for result in results]
    last = results[-1]
    tree = demo_tree(last["hot_share"], last["feedback_share"])
    return ExperimentResult(
        experiment_id="figure12",
        title="Profile-driven allocator output per network condition",
        rows=rows,
        parameters={"total_kbps": TOTAL_KBPS},
        notes=(
            "Scheduler tree after serving 300 packets under the last "
            "allocation:\n" + tree.describe()
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
