"""Figure 7: the hot/cold/dead record state machine.

The figure is a diagram; this experiment prints the executable machine
and audits it against a live feedback session — every record's history
must respect the diagram, and the visit statistics show how often each
edge fires in practice.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.experiments.common import ExperimentResult, Row, horizon_for, run_cells
from repro.protocols import FeedbackSession
from repro.protocols.states import ascii_diagram


def _cell(horizon: float, seed: int) -> Tuple[List[Row], int]:
    """Run the audited session; return (edge-count rows, records audited)."""
    session = FeedbackSession(
        hot_share=0.7,
        data_kbps=36.0,
        feedback_kbps=9.0,
        loss_rate=0.3,
        update_rate=10.0,
        lifetime_mean=15.0,
        seed=seed,
    )
    # Keep machines of dead records for the audit.
    graveyard = []
    original = session._drop_from_queues

    def drop_and_keep(key):
        machine = session.machines.get(key)
        if machine is not None:
            graveyard.append(machine)
        original(key)

    session._drop_from_queues = drop_and_keep
    session.run(horizon=horizon, warmup=horizon / 5.0)

    edge_counts: Counter = Counter()
    for machine in graveyard:
        for source, target, label in machine.history:
            edge_counts[(source.value, target.value, label)] += 1
    rows = [
        {"from": source, "to": target, "event": label, "count": count}
        for (source, target, label), count in sorted(
            edge_counts.items(), key=lambda kv: -kv[1]
        )
    ]
    return rows, len(graveyard)


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=300.0, reduced=80.0)
    (rows, audited), = run_cells(
        _cell, [{"horizon": horizon, "seed": seed}], jobs=jobs
    )
    return ExperimentResult(
        experiment_id="figure7",
        title="Hot/cold/dead state machine: edge visit counts",
        rows=rows,
        parameters={"records_audited": audited},
        notes="Diagram:\n" + ascii_diagram(),
    )


def main() -> None:
    result = run()
    print(result.render())


if __name__ == "__main__":
    main()
