"""Terminal plotting for experiment series.

The paper's evaluation is figures; this environment is a terminal.
:func:`ascii_plot` renders grouped (x, y) series as a fixed-grid
scatter/line chart with per-series glyphs, good enough to *see* the
knees, plateaus, and collapses the experiments reproduce.

>>> print(ascii_plot({"a": [(0, 0.0), (1, 1.0)]}, width=20, height=5))
... # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

Series = Dict[Any, List[Tuple[float, float]]]

#: Glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"


def _bounds(
    series: Series,
) -> Tuple[float, float, float, float]:
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    if not xs:
        raise ValueError("nothing to plot")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def ascii_plot(
    series: Series,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render ``{label: [(x, y), ...]}`` as a terminal chart."""
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    clean: Series = {
        label: [
            (x, y)
            for x, y in points
            if not (math.isnan(x) or math.isnan(y))
        ]
        for label, points in series.items()
    }
    clean = {label: pts for label, pts in clean.items() if pts}
    if not clean:
        raise ValueError("nothing to plot")
    x_lo, x_hi, y_lo, y_hi = _bounds(clean)
    if y_range is not None:
        y_lo, y_hi = y_range
        if y_hi <= y_lo:
            raise ValueError("y_range must be increasing")

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - max(0, min(row, height - 1))
        column = max(0, min(column, width - 1))
        grid[row][column] = glyph

    legend: List[str] = []
    for index, (label, points) in enumerate(clean.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} {label}")
        for x, y in points:
            place(x, y, glyph)

    lines: List[str] = []
    if title:
        lines.append(f"   {title}")
    top = f"{y_hi:g}"
    bottom = f"{y_lo:g}"
    margin = max(len(top), len(bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(
        width - width // 2
    )
    lines.append(" " * (margin + 1) + x_axis)
    lines.append(
        " " * (margin + 1) + f"{x_label}  (y: {y_label})   " + "  ".join(legend)
    )
    return "\n".join(lines)


def plot_experiment(
    result,
    x: str,
    y: str,
    group: Optional[str] = None,
    **kwargs,
) -> str:
    """Plot an :class:`~repro.experiments.common.ExperimentResult`."""
    series = result.series(x, y, group=group)
    labelled = {
        (f"{group}={key}" if group else y): points
        for key, points in series.items()
    }
    kwargs.setdefault("x_label", x)
    kwargs.setdefault("y_label", y)
    kwargs.setdefault("title", f"{result.experiment_id}: {result.title}")
    return ascii_plot(labelled, **kwargs)
