"""Extension experiment: convergence time to eventual consistency.

The paper defines a protocol as *eventually consistent* when c(k,t) -> 1
after an item enters the system, but never measures how long "eventually"
takes.  This experiment quantifies it: publish a static store of N
records at t=0 (the paper's "static input" scenario) and measure, per
protocol and loss rate, the time until the receiver holds 50%, 90%, and
99% of the store.

Expected ordering: feedback converges fastest (it requests exactly what
is missing), two-queue next, and single-FIFO open loop slowest (every
pass retransmits the whole store to repair a few holes).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import FeedbackSession, OpenLoopSession, TwoQueueSession
from repro.workloads import StaticBulkWorkload

#: Store size: a full FIFO pass takes N/mu seconds, and the contrast
#: between protocols only shows when that pass time dominates repair
#: round trips (with 45 pkt/s and 600 records, one pass is ~13 s).
N_RECORDS_FULL = 600
N_RECORDS_QUICK = 200
MU_TOTAL = 45.0
QUANTILES = (0.5, 0.9, 0.99)


def crossing_times(
    series: List[Tuple[float, float]], thresholds=QUANTILES
) -> dict:
    """First time each consistency threshold is reached (NaN if never)."""
    result = {q: math.nan for q in thresholds}
    for t, value in series:
        for q in thresholds:
            if math.isnan(result[q]) and value >= q:
                result[q] = t
    return result


def build_session(protocol: str, loss: float, seed: int, n_records: int):
    workload = StaticBulkWorkload(n_records)
    common = dict(
        workload=workload, loss_rate=loss, seed=seed, record_series=True,
        tick=0.25,
    )
    if protocol == "open-loop":
        return OpenLoopSession(data_kbps=MU_TOTAL, **common)
    if protocol == "two-queue":
        return TwoQueueSession(
            hot_share=0.7, data_kbps=MU_TOTAL, **common
        )
    if protocol == "feedback":
        return FeedbackSession(
            hot_share=0.7,
            data_kbps=MU_TOTAL * 0.9,
            feedback_kbps=MU_TOTAL * 0.1,
            **common,
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def _cell(
    loss: float, protocol: str, horizon: float, seed: int, n_records: int
) -> Row:
    """One protocol's convergence run over the static bulk store."""
    session = build_session(protocol, loss, seed, n_records)
    result = session.run(horizon=horizon, warmup=0.0)
    # The running average lags the instantaneous value; use the
    # meter's raw series for crossing detection.
    raw = session.meter.series
    times = crossing_times(raw)
    return {
        "loss": loss,
        "protocol": protocol,
        "t50_s": times[0.5],
        "t90_s": times[0.9],
        "t99_s": times[0.99],
        "final": result.consistency,
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=400.0, reduced=150.0)
    n_records = N_RECORDS_QUICK if quick else N_RECORDS_FULL
    losses = sweep_points(
        quick, full=[0.05, 0.2, 0.4, 0.6], reduced=[0.05, 0.4]
    )
    cells = [
        {
            "loss": loss,
            "protocol": protocol,
            "horizon": horizon,
            "seed": seed,
            "n_records": n_records,
        }
        for loss in losses
        for protocol in ("open-loop", "two-queue", "feedback")
    ]
    rows = run_cells(_cell, cells, jobs=jobs)
    return ExperimentResult(
        experiment_id="ext_convergence",
        title="Time to eventual consistency (static bulk store)",
        rows=rows,
        parameters={
            "n_records": n_records,
            "mu_total_kbps": MU_TOTAL,
            "horizon_s": horizon,
        },
        notes=(
            "Feedback repairs only what is missing, so its t99 is far "
            "ahead of the open-loop FIFO, whose full-store pass costs "
            "N/mu seconds per retry round."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
