"""Figure 4: bandwidth wasted on redundant retransmissions vs loss rate.

The paper highlights p_death = 0.10: at loss rates of 0-20% about 90% of
the total available bandwidth goes to retransmitting records the
receiver already holds.
"""

from __future__ import annotations

from repro.analysis import redundant_bandwidth_fraction
from repro.experiments.common import ExperimentResult, sweep_points

DEATH_RATES = [0.10, 0.25, 0.50]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    loss_rates = sweep_points(
        quick,
        full=[round(0.02 * i, 2) for i in range(0, 50)],
        reduced=[0.0, 0.1, 0.2, 0.4, 0.6, 0.8],
    )
    rows = [
        {
            "p_death": p_death,
            "p_loss": p_loss,
            "redundant_fraction": redundant_bandwidth_fraction(
                p_loss, p_death
            ),
        }
        for p_death in DEATH_RATES
        for p_loss in loss_rates
    ]
    return ExperimentResult(
        experiment_id="figure4",
        title="Fraction of bandwidth spent on redundant retransmissions",
        rows=rows,
        parameters={"death_rates": DEATH_RATES},
        notes=(
            "Headline: ~90% of bandwidth wasted at p_death=0.10 for loss "
            "in 0-20%."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
