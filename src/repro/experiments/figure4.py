"""Figure 4: bandwidth wasted on redundant retransmissions vs loss rate.

The paper highlights p_death = 0.10: at loss rates of 0-20% about 90% of
the total available bandwidth goes to retransmitting records the
receiver already holds.
"""

from __future__ import annotations

from typing import List

from repro.analysis import redundant_bandwidth_fraction
from repro.experiments.common import ExperimentResult, Row, run_cells, sweep_points

DEATH_RATES = [0.10, 0.25, 0.50]


def _cell(p_death: float, loss_rates: List[float]) -> List[Row]:
    """One death-rate curve of the redundancy closed form."""
    return [
        {
            "p_death": p_death,
            "p_loss": p_loss,
            "redundant_fraction": redundant_bandwidth_fraction(
                p_loss, p_death
            ),
        }
        for p_loss in loss_rates
    ]


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    loss_rates = sweep_points(
        quick,
        full=[round(0.02 * i, 2) for i in range(0, 50)],
        reduced=[0.0, 0.1, 0.2, 0.4, 0.6, 0.8],
    )
    cells = [
        {"p_death": p_death, "loss_rates": loss_rates}
        for p_death in DEATH_RATES
    ]
    rows = [row for curve in run_cells(_cell, cells, jobs=jobs) for row in curve]
    return ExperimentResult(
        experiment_id="figure4",
        title="Fraction of bandwidth spent on redundant retransmissions",
        rows=rows,
        parameters={"death_rates": DEATH_RATES},
        notes=(
            "Headline: ~90% of bandwidth wasted at p_death=0.10 for loss "
            "in 0-20%."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
