"""Figure 5: two-queue scheme — consistency vs hot-queue bandwidth share.

Paper parameters: mu_data = 45 kbps, lambda = 15 kbps.  Consistency
rises with mu_hot while mu_hot < lambda (the hot queue must absorb new
arrivals), peaks around mu_hot ~ lambda (~33-40% of mu_data here), and
is flat beyond — "increasing mu_hot beyond lambda does not have a
significant impact".  Improvement over single-queue open loop is
10-40%.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.protocols import OpenLoopSession, TwoQueueSession

MU_DATA = 45.0
LAMBDA = 15.0
LIFETIME_MEAN = 20.0
LOSS_RATES = [0.1, 0.3, 0.5]


def _cell(
    loss: float,
    hot_share: Optional[float],
    horizon: float,
    warmup: float,
    seed: int,
) -> float:
    """One session's consistency; ``hot_share=None`` is the open-loop baseline."""
    common = dict(
        data_kbps=MU_DATA,
        loss_rate=loss,
        update_rate=LAMBDA,
        lifetime_mean=LIFETIME_MEAN,
        seed=seed,
    )
    if hot_share is None:
        session = OpenLoopSession(**common)
    else:
        session = TwoQueueSession(hot_share=hot_share, **common)
    return session.run(horizon=horizon, warmup=warmup).consistency


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=600.0, reduced=150.0)
    warmup = horizon / 5.0
    hot_shares = sweep_points(
        quick,
        full=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        reduced=[0.1, 0.4, 0.7],
    )
    cells = [
        {
            "loss": loss,
            "hot_share": hot_share,
            "horizon": horizon,
            "warmup": warmup,
            "seed": seed,
        }
        for loss in LOSS_RATES
        for hot_share in [None] + list(hot_shares)
    ]
    consistencies = iter(run_cells(_cell, cells, jobs=jobs))
    rows = []
    for loss in LOSS_RATES:
        baseline = next(consistencies)
        for hot_share in hot_shares:
            consistency = next(consistencies)
            rows.append(
                {
                    "loss": loss,
                    "hot_share": hot_share,
                    "mu_hot_kbps": round(hot_share * MU_DATA, 1),
                    "consistency": consistency,
                    "open_loop_baseline": baseline,
                    "gain": consistency - baseline,
                }
            )
    return ExperimentResult(
        experiment_id="figure5",
        title="Two-queue scheduling: consistency vs mu_hot/mu_data",
        rows=rows,
        parameters={
            "mu_data_kbps": MU_DATA,
            "lambda_kbps": LAMBDA,
            "lifetime_mean_s": LIFETIME_MEAN,
            "horizon_s": horizon,
        },
        notes=(
            "Consistency peaks once mu_hot exceeds lambda "
            f"(hot_share ~ {LAMBDA / MU_DATA:.2f}); gain over open loop "
            "is the paper's 10-40% claim."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
