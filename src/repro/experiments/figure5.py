"""Figure 5: two-queue scheme — consistency vs hot-queue bandwidth share.

Paper parameters: mu_data = 45 kbps, lambda = 15 kbps.  Consistency
rises with mu_hot while mu_hot < lambda (the hot queue must absorb new
arrivals), peaks around mu_hot ~ lambda (~33-40% of mu_data here), and
is flat beyond — "increasing mu_hot beyond lambda does not have a
significant impact".  Improvement over single-queue open loop is
10-40%.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, horizon_for, sweep_points
from repro.protocols import OpenLoopSession, TwoQueueSession

MU_DATA = 45.0
LAMBDA = 15.0
LIFETIME_MEAN = 20.0
LOSS_RATES = [0.1, 0.3, 0.5]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    horizon = horizon_for(quick, full=600.0, reduced=150.0)
    warmup = horizon / 5.0
    hot_shares = sweep_points(
        quick,
        full=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        reduced=[0.1, 0.4, 0.7],
    )
    rows = []
    for loss in LOSS_RATES:
        baseline = OpenLoopSession(
            data_kbps=MU_DATA,
            loss_rate=loss,
            update_rate=LAMBDA,
            lifetime_mean=LIFETIME_MEAN,
            seed=seed,
        ).run(horizon=horizon, warmup=warmup)
        for hot_share in hot_shares:
            result = TwoQueueSession(
                hot_share=hot_share,
                data_kbps=MU_DATA,
                loss_rate=loss,
                update_rate=LAMBDA,
                lifetime_mean=LIFETIME_MEAN,
                seed=seed,
            ).run(horizon=horizon, warmup=warmup)
            rows.append(
                {
                    "loss": loss,
                    "hot_share": hot_share,
                    "mu_hot_kbps": round(hot_share * MU_DATA, 1),
                    "consistency": result.consistency,
                    "open_loop_baseline": baseline.consistency,
                    "gain": result.consistency - baseline.consistency,
                }
            )
    return ExperimentResult(
        experiment_id="figure5",
        title="Two-queue scheduling: consistency vs mu_hot/mu_data",
        rows=rows,
        parameters={
            "mu_data_kbps": MU_DATA,
            "lambda_kbps": LAMBDA,
            "lifetime_mean_s": LIFETIME_MEAN,
            "horizon_s": horizon,
        },
        notes=(
            "Consistency peaks once mu_hot exceeds lambda "
            f"(hot_share ~ {LAMBDA / MU_DATA:.2f}); gain over open loop "
            "is the paper's 10-40% claim."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
