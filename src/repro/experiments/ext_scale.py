"""Extension experiment: announce/listen at population scale.

The paper's consistency results are population-level claims, but the
per-receiver DES tops out around 10^4 receivers.  This experiment runs
the two scale backends side by side over N = 10^3 .. 10^7:

* the **sharded DES** (``repro.protocols.sharded``) up to its ceiling —
  each shard is an ordinary runner cell, so the pool and the result
  cache apply per shard and the merged rows are byte-identical for any
  shard count or ``--jobs`` value;
* the **mean-field fluid model** (``repro.fluid``) beyond it — cost is
  N-independent, so the 10^6/10^7 rows are milliseconds each;
* the overlap region (N at or below the DES ceiling) cross-validates
  them: the ``fluid_err`` column is the absolute gap between the DES
  tail consistency and the fluid equilibrium ``1 - p^m`` (pinned more
  tightly by ``tests/fluid/test_cross_validation.py``).

Expected result: DES and fluid agree to a few parts in a thousand in
the overlap, and the false-expiry rate scales linearly with N while
the consistency fraction and convergence times do not move — the
million-receiver claims are the small-N curves, rescaled.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.common import (
    ExperimentResult,
    Row,
    horizon_for,
    run_cells,
    sweep_points,
)
from repro.fluid import FluidParams, derive_rates, solve, summarize
from repro.protocols.sharded import (
    merge_shards,
    shard_bounds,
    shard_cell,
    shard_metrics,
)

#: Shared announce/listen scenario: a 4-record store refreshed once per
#: second, records expiring after 4 missed refresh intervals.
N_RECORDS = 4
REFRESH_INTERVAL = 1.0
TIMEOUT_MULTIPLE = 4
TICK = 1.0
FLUID_DT = 0.05

#: (population, shards) pairs for the DES prong.  Shard counts grow
#: with N so per-shard work stays bounded; the merged rows are
#: shard-count-invariant, so these are tuning knobs, not parameters.
DES_POINTS_FULL = [(1000, 2), (3000, 4), (10000, 8)]
DES_POINTS_QUICK = [(300, 2), (1000, 4)]
#: Fluid prong: overlaps the DES range, then runs three decades past
#: the DES ceiling.
FLUID_N_FULL = [1000, 10000, 100000, 1000000, 10000000]
FLUID_N_QUICK = [300, 1000, 1000000]


def _fluid_cell(
    loss: float, n: int, horizon: float, dt: float
) -> Row:
    """One fluid sweep point (pure function of its kwargs: no seed)."""
    params = FluidParams(
        loss=loss,
        refresh_interval=REFRESH_INTERVAL,
        timeout_multiple=TIMEOUT_MULTIPLE,
        n_receivers=float(n),
    )
    summary = summarize(solve(params, horizon, dt), n_records=N_RECORDS)
    return {
        "backend": "fluid",
        "n": n,
        "shards": 1,
        "loss": loss,
        "consistency": summary["consistency"],
        "t50_s": summary["t50_s"],
        "t90_s": summary["t90_s"],
        "t99_s": summary["t99_s"],
        "false_expiry_per_s": summary["false_expiry_per_s"],
        "fluid_err": 0.0,
    }


def _merge_des_rows(
    loss: float, n: int, shards: int, shard_rows: List[Dict[str, Any]]
) -> Row:
    """Fold one DES sweep point's shard cells into its experiment row."""
    merged = merge_shards(shard_rows)
    metrics = shard_metrics(merged)
    hold_eq = derive_rates(
        FluidParams(
            loss=loss,
            refresh_interval=REFRESH_INTERVAL,
            timeout_multiple=TIMEOUT_MULTIPLE,
        )
    ).hold_eq
    return {
        "backend": "des",
        "n": n,
        "shards": shards,
        "loss": loss,
        "consistency": metrics["consistency"],
        "t50_s": metrics["t50_s"],
        "t90_s": metrics["t90_s"],
        "t99_s": metrics["t99_s"],
        "false_expiry_per_s": metrics["false_expiry_per_s"],
        "fluid_err": abs(metrics["consistency"] - hold_eq),
    }


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> ExperimentResult:
    horizon = horizon_for(quick, full=80.0, reduced=40.0)
    losses = sweep_points(quick, full=[0.05, 0.2, 0.4], reduced=[0.1, 0.4])
    des_points = DES_POINTS_QUICK if quick else DES_POINTS_FULL
    fluid_ns = FLUID_N_QUICK if quick else FLUID_N_FULL

    # DES prong: the *shards* are the cells (a pooled worker cannot
    # nest another pool), flattened here and re-grouped after run_cells.
    des_cells: List[Dict[str, Any]] = []
    groups: List[tuple] = []
    for loss in losses:
        for n, shards in des_points:
            bounds = shard_bounds(n, shards)
            groups.append((loss, n, len(bounds)))
            for index, (lo, hi) in enumerate(bounds):
                des_cells.append(
                    {
                        "n_receivers": n,
                        "lo": lo,
                        "hi": hi,
                        "shard": index,
                        "loss_rate": loss,
                        "seed": seed,
                        "horizon": horizon,
                        "refresh_interval": REFRESH_INTERVAL,
                        "n_records": N_RECORDS,
                        "timeout_multiple": TIMEOUT_MULTIPLE,
                        "tick": TICK,
                    }
                )
    shard_rows = run_cells(shard_cell, des_cells, jobs=jobs)
    rows: List[Row] = []
    cursor = 0
    for loss, n, shards in groups:
        rows.append(
            _merge_des_rows(loss, n, shards, shard_rows[cursor : cursor + shards])
        )
        cursor += shards

    fluid_cells = [
        {"loss": loss, "n": n, "horizon": horizon, "dt": FLUID_DT}
        for loss in losses
        for n in fluid_ns
    ]
    rows.extend(run_cells(_fluid_cell, fluid_cells, jobs=jobs))

    return ExperimentResult(
        experiment_id="ext_scale",
        title="Scale backends: sharded DES vs mean-field fluid (N=10^3..10^7)",
        rows=rows,
        parameters={
            "n_records": N_RECORDS,
            "refresh_interval_s": REFRESH_INTERVAL,
            "timeout_multiple": TIMEOUT_MULTIPLE,
            "horizon_s": horizon,
            "fluid_dt_s": FLUID_DT,
        },
        notes=(
            "Consistency and convergence times are N-invariant while "
            "the false-expiry rate scales linearly with N; in the "
            "overlap region the DES tail consistency sits within a few "
            "parts in a thousand of the fluid equilibrium 1 - p^m "
            "(fluid_err column), which is what licenses the fluid rows "
            "beyond the DES ceiling."
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
