"""SSTP: the Soft State Transport Protocol framework (Section 6).

SSTP packages the paper's results as a reusable transport:

* a **hierarchical namespace** over application data units with
  per-node digests, so large data stores can be summarized in one
  announcement and repaired by recursive descent
  (:mod:`repro.sstp.namespace`, :mod:`repro.sstp.digest`);
* **receiver reports** measuring packet loss RTCP-style
  (:mod:`repro.sstp.receiver_report`);
* a **profile-driven bandwidth allocator** that splits the session
  bandwidth between data and feedback — and data between hot and cold
  queues — to maximize predicted consistency at the measured loss rate
  (:mod:`repro.sstp.allocator`, Figure 12);
* a **congestion-manager interface** supplying the total available rate
  (:mod:`repro.sstp.congestion`); SSTP allocates within it but does not
  do congestion control itself, exactly as the paper prescribes;
* an **application API** in the ALF spirit: applications publish named
  ADUs with lifetimes and priorities, subscribe with interest filters,
  pick a reliability level on a continuum from open-loop announce/listen
  to feedback-based reliable transport, and receive rate-limit
  notifications when their offered load exceeds the hot-queue bandwidth
  (:mod:`repro.sstp.api`, :mod:`repro.sstp.protocol`).
"""

from repro.sstp.digest import digest_bytes, digest_leaf, digest_children
from repro.sstp.namespace import Namespace, NamespaceNode
from repro.sstp.receiver_report import LossEstimator, ReceiverReport
from repro.sstp.congestion import (
    AimdCongestionManager,
    CongestionManager,
    StaticCongestionManager,
    SteppedCongestionManager,
)
from repro.sstp.allocator import Allocation, ProfileDrivenAllocator
from repro.sstp.protocol import SstpReceiver, SstpResult, SstpSender
from repro.sstp.api import ReliabilityLevel, SstpSession
from repro.sstp.timers import (
    RefreshEstimator,
    detection_latency,
    false_expiry_probability,
)

__all__ = [
    "AimdCongestionManager",
    "Allocation",
    "CongestionManager",
    "LossEstimator",
    "Namespace",
    "NamespaceNode",
    "ProfileDrivenAllocator",
    "ReceiverReport",
    "RefreshEstimator",
    "ReliabilityLevel",
    "SstpReceiver",
    "SstpResult",
    "SstpSender",
    "SstpSession",
    "StaticCongestionManager",
    "SteppedCongestionManager",
    "digest_bytes",
    "digest_children",
    "digest_leaf",
    "detection_latency",
    "false_expiry_probability",
]
