"""The SSTP hierarchical namespace (Section 6.2).

An SSTP namespace is a hierarchical index over the ADUs a sender
generates.  Each node carries a fixed-length digest of its subtree,
recomputed bottom-up on every mutation (with dirty-propagation so only
the changed path is rehashed).  Receivers mirror the structure; loss
recovery proceeds by *recursive descent*: compare root digests, and on
mismatch request the children's digests, descending only into differing
branches until the stale leaves are found.

Nodes may carry application-level metadata tags (e.g. a media type); a
receiver with no interest in a branch can prune the descent there — the
paper's PDA-browser example.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sstp.digest import digest_children, digest_leaf

PATH_SEPARATOR = "/"


class NamespaceError(Exception):
    """Raised for structural misuse of the namespace."""


class NamespaceNode:
    """One node: either an interior index node or a leaf ADU."""

    def __init__(self, name: str, parent: Optional["NamespaceNode"]) -> None:
        if PATH_SEPARATOR in name:
            raise NamespaceError(
                f"node name {name!r} must not contain {PATH_SEPARATOR!r}"
            )
        self.name = name
        self.parent = parent
        self.children: Dict[str, "NamespaceNode"] = {}
        self.value: Any = None
        self.version = 0
        self.right_edge = 0
        self.metadata: Dict[str, Any] = {}
        self._digest: Optional[bytes] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def path(self) -> str:
        parts: List[str] = []
        node: Optional[NamespaceNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return PATH_SEPARATOR.join(reversed(parts))

    def _invalidate(self) -> None:
        # Clear self unconditionally (a fresh node starts at None), then
        # walk up clearing every *cached* ancestor.  Stopping at the
        # first uncached ancestor is safe: computing a digest always
        # fills the whole subtree below it, so a None node can never
        # have a cached ancestor.
        self._digest = None
        node = self.parent
        while node is not None and node._digest is not None:
            node._digest = None
            node = node.parent

    def digest(self, algorithm: str = "blake2b") -> bytes:
        """The subtree summary, recomputed lazily after mutations."""
        if self._digest is None:
            if self.is_leaf:
                self._digest = digest_leaf(
                    self.path,
                    self.version,
                    self.right_edge,
                    self.value,
                    algorithm,
                )
            else:
                self._digest = digest_children(
                    (
                        self.children[name].digest(algorithm)
                        for name in sorted(self.children)
                    ),
                    algorithm,
                )
        return self._digest


class Namespace:
    """A digest-summarized tree of ADUs with path-based addressing."""

    def __init__(self, algorithm: str = "blake2b") -> None:
        self.algorithm = algorithm
        self._root = NamespaceNode("", parent=None)
        # The root hashes as an interior node; give it a sentinel child
        # digest when empty so digest() is always defined.
        self._leaf_count = 0

    @property
    def root(self) -> NamespaceNode:
        return self._root

    def root_digest(self) -> bytes:
        if not self._root.children:
            return digest_leaf("", 0, 0, None, self.algorithm)
        return self._root.digest(self.algorithm)

    def __len__(self) -> int:
        return self._leaf_count

    # -- mutation -----------------------------------------------------------
    def publish(
        self,
        path: str,
        value: Any,
        size_bytes: int = 0,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> NamespaceNode:
        """Insert or update the ADU at ``path``, creating interior nodes.

        Returns the leaf node.  Each publish bumps the leaf version and
        advances its right-edge by ``size_bytes``.
        """
        if size_bytes < 0:
            raise NamespaceError(
                f"size_bytes must be non-negative, got {size_bytes}"
            )
        parts = self._split(path)
        node = self._root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                child = NamespaceNode(part, parent=node)
                node.children[part] = child
                node._invalidate()
            elif child.is_leaf and child.version > 0:
                raise NamespaceError(
                    f"{child.path!r} is a published leaf; cannot nest under it"
                )
            node = child
        leaf_name = parts[-1]
        leaf = node.children.get(leaf_name)
        if leaf is None:
            leaf = NamespaceNode(leaf_name, parent=node)
            node.children[leaf_name] = leaf
            self._leaf_count += 1
        elif not leaf.is_leaf:
            raise NamespaceError(
                f"{path!r} is an interior node; publish at a leaf"
            )
        elif leaf.version == 0 and leaf.value is None:
            pass  # implicitly created placeholder
        leaf.value = value
        leaf.version += 1
        leaf.right_edge += size_bytes
        if metadata:
            leaf.metadata.update(metadata)
        leaf._invalidate()
        return leaf

    def install(
        self,
        path: str,
        value: Any,
        version: int,
        right_edge: int,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> NamespaceNode:
        """Receiver-side mirror install: set exact version/right-edge.

        Unlike :meth:`publish` (which bumps the version), this stamps
        the leaf with the sender-announced version and right-edge so the
        mirrored digest matches the sender's when content matches.
        Stale installs (version older than what is held) are ignored.
        """
        if version < 0:
            raise NamespaceError(f"version must be non-negative, got {version}")
        existing = self.find(path)
        if (
            existing is not None
            and existing.is_leaf
            and existing.version > version
        ):
            return existing
        leaf = self.publish(path, value, size_bytes=0, metadata=metadata)
        leaf.version = version
        leaf.right_edge = right_edge
        leaf._invalidate()
        return leaf

    def remove(self, path: str) -> None:
        """Remove a leaf (and any interior nodes left empty)."""
        node = self.find(path)
        if node is None:
            raise NamespaceError(f"no node at {path!r}")
        if not node.is_leaf:
            raise NamespaceError(f"{path!r} is interior; remove leaves")
        self._leaf_count -= 1
        parent = node.parent
        del parent.children[node.name]
        parent._invalidate()
        while (
            parent is not None
            and parent.parent is not None
            and not parent.children
        ):
            grand = parent.parent
            del grand.children[parent.name]
            grand._invalidate()
            parent = grand

    def set_metadata(self, path: str, **tags: Any) -> None:
        """Attach application-level tags to any node (interest hints)."""
        node = self.find(path)
        if node is None:
            raise NamespaceError(f"no node at {path!r}")
        node.metadata.update(tags)
        # Metadata is advisory; it does not change digests.

    # -- queries --------------------------------------------------------------
    def find(self, path: str) -> Optional[NamespaceNode]:
        if path == "":
            return self._root
        node = self._root
        for part in self._split(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def child_summaries(self, path: str) -> List[Tuple[str, bytes]]:
        """(child path, digest) pairs — the recursive-descent response."""
        node = self.find(path)
        if node is None:
            raise NamespaceError(f"no node at {path!r}")
        return [
            (node.children[name].path, node.children[name].digest(self.algorithm))
            for name in sorted(node.children)
        ]

    def content_fingerprint(self) -> str:
        """A digest-machinery-independent hash of the leaf contents.

        The spec checker uses this to verify the paper's claim that
        digest agreement implies namespace agreement (Section 6): two
        namespaces reporting the same root digest must also report the
        same fingerprint.  It is deliberately computed without
        ``digest_leaf``/``digest_children`` so a bug in the Merkle
        machinery cannot also corrupt the oracle.
        """
        hasher = hashlib.sha256()
        for leaf in self.leaves():
            hasher.update(
                repr(
                    (leaf.path, leaf.version, leaf.right_edge, leaf.value)
                ).encode("utf-8", "backslashreplace")
            )
        return hasher.hexdigest()

    def leaves(self) -> Iterator[NamespaceNode]:
        def walk(node: NamespaceNode) -> Iterator[NamespaceNode]:
            if node.is_leaf and node is not self._root:
                yield node
            for name in sorted(node.children):
                yield from walk(node.children[name])

        return walk(self._root)

    def diff_paths(self, other: "Namespace") -> List[str]:
        """Leaf paths whose digests differ (offline comparison helper).

        The on-the-wire protocol achieves the same comparison through
        recursive descent; this helper is the oracle for tests.
        """
        differing: List[str] = []

        def walk(path: str) -> None:
            mine = self.find(path)
            theirs = other.find(path)
            if mine is None and theirs is None:
                return
            my_digest = mine.digest(self.algorithm) if mine else None
            their_digest = (
                theirs.digest(other.algorithm) if theirs else None
            )
            if my_digest == their_digest:
                return
            names = set()
            if mine is not None:
                names |= set(mine.children)
            if theirs is not None:
                names |= set(theirs.children)
            if not names:
                differing.append(path)
                return
            for name in sorted(names):
                child_path = (
                    f"{path}{PATH_SEPARATOR}{name}" if path else name
                )
                walk(child_path)

        walk("")
        return differing

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split(PATH_SEPARATOR) if part]
        if not parts:
            raise NamespaceError(f"invalid path {path!r}")
        return parts
