"""Congestion-manager interface.

The paper is explicit: "SSTP does not attempt to perform congestion
control nor determine the total available data rate ... but rather,
relies on a congestion management module, such as the CM, to obtain
this information."  This module provides that narrow interface plus
three providers: a static rate (manually configured sessions, like the
MBone tools), a stepped schedule (scripted rate changes for failure
injection), and a toy AIMD probe (a stand-in for a real CM).
"""

from __future__ import annotations

from typing import Callable, List, Tuple


class CongestionManager:
    """Supplies the session's total available bandwidth (kbps)."""

    def available_kbps(self, now: float) -> float:
        raise NotImplementedError

    def on_rate_change(self, callback: Callable[[float], None]) -> None:
        """Register interest in rate changes (may never fire)."""
        self._callbacks.append(callback)

    def __init__(self) -> None:
        self._callbacks: List[Callable[[float], None]] = []

    def _notify(self, rate: float) -> None:
        for callback in self._callbacks:
            callback(rate)


class StaticCongestionManager(CongestionManager):
    """A manually configured session bandwidth, constant forever."""

    def __init__(self, kbps: float) -> None:
        super().__init__()
        if kbps <= 0:
            raise ValueError(f"kbps must be positive, got {kbps}")
        self.kbps = kbps

    def available_kbps(self, now: float) -> float:
        return self.kbps


class SteppedCongestionManager(CongestionManager):
    """A piecewise-constant rate schedule: [(start_time, kbps), ...]."""

    def __init__(self, steps: List[Tuple[float, float]]) -> None:
        super().__init__()
        if not steps:
            raise ValueError("need at least one (time, kbps) step")
        ordered = sorted(steps)
        if ordered[0][0] > 0.0:
            raise ValueError("first step must start at or before t=0")
        for _, kbps in ordered:
            if kbps <= 0:
                raise ValueError(f"kbps must be positive, got {kbps}")
        self.steps = ordered

    def available_kbps(self, now: float) -> float:
        rate = self.steps[0][1]
        for start, kbps in self.steps:
            if start <= now:
                rate = kbps
            else:
                break
        return rate


class AimdCongestionManager(CongestionManager):
    """A toy additive-increase/multiplicative-decrease rate probe.

    Stands in for a real CM in simulations: the protocol calls
    :meth:`on_loss_estimate` with the measured loss rate; rates grow by
    ``increase_kbps`` per update while loss is below ``loss_threshold``
    and halve when it is above.
    """

    def __init__(
        self,
        initial_kbps: float,
        floor_kbps: float = 1.0,
        ceiling_kbps: float = 10000.0,
        increase_kbps: float = 1.0,
        decrease_factor: float = 0.5,
        loss_threshold: float = 0.05,
    ) -> None:
        super().__init__()
        if initial_kbps <= 0:
            raise ValueError(f"initial_kbps must be positive, got {initial_kbps}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        if floor_kbps <= 0 or floor_kbps > ceiling_kbps:
            raise ValueError("need 0 < floor_kbps <= ceiling_kbps")
        self._rate = initial_kbps
        self.floor_kbps = floor_kbps
        self.ceiling_kbps = ceiling_kbps
        self.increase_kbps = increase_kbps
        self.decrease_factor = decrease_factor
        self.loss_threshold = loss_threshold

    def available_kbps(self, now: float) -> float:
        return self._rate

    def on_loss_estimate(self, loss_rate: float) -> float:
        if loss_rate > self.loss_threshold:
            self._rate = max(
                self.floor_kbps, self._rate * self.decrease_factor
            )
        else:
            self._rate = min(
                self.ceiling_kbps, self._rate + self.increase_kbps
            )
        self._notify(self._rate)
        return self._rate
