"""The SSTP wire protocol: sender, receivers, and recursive repair.

Message types (all over lossy channels):

* ``adu``     — an application data unit: (path, value, version,
  right-edge, metadata).  Sent through the hot queue for new data and
  for requested repairs.
* ``summary`` — the root namespace digest.  Sent continuously through
  the cold queue; this replaces the open-loop protocol's full-data
  background retransmissions with constant-size summaries — SSTP's
  bandwidth saving.
* ``digests`` — a node's children: (child path, digest, metadata)
  triples; the response to a descent query.
* ``query``   — receiver feedback: "send me the children of <path>"
  (recursive-descent step) or "resend the ADU at <path>" (leaf repair).
* ``report``  — RTCP-style receiver report carrying observed loss.

Receivers compare announced digests against their mirror and descend
only into differing branches; branches whose metadata fails the
receiver's interest filter are pruned from the descent (and excluded
from that receiver's consistency accounting).

Loss of any message is tolerated without retries: the periodic root
summary restarts the comparison, so repair is soft state all the way
down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core import BandwidthLedger, FaultReport, LatencyRecorder
from repro.des import Environment, Interrupt
from repro.net import Channel, MulticastChannel, Packet
from repro.obs import runtime as _obs
from repro.obs.trace import RECORD as _RECORD
from repro.sched import HierarchicalScheduler
from repro.sstp.namespace import Namespace
from repro.sstp.receiver_report import LossEstimator, ReportBuilder

HOT = "data/hot"
COLD = "data/cold"

#: Feedback messages (queries, reports) are small.
FEEDBACK_BITS = 100
#: Summary/digest packets carry a handful of 16-byte digests.
SUMMARY_BITS = 300


@dataclass
class SstpResult:
    """Measured outcome of an SSTP session run."""

    consistency: float
    per_receiver_consistency: Dict[str, float]
    mean_receive_latency: float
    adu_packets: int
    summary_packets: int
    digest_packets: int
    query_packets: int
    repair_requests: int
    report_packets: int
    data_packets_sent: int
    bandwidth_bits: Dict[str, float] = field(default_factory=dict)
    estimated_loss: float = 0.0
    fault_reports: list[FaultReport] = field(default_factory=list)
    false_expiries: int = 0


class _MirrorMeter:
    """Time-weighted per-receiver namespace consistency."""

    def __init__(self, start_time: float) -> None:
        self.last_time = start_time
        self.weighted = 0.0
        self.duration = 0.0
        self._value = 0.0

    def observe(self, now: float, value: Optional[float]) -> None:
        interval = now - self.last_time
        if interval > 0:
            self.weighted += self._value * interval
            self.duration += interval
            self.last_time = now
        if value is not None:
            self._value = value

    @property
    def value(self) -> float:
        """The most recently observed consistency sample."""
        return self._value

    def average(self) -> float:
        return self.weighted / self.duration if self.duration else 0.0


class SstpReceiver:
    """One subscriber: namespace mirror plus recursive-descent repair."""

    def __init__(
        self,
        receiver_id: str,
        env: Environment,
        feedback: Optional[Channel],
        interest: Optional[Callable[[str, Dict[str, Any]], bool]] = None,
        on_update: Optional[Callable[[str, Any], None]] = None,
        on_remove: Optional[Callable[[str], None]] = None,
        latency: Optional[LatencyRecorder] = None,
    ) -> None:
        self.receiver_id = receiver_id
        self.env = env
        self.feedback = feedback
        self.interest = interest
        self.on_update = on_update
        self.on_remove = on_remove
        self.latency = latency
        self.mirror = Namespace()
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        self.report_builder = ReportBuilder(receiver_id)
        self.queries_sent = 0
        self.repairs_requested = 0
        self.adus_received = 0
        self._event_hook: Optional[Callable[[], None]] = None
        #: Set while the receiver is off the network (churn, partition):
        #: no queries or reports can be transmitted.
        self.detached = False

    # -- packet handling -----------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        if packet.seq is not None:
            self.report_builder.on_packet(packet.seq)
        handler = getattr(self, f"_on_{packet.kind}", None)
        if handler is None:
            return
        handler(packet.payload)
        if self._event_hook is not None:
            self._event_hook()

    def _on_adu(self, payload: Dict[str, Any]) -> None:
        path = payload["path"]
        if not self._interested(path, payload.get("metadata") or {}):
            return
        self.adus_received += 1
        self.mirror.install(
            path,
            payload["value"],
            version=payload["version"],
            right_edge=payload["right_edge"],
            metadata=payload.get("metadata"),
        )
        if self.latency is not None:
            self.latency.received(path, payload["version"], self.env.now)
        if self.on_update is not None:
            self.on_update(path, payload["value"])

    def _on_summary(self, payload: Dict[str, Any]) -> None:
        digest = payload["digest"]
        mine = self.mirror.root_digest()
        match = digest == mine
        tr = self._trace
        if tr is not None and tr.record:
            # On a match, also report the mirror's digest-independent
            # content fingerprint: the spec checker compares it with the
            # sender's to verify digest agreement ⇒ namespace agreement.
            tr.emit(
                _RECORD,
                "summary_checked",
                self.env.now,
                receiver=self.receiver_id,
                digest=digest.hex(),
                mirror_digest=mine.hex(),
                match=match,
                fingerprint=(
                    self.mirror.content_fingerprint() if match else None
                ),
            )
        if not match:
            self._query("", descend=True)

    def _on_digests(self, payload: Dict[str, Any]) -> None:
        parent = payload["path"]
        listed = payload["children"]  # [(path, digest, metadata), ...]
        listed_names = set()
        for child_path, digest, metadata in listed:
            listed_names.add(child_path.rsplit("/", 1)[-1])
            if not self._interested(child_path, metadata or {}):
                continue
            mine = self.mirror.find(child_path)
            my_digest = (
                mine.digest(self.mirror.algorithm) if mine is not None else None
            )
            if my_digest == digest:
                continue
            if payload["leaf"].get(child_path, False):
                self._query(child_path, descend=False)  # leaf repair
            else:
                self._query(child_path, descend=True)
        # Prune leaves the sender no longer lists under this parent.
        mine_parent = self.mirror.find(parent)
        if mine_parent is not None:
            for name in sorted(set(mine_parent.children) - listed_names):
                child = mine_parent.children[name]
                self._remove_subtree(child.path)

    def _remove_subtree(self, path: str) -> None:
        node = self.mirror.find(path)
        if node is None:
            return
        for leaf in [n for n in self.mirror.leaves() if _is_under(n.path, path)]:
            self.mirror.remove(leaf.path)
            if self.on_remove is not None:
                self.on_remove(leaf.path)

    def _interested(self, path: str, metadata: Dict[str, Any]) -> bool:
        if self.interest is None:
            return True
        return self.interest(path, metadata)

    # -- feedback -------------------------------------------------------------
    def _query(self, path: str, descend: bool) -> None:
        if self.feedback is None or self.detached:
            return
        self.queries_sent += 1
        if not descend:
            self.repairs_requested += 1
            tr = self._trace
            if tr is not None and tr.record:
                # Span-opening marker: one repair chain per namespace
                # path (docs/SPANS.md); re-queries deepen it.
                tr.emit(
                    _RECORD,
                    "repair_requested",
                    self.env.now,
                    path=path,
                    receiver=self.receiver_id,
                )
        self.feedback.send(
            Packet(
                kind="query",
                payload={
                    "receiver": self.receiver_id,
                    "path": path,
                    "descend": descend,
                },
                size_bits=FEEDBACK_BITS,
            )
        )

    def send_report(self) -> None:
        if self.feedback is None or self.detached:
            return
        report = self.report_builder.build(self.env.now)
        if report is None:
            return
        self.feedback.send(
            Packet(
                kind="report",
                payload={"report": report},
                size_bits=FEEDBACK_BITS,
            )
        )


def _is_under(path: str, ancestor: str) -> bool:
    return path == ancestor or path.startswith(ancestor + "/")


class SstpSender:
    """The SSTP publisher: namespace, hot/cold scheduler, repair engine."""

    def __init__(
        self,
        env: Environment,
        data_channel: MulticastChannel,
        hot_share: float = 0.7,
        summary_interval_hint: float = 1.0,
        adu_size_bits: int = 1000,
        cold_content: str = "summaries",
        latency: Optional[LatencyRecorder] = None,
    ) -> None:
        if not 0.0 < hot_share < 1.0:
            raise ValueError(f"hot_share must be in (0, 1), got {hot_share}")
        if adu_size_bits <= 0:
            raise ValueError(
                f"adu_size_bits must be positive, got {adu_size_bits}"
            )
        if cold_content not in ("summaries", "adus"):
            raise ValueError(
                "cold_content must be 'summaries' (SSTP digests) or "
                f"'adus' (classic announce/listen), got {cold_content!r}"
            )
        self.env = env
        self.cold_content = cold_content
        self.data_channel = data_channel
        self.namespace = Namespace()
        self.scheduler = HierarchicalScheduler()
        self.scheduler.add_class("data", weight=1.0)
        self.scheduler.add_class(HOT, weight=hot_share)
        self.scheduler.add_class(COLD, weight=1.0 - hot_share)
        self.adu_size_bits = adu_size_bits
        self.summary_interval_hint = summary_interval_hint
        self.loss_estimator = LossEstimator()
        session_label = _obs.next_session_label()
        self.ledger = BandwidthLedger(session=session_label, protocol="sstp")
        self.latency = (
            latency
            if latency is not None
            else LatencyRecorder(session=session_label, protocol="sstp")
        )
        self._seq = 0
        self._hot_queued: set[Tuple[str, str]] = set()
        self.adu_packets = 0
        self.summary_packets = 0
        self.digest_packets = 0
        self.repair_requests = 0
        self.report_packets = 0
        self.queries_received = 0
        self._wakeup = None
        self._first_tx: set[Tuple[str, int]] = set()
        #: Set while the sender is crashed: feedback arriving in this
        #: window reaches a dead process and is simply lost.
        self.crashed = False
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        self._process = env.process(self._run())
        env.process(self._summary_pump())

    # -- application-facing ------------------------------------------------------
    def publish(
        self,
        path: str,
        value: Any,
        size_bytes: int = 125,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Publish (or update) an ADU and schedule its transmission."""
        leaf = self.namespace.publish(
            path, value, size_bytes=size_bytes, metadata=metadata
        )
        self.latency.introduced(path, leaf.version, self.env.now)
        self._enqueue(HOT, ("adu", path))
        self._wake()

    def remove(self, path: str) -> None:
        """Withdraw an ADU; receivers prune it via summary descent.

        Any queued transmission of the removed path is filtered at
        dequeue time (:meth:`_build` skips paths no longer published).
        """
        self.namespace.remove(path)
        self._hot_queued.discard(("adu", path))

    def set_hot_share(self, hot_share: float) -> None:
        if not 0.0 < hot_share < 1.0:
            raise ValueError(f"hot_share must be in (0, 1), got {hot_share}")
        self.scheduler.set_weight(HOT, hot_share)
        self.scheduler.set_weight(COLD, 1.0 - hot_share)

    # -- fault support ---------------------------------------------------------------
    def crash(self, crash) -> None:
        """Kill the transmission engine for ``crash.down_for`` seconds.

        A warm restart resumes with the namespace intact: the very next
        cold summary advertises the true root digest and receivers pull
        whatever they missed — recovery is O(summary interval) by
        construction.  ``crash.cold`` loses the namespace; only data
        published after the restart exists.
        """
        self._process.interrupt(crash)

    def _crashed(self, crash):
        self.crashed = True
        self._wakeup = None
        if getattr(crash, "cold", False):
            for leaf in list(self.namespace.leaves()):
                self.namespace.remove(leaf.path)
            self._hot_queued.clear()
        yield self.env.timeout(crash.down_for)
        self.crashed = False

    # -- feedback handling ----------------------------------------------------------
    def handle_feedback(self, packet: Packet) -> None:
        if self.crashed:
            return
        if packet.kind == "query":
            self.queries_received += 1
            payload = packet.payload
            if payload["descend"]:
                self._enqueue(HOT, ("digests", payload["path"]))
            else:
                self.repair_requests += 1
                tr = self._trace
                if tr is not None and tr.record:
                    # Span-closing marker: the ADU re-send for this
                    # path is committed to the hot queue (docs/SPANS.md).
                    tr.emit(
                        _RECORD,
                        "repair_sent",
                        self.env.now,
                        path=payload["path"],
                    )
                self._enqueue(HOT, ("adu", payload["path"]))
            self._wake()
        elif packet.kind == "report":
            self.report_packets += 1
            self.loss_estimator.update(packet.payload["report"])

    # -- transmission -------------------------------------------------------------
    def _enqueue(self, cls: str, item: Tuple[str, str]) -> None:
        if cls == HOT:
            if item in self._hot_queued:
                return
            self._hot_queued.add(item)
        self.scheduler.enqueue(cls, item)

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _summary_pump(self):
        """Keep the cold queue continuously fed.

        In ``summaries`` mode (SSTP proper) the cold queue carries the
        root digest; in ``adus`` mode (classic announce/listen) it
        cycles full data announcements over every published leaf.
        Either way the cold queue consumes exactly its bandwidth share.
        """
        cold_cursor = 0
        while True:
            if self.scheduler.backlog(COLD) == 0:
                if self.cold_content == "summaries":
                    self.scheduler.enqueue(COLD, ("summary", ""))
                    self._wake()
                else:
                    leaves = [leaf.path for leaf in self.namespace.leaves()]
                    if leaves:
                        cold_cursor %= len(leaves)
                        self.scheduler.enqueue(
                            COLD, ("adu", leaves[cold_cursor])
                        )
                        cold_cursor += 1
                        self._wake()
            yield self.env.timeout(self.summary_interval_hint / 10.0)

    def _run(self):
        while True:
            try:
                while True:
                    entry = self.scheduler.dequeue()
                    if entry is None:
                        self._wakeup = self.env.event()
                        yield self._wakeup
                        self._wakeup = None
                        continue
                    _, (kind, path) = entry
                    self._hot_queued.discard((kind, path))
                    packet = self._build(kind, path)
                    if packet is None:
                        continue
                    yield self.data_channel.transmit(packet)
            except Interrupt as interrupt:
                yield from self._crashed(interrupt.cause)

    def _build(self, kind: str, path: str) -> Optional[Packet]:
        if kind == "summary":
            self.summary_packets += 1
            digest = self.namespace.root_digest()
            packet = Packet(
                kind="summary",
                seq=self._next_seq(),
                payload={"digest": digest},
                size_bits=SUMMARY_BITS,
            )
            self.ledger.add("summary", packet.size_bits)
            tr = self._trace
            if tr is not None and tr.record:
                tr.emit(
                    _RECORD,
                    "summary_digest",
                    self.env.now,
                    digest=digest.hex(),
                    fingerprint=self.namespace.content_fingerprint(),
                )
            return packet
        if kind == "digests":
            node = self.namespace.find(path)
            if node is None:
                return None
            children = [
                (child.path, child.digest(self.namespace.algorithm), child.metadata)
                for child in (
                    node.children[name] for name in sorted(node.children)
                )
            ]
            # An *empty* children list is still a valid (and necessary)
            # answer: it tells receivers to prune everything they hold
            # under this node — e.g. after the last record is removed.
            self.digest_packets += 1
            packet = Packet(
                kind="digests",
                seq=self._next_seq(),
                payload={
                    "path": path,
                    "children": children,
                    "leaf": {c.path: c.is_leaf for c in (
                        node.children[name] for name in sorted(node.children)
                    )},
                },
                size_bits=SUMMARY_BITS,
            )
            self.ledger.add("summary", packet.size_bits)
            return packet
        # kind == "adu"
        leaf = self.namespace.find(path)
        if leaf is None or not leaf.is_leaf:
            return None
        self.adu_packets += 1
        identity = (path, leaf.version)
        if identity not in self._first_tx:
            self._first_tx.add(identity)
            self.ledger.add("new", self.adu_size_bits)
        else:
            self.ledger.add("repair", self.adu_size_bits)
        return Packet(
            kind="adu",
            seq=self._next_seq(),
            payload={
                "path": path,
                "value": leaf.value,
                "version": leaf.version,
                "right_edge": leaf.right_edge,
                "metadata": dict(leaf.metadata),
            },
            size_bits=self.adu_size_bits,
        )

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq
