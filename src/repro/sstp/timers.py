"""Scalable timers: receiver-side refresh-rate estimation.

The paper cites Sharma et al. [46] for "the general problem of scalable
timers in soft state protocols": (i) the sender adapts its refresh rate
to keep total refresh bandwidth fixed as its table grows, and (ii) the
receiver *estimates* the sender's refresh rate to set its ageing
timeout, rather than relying on a protocol constant.

:class:`RefreshEstimator` implements the receiver half: it tracks
per-key inter-announcement times with an EWMA (plus a global estimate
for keys seen only once) and yields a hold time of ``multiple``
estimated intervals.  A small multiple detects sender death quickly but
falsely expires state whenever a couple of consecutive refreshes are
lost; the expiry-timer ablation bench quantifies that trade-off.

The sender half falls out of this library's design for free: the cold
queue serves the whole live table at a fixed bandwidth share, so the
per-record refresh interval automatically stretches as the table grows
(refresh_interval ~ table_size / mu_cold), which is exactly the
constant-bandwidth adaptation of [46].
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class RefreshEstimator:
    """EWMA estimate of per-key announcement intervals.

    Parameters
    ----------
    alpha:
        EWMA gain for interval updates.
    multiple:
        Hold time = ``multiple`` x estimated interval (the classic
        "miss k refreshes before expiring" rule; RSVP uses k=3).
    initial_interval:
        Hold estimate before any interval has been observed.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        multiple: float = 3.0,
        initial_interval: float = 30.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if multiple < 1.0:
            raise ValueError(f"multiple must be >= 1, got {multiple}")
        if initial_interval <= 0:
            raise ValueError(
                f"initial_interval must be positive, got {initial_interval}"
            )
        self.alpha = alpha
        self.multiple = multiple
        self.initial_interval = initial_interval
        self._last_seen: Dict[Any, float] = {}
        self._estimates: Dict[Any, float] = {}
        self._global_estimate: Optional[float] = None
        self.observations = 0

    def observe(self, key: Any, now: float) -> None:
        """Record an announcement of ``key`` at time ``now``."""
        last = self._last_seen.get(key)
        self._last_seen[key] = now
        if last is None:
            return
        interval = now - last
        if interval <= 0:
            return
        self.observations += 1
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = interval
        else:
            self._estimates[key] = current + self.alpha * (
                interval - current
            )
        if self._global_estimate is None:
            self._global_estimate = interval
        else:
            self._global_estimate += self.alpha * (
                interval - self._global_estimate
            )

    def interval(self, key: Any) -> float:
        """Best estimate of the sender's refresh interval for ``key``."""
        per_key = self._estimates.get(key)
        if per_key is not None:
            return per_key
        if self._global_estimate is not None:
            return self._global_estimate
        return self.initial_interval

    def hold_time(self, key: Any) -> float:
        """How long a subscriber should keep ``key`` without a refresh."""
        return self.multiple * self.interval(key)

    def forget(self, key: Any) -> None:
        """Drop per-key state (the record expired or was withdrawn)."""
        self._last_seen.pop(key, None)
        self._estimates.pop(key, None)

    def __len__(self) -> int:
        return len(self._estimates)


def detection_latency(interval: float, multiple: float) -> float:
    """Expected time to notice a dead sender: multiple x interval."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if multiple < 1.0:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    return multiple * interval


def false_expiry_probability(p_loss: float, multiple: int) -> float:
    """P[state falsely expires] = P[`multiple` consecutive refreshes lost].

    The fundamental timer trade-off: raising the multiple suppresses
    false expiry geometrically but slows dead-sender detection linearly.
    """
    if not 0.0 <= p_loss <= 1.0:
        raise ValueError(f"p_loss must be in [0, 1], got {p_loss}")
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    return p_loss**multiple
