"""RTCP-style receiver reports and loss estimation.

Section 6.1: "The average packet loss rate, periodically obtained from
RTCP-like receiver reports" feeds the bandwidth allocator.  The
receiver counts expected vs received packets per report interval (from
the sender's sequence numbers, as RTCP does) and sends a compact report;
the sender smooths successive reports with an EWMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ReceiverReport:
    """One report: the receiver's view of an interval."""

    receiver_id: str
    timestamp: float
    highest_seq: int
    expected: int
    received: int

    @property
    def loss_fraction(self) -> float:
        if self.expected <= 0:
            return 0.0
        lost = max(self.expected - self.received, 0)
        return lost / self.expected


class ReportBuilder:
    """Receiver-side interval accounting from observed sequence numbers."""

    def __init__(self, receiver_id: str) -> None:
        self.receiver_id = receiver_id
        self._highest_seq: Optional[int] = None
        self._received = 0
        self._interval_base: Optional[int] = None
        self._interval_received = 0

    def on_packet(self, seq: int) -> None:
        if seq < 0:
            raise ValueError(f"seq must be non-negative, got {seq}")
        self._received += 1
        self._interval_received += 1
        if self._highest_seq is None or seq > self._highest_seq:
            self._highest_seq = seq
        if self._interval_base is None:
            self._interval_base = seq

    def build(self, now: float) -> Optional[ReceiverReport]:
        """Emit the report for the current interval and start a new one."""
        if self._highest_seq is None or self._interval_base is None:
            return None
        expected = self._highest_seq - self._interval_base + 1
        report = ReceiverReport(
            receiver_id=self.receiver_id,
            timestamp=now,
            highest_seq=self._highest_seq,
            expected=expected,
            received=self._interval_received,
        )
        self._interval_base = self._highest_seq + 1
        self._interval_received = 0
        return report


class LossEstimator:
    """Sender-side EWMA over receiver-reported loss fractions."""

    def __init__(self, alpha: float = 0.25, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= initial <= 1.0:
            raise ValueError(f"initial must be in [0, 1], got {initial}")
        self.alpha = alpha
        self._estimate = initial
        self.reports_seen = 0

    def update(self, report: ReceiverReport) -> float:
        self._estimate += self.alpha * (
            report.loss_fraction - self._estimate
        )
        self.reports_seen += 1
        return self._estimate

    @property
    def estimate(self) -> float:
        return self._estimate
