"""The SSTP application API: sessions, reliability levels, adaptation.

This is the facade a downstream application uses.  It assembles the
sender, receivers, multicast data channel, per-receiver feedback
channels, the profile-driven allocator, and the periodic adaptation
loop, and exposes:

* ``publish(path, value, ...)`` / ``remove(path)`` — ALF-named ADUs;
* per-receiver ``on_update`` / ``on_remove`` callbacks and interest
  filters;
* a **reliability level** on the paper's continuum — from pure
  open-loop announce/listen (no feedback channel at all) to
  feedback-based reliable transport — or explicit knob settings;
* ``on_rate_limit`` — the notification the paper specifies when the
  application's offered load exceeds the hot-queue bandwidth.

Example
-------
>>> from repro.sstp import SstpSession, ReliabilityLevel
>>> session = SstpSession(total_kbps=50.0, n_receivers=2,
...                       loss_rate=0.2,
...                       reliability=ReliabilityLevel.RELIABLE)
>>> session.publish("news/tech/item1", {"headline": "soft state works"})
>>> result = session.run(horizon=120.0)
>>> result.consistency > 0.5
True
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import LatencyRecorder, RecoveryTracker
from repro.des import Environment, RngStreams
from repro.faults import FaultInjector, sender_side
from repro.obs import runtime as _obs
from repro.obs.trace import RUN as _RUN
from repro.net import (
    BernoulliLoss,
    Channel,
    CombinedLoss,
    LossModel,
    MulticastChannel,
    Packet,
    TotalLoss,
)
from repro.sstp.allocator import ProfileDrivenAllocator
from repro.sstp.congestion import CongestionManager, StaticCongestionManager
from repro.sstp.namespace import Namespace
from repro.sstp.protocol import (
    FEEDBACK_BITS,
    SstpReceiver,
    SstpResult,
    SstpSender,
    _MirrorMeter,
)


class ReliabilityLevel(enum.Enum):
    """The paper's continuum of reliability semantics, discretized.

    * ``OPEN_LOOP`` — no feedback channel: receivers rely purely on the
      sender's announcements (summaries still flow, but mismatches
      cannot be reported).  Cheapest; weakest consistency.
    * ``ANNOUNCE_LISTEN`` — feedback restricted to receiver reports
      (loss monitoring for the allocator) but no repair requests.
    * ``RELIABLE`` — full recursive-descent repair with NACK-like
      queries; approaches ARQ-grade delivery while retaining soft-state
      robustness.
    """

    OPEN_LOOP = "open-loop"
    ANNOUNCE_LISTEN = "announce-listen"
    RELIABLE = "reliable"


class SstpSession:
    """One SSTP publisher with a multicast group of receivers."""

    def __init__(
        self,
        total_kbps: float = 50.0,
        n_receivers: int = 1,
        loss_rate: float = 0.0,
        reliability: ReliabilityLevel = ReliabilityLevel.RELIABLE,
        congestion: Optional[CongestionManager] = None,
        allocator: Optional[ProfileDrivenAllocator] = None,
        feedback_share: Optional[float] = None,
        hot_share: Optional[float] = None,
        report_interval: float = 5.0,
        adapt_interval: Optional[float] = 10.0,
        update_kbps_hint: float = 5.0,
        loss_models: Optional[Dict[str, LossModel]] = None,
        interest_filters: Optional[
            Dict[str, Callable[[str, Dict[str, Any]], bool]]
        ] = None,
        on_rate_limit: Optional[Callable[[float], None]] = None,
        seed: int = 0,
        faults=None,
    ) -> None:
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver, got {n_receivers}")
        if report_interval <= 0:
            raise ValueError(
                f"report_interval must be positive, got {report_interval}"
            )
        self.env = Environment()
        self.rng = RngStreams(seed=seed)
        self.reliability = reliability
        self.congestion = congestion or StaticCongestionManager(total_kbps)
        self.allocator = allocator or ProfileDrivenAllocator(self.congestion)
        self.report_interval = report_interval
        self.adapt_interval = adapt_interval
        self.update_kbps_hint = update_kbps_hint
        self.on_rate_limit = on_rate_limit
        self._offered_kbps = 0.0
        self._publish_count = 0

        # Initial allocation from the profile (loss unknown: assume the
        # configured rate for a sensible start).
        initial = self.allocator.allocate(
            now=0.0, loss_rate=loss_rate, update_kbps=update_kbps_hint
        )
        if reliability is ReliabilityLevel.OPEN_LOOP:
            feedback_kbps = 0.0
            data_kbps = self.congestion.available_kbps(0.0)
        else:
            share = (
                feedback_share
                if feedback_share is not None
                else initial.feedback_share
            )
            feedback_kbps = share * self.congestion.available_kbps(0.0)
            data_kbps = self.congestion.available_kbps(0.0) - feedback_kbps
        if data_kbps <= 0:
            raise ValueError("allocation leaves no data bandwidth")
        self.allocation = initial

        self.data_channel = MulticastChannel(self.env, data_kbps)
        self._session_label = _obs.next_session_label()
        #: Ambient tracer, cached at construction (guarded attribute).
        self._trace = _obs.current_tracer()
        self.latency = LatencyRecorder(
            session=self._session_label, protocol=type(self).__name__
        )
        self.sender = SstpSender(
            self.env,
            self.data_channel,
            hot_share=(
                hot_share if hot_share is not None else initial.hot_share
            ),
            cold_content=(
                "summaries"
                if reliability is ReliabilityLevel.RELIABLE
                else "adus"
            ),
            latency=self.latency,
        )

        self.receivers: List[SstpReceiver] = []
        self._meters: Dict[str, _MirrorMeter] = {}
        self._receiver_loss: Dict[str, LossModel] = {}
        self._feedback_channels: Dict[str, Optional[Channel]] = {}
        loss_models = loss_models or {}
        interest_filters = interest_filters or {}
        for index in range(n_receivers):
            receiver_id = f"rcv-{index}"
            loss = loss_models.get(receiver_id)
            if loss is None:
                loss = BernoulliLoss(
                    loss_rate, rng=self.rng.spawn(receiver_id)["loss"]
                )
            self._receiver_loss[receiver_id] = loss
            feedback: Optional[Channel] = None
            if reliability is not ReliabilityLevel.OPEN_LOOP:
                per_receiver_fb = feedback_kbps / n_receivers
                if per_receiver_fb > 0:
                    feedback = Channel(
                        self.env,
                        per_receiver_fb,
                        loss=BernoulliLoss(
                            loss_rate,
                            rng=self.rng.spawn(receiver_id)["fb-loss"],
                        ),
                    )
                    feedback.subscribe(self._sender_feedback_gate)
            receiver = SstpReceiver(
                receiver_id,
                self.env,
                feedback=feedback,
                interest=interest_filters.get(receiver_id),
                latency=self.latency,
            )
            self.receivers.append(receiver)
            self._feedback_channels[receiver_id] = feedback
            self.data_channel.join(receiver_id, receiver.deliver, loss=loss)
        self.feedback_kbps = feedback_kbps

        #: Fault-injection state (same contract as the protocol-ladder
        #: sessions).  SSTP mirrors carry no refresh timers — pruning is
        #: digest-driven — so the false-expiry count is structurally 0.
        self.faults = faults
        self.fault_tracker: Optional[RecoveryTracker] = None
        if faults is not None:
            self.fault_tracker = RecoveryTracker()
        self._series: List[Tuple[float, float]] = []
        self._receiver_by_id: Dict[str, SstpReceiver] = {
            receiver.receiver_id: receiver for receiver in self.receivers
        }
        self._partition_state: List[str] = []

    # -- wiring helpers ------------------------------------------------------------
    def _sender_feedback_gate(self, packet: Packet) -> None:
        """Route feedback to the sender, honouring the reliability level."""
        if (
            self.reliability is ReliabilityLevel.ANNOUNCE_LISTEN
            and packet.kind == "query"
        ):
            return  # repair requests disabled at this level
        self.sender.handle_feedback(packet)

    # -- application surface ----------------------------------------------------------
    def publish(
        self,
        path: str,
        value: Any,
        size_bytes: int = 125,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._publish_count += 1
        self.sender.publish(path, value, size_bytes=size_bytes, metadata=metadata)

    def remove(self, path: str) -> None:
        self.sender.remove(path)

    def set_receiver_callbacks(
        self,
        receiver_id: str,
        on_update: Optional[Callable[[str, Any], None]] = None,
        on_remove: Optional[Callable[[str], None]] = None,
    ) -> None:
        for receiver in self.receivers:
            if receiver.receiver_id == receiver_id:
                receiver.on_update = on_update
                receiver.on_remove = on_remove
                return
        raise ValueError(f"unknown receiver {receiver_id!r}")

    # -- periodic processes -------------------------------------------------------------
    def _report_loop(self):
        while True:
            yield self.env.timeout(self.report_interval)
            for receiver in self.receivers:
                receiver.send_report()

    def _adapt_loop(self):
        """Re-tune hot/cold from measured loss; notify on rate limits."""
        while True:
            yield self.env.timeout(self.adapt_interval)
            loss = self.sender.loss_estimator.estimate
            offered = self._measure_offered_kbps()
            allocation = self.allocator.allocate(
                now=self.env.now,
                loss_rate=min(loss, 0.99),
                update_kbps=max(offered, 1e-3),
            )
            self.allocation = allocation
            self.sender.set_hot_share(allocation.hot_share)
            if (
                self.on_rate_limit is not None
                and offered > allocation.max_update_kbps
            ):
                self.on_rate_limit(allocation.max_update_kbps)

    def _measure_offered_kbps(self) -> float:
        """New-data rate offered since the last adaptation tick."""
        count = self._publish_count
        self._publish_count = 0
        bits = count * self.sender.adu_size_bits
        return bits / 1000.0 / max(self.adapt_interval, 1e-9)

    def _meter_loop(self, tick: float = 0.5):
        while True:
            yield self.env.timeout(tick)
            self._observe_meters()

    def _observe_meters(self) -> None:
        now = self.env.now
        values = []
        for receiver in self.receivers:
            meter = self._meters.get(receiver.receiver_id)
            if meter is None:
                continue
            meter.observe(now, self._mirror_consistency(receiver))
            values.append(meter.value)
        if values:
            if self.fault_tracker is not None:
                self._series.append((now, sum(values) / len(values)))
            tr = self._trace
            if tr is not None and tr.run:
                tr.emit(
                    _RUN,
                    "consistency_sample",
                    now,
                    value=sum(values) / len(values),
                    session=self._session_label,
                )

    def _mirror_consistency(self, receiver: SstpReceiver) -> Optional[float]:
        """Fraction of the sender's ADUs (of interest) mirrored exactly."""
        sender_leaves = list(self.sender.namespace.leaves())
        relevant = [
            leaf
            for leaf in sender_leaves
            if receiver.interest is None
            or receiver.interest(leaf.path, leaf.metadata)
        ]
        if not relevant:
            return None
        matched = 0
        for leaf in relevant:
            mine = receiver.mirror.find(leaf.path)
            if mine is not None and mine.digest(
                receiver.mirror.algorithm
            ) == leaf.digest(self.sender.namespace.algorithm):
                matched += 1
        return matched / len(relevant)

    # -- fault hooks (consumed by repro.faults) -------------------------------------------
    def fault_crash_sender(self, crash) -> None:
        self.sender.crash(crash)

    def fault_outage_begin(self):
        token = [("shared_loss", self.data_channel, self.data_channel.shared_loss)]
        self.data_channel.shared_loss = TotalLoss()
        for channel in self._feedback_channels.values():
            if channel is None:
                continue
            token.append(("loss", channel, channel.loss))
            channel.loss = TotalLoss()
        return token

    def fault_outage_end(self, token) -> None:
        for attr, obj, loss in token:
            setattr(obj, attr, loss)

    def fault_loss_overlay(self, make_model):
        token = [("shared_loss", self.data_channel, self.data_channel.shared_loss)]
        self.data_channel.shared_loss = CombinedLoss(
            [self.data_channel.shared_loss, make_model()]
        )
        return token

    fault_loss_restore = fault_outage_end

    def fault_receiver_ids(self) -> List[str]:
        return [receiver.receiver_id for receiver in self.receivers]

    def fault_receiver_leave(self, receiver_id: str, cold: bool = True) -> None:
        receiver = self._receiver_by_id[receiver_id]
        self.data_channel.leave(receiver_id)
        receiver.detached = True
        if cold:
            # The crashed subscriber restarts with an empty mirror and
            # relearns the namespace from summaries on rejoin.
            receiver.mirror = Namespace()
        self._observe_meters()

    def fault_receiver_rejoin(self, receiver_id: str) -> None:
        receiver = self._receiver_by_id[receiver_id]
        receiver.detached = False
        self.data_channel.join(
            receiver_id,
            receiver.deliver,
            loss=self._receiver_loss[receiver_id],
        )
        self._observe_meters()

    def fault_partition_begin(self, groups) -> None:
        connected = sender_side(groups)
        for receiver in self.receivers:
            if receiver.receiver_id in connected:
                continue
            self.data_channel.block(receiver.receiver_id)
            receiver.detached = True
            self._partition_state.append(receiver.receiver_id)
        self._observe_meters()

    def fault_partition_end(self) -> None:
        for receiver_id in self._partition_state:
            self.data_channel.unblock(receiver_id)
            self._receiver_by_id[receiver_id].detached = False
        self._partition_state = []
        self._observe_meters()

    # -- running -------------------------------------------------------------------------
    def run(self, horizon: float, warmup: float = 0.0) -> SstpResult:
        if horizon <= warmup:
            raise ValueError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        if self.reliability is not ReliabilityLevel.OPEN_LOOP:
            self.env.process(self._report_loop())
        if self.adapt_interval is not None:
            self.env.process(self._adapt_loop())
        self.env.process(self._meter_loop())
        if self.faults is not None:
            FaultInjector(self, self.faults, self.fault_tracker).start(
                horizon=horizon
            )
        self.env.run(until=warmup)
        for receiver in self.receivers:
            self._meters[receiver.receiver_id] = _MirrorMeter(warmup)
        self.env.run(until=horizon)
        self._observe_meters()
        per_receiver = {
            rid: meter.average() for rid, meter in self._meters.items()
        }
        overall = sum(per_receiver.values()) / len(per_receiver)
        total_queries = sum(r.queries_sent for r in self.receivers)
        return SstpResult(
            consistency=overall,
            per_receiver_consistency=per_receiver,
            mean_receive_latency=self.latency.mean(),
            adu_packets=self.sender.adu_packets,
            summary_packets=self.sender.summary_packets,
            digest_packets=self.sender.digest_packets,
            query_packets=total_queries,
            repair_requests=self.sender.repair_requests,
            report_packets=self.sender.report_packets,
            data_packets_sent=self.data_channel.packets_sent,
            bandwidth_bits=self.sender.ledger.as_dict(),
            estimated_loss=self.sender.loss_estimator.estimate,
            fault_reports=(
                self.fault_tracker.analyze(self._series)
                if self.fault_tracker is not None
                else []
            ),
            false_expiries=(
                self.fault_tracker.false_expiries
                if self.fault_tracker is not None
                else 0
            ),
        )
