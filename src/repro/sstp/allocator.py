"""The profile-driven bandwidth allocator (Section 6.1, Figure 12).

Inputs (exactly the three the paper lists):

1. the average packet loss rate, from receiver reports;
2. the application's consistency target (and optionally a soft delay
   hint);
3. the total available session bandwidth, from the congestion manager.

Output: an :class:`Allocation` — the data/feedback split and the
hot/cold split of the data bandwidth — chosen against stored
*consistency profiles* (measured surfaces of consistency vs allocation
per loss rate).  The allocator also computes the maximum new-data rate
the hot queue can sustain; if the application's offered load exceeds it,
the session notifies the application to adapt (the paper's rate-limit
notification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import ConsistencyProfile, LatencyProfile, ProfilePoint
from repro.sstp.congestion import CongestionManager


@dataclass(frozen=True)
class Allocation:
    """A complete bandwidth plan for the session."""

    total_kbps: float
    data_kbps: float
    feedback_kbps: float
    hot_share: float
    predicted_consistency: float
    max_update_kbps: float

    @property
    def hot_kbps(self) -> float:
        return self.data_kbps * self.hot_share

    @property
    def cold_kbps(self) -> float:
        return self.data_kbps * (1.0 - self.hot_share)

    @property
    def feedback_share(self) -> float:
        return self.feedback_kbps / self.total_kbps if self.total_kbps else 0.0


def default_feedback_profile() -> ConsistencyProfile:
    """A built-in feedback-share profile with the Figure 8/9 shape.

    Measured from this repository's own feedback-session sweeps
    (see ``repro.experiments.figure9``); consistency rises with the
    feedback share until NACK capacity covers the loss rate, plateaus,
    then collapses once data bandwidth starves.  Applications with
    unusual workloads should measure and install their own profile.
    """
    profile = ConsistencyProfile("feedback-default", knob_name="fb_share")
    surface = {
        0.01: [(0.0, 0.97), (0.05, 0.99), (0.10, 0.99), (0.30, 0.97), (0.50, 0.88), (0.70, 0.45)],
        0.10: [(0.0, 0.92), (0.05, 0.97), (0.10, 0.98), (0.30, 0.95), (0.50, 0.85), (0.70, 0.42)],
        0.30: [(0.0, 0.85), (0.05, 0.93), (0.10, 0.96), (0.30, 0.94), (0.50, 0.80), (0.70, 0.35)],
        0.50: [(0.0, 0.72), (0.05, 0.85), (0.10, 0.92), (0.30, 0.90), (0.50, 0.70), (0.70, 0.25)],
    }
    for loss, points in surface.items():
        for share, consistency in points:
            profile.add(ProfilePoint(loss, share, consistency))
    return profile


class ProfileDrivenAllocator:
    """Chooses {data, feedback, hot:cold} from consistency profiles."""

    def __init__(
        self,
        congestion: CongestionManager,
        feedback_profile: Optional[ConsistencyProfile] = None,
        latency_profile: Optional[LatencyProfile] = None,
        consistency_target: Optional[float] = None,
        delay_target: Optional[float] = None,
        hot_headroom: float = 1.15,
        min_hot_share: float = 0.1,
        max_hot_share: float = 0.95,
    ) -> None:
        if consistency_target is not None and not 0.0 < consistency_target <= 1.0:
            raise ValueError(
                f"consistency_target must be in (0, 1], got {consistency_target}"
            )
        if delay_target is not None and delay_target <= 0:
            raise ValueError(
                f"delay_target must be positive, got {delay_target}"
            )
        if hot_headroom < 1.0:
            raise ValueError(
                f"hot_headroom must be >= 1, got {hot_headroom}"
            )
        if not 0.0 < min_hot_share < max_hot_share < 1.0:
            raise ValueError(
                "need 0 < min_hot_share < max_hot_share < 1, got "
                f"{min_hot_share}, {max_hot_share}"
            )
        self.congestion = congestion
        self.feedback_profile = (
            feedback_profile
            if feedback_profile is not None
            else default_feedback_profile()
        )
        self.consistency_target = consistency_target
        #: Optional T_recv profile: the paper's "soft delay requirement"
        #: hint steering the hot/cold split (Section 6.1).
        self.latency_profile = latency_profile
        self.delay_target = delay_target
        self.hot_headroom = hot_headroom
        self.min_hot_share = min_hot_share
        self.max_hot_share = max_hot_share

    def allocate(
        self,
        now: float,
        loss_rate: float,
        update_kbps: float,
    ) -> Allocation:
        """Produce a bandwidth plan for the current conditions.

        ``update_kbps`` is the application's offered new-data rate
        (lambda); it sizes the hot queue so that new data plus requested
        repairs fit (mu_hot >= lambda * headroom / (1 - loss)).
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if update_kbps < 0:
            raise ValueError(
                f"update_kbps must be non-negative, got {update_kbps}"
            )
        total = self.congestion.available_kbps(now)

        # 1. Feedback share from the consistency profile.
        if self.consistency_target is not None:
            share = self.feedback_profile.knob_for_target(
                loss_rate, self.consistency_target
            )
            if share is None:
                share, _ = self.feedback_profile.best_knob(loss_rate)
        else:
            share, _ = self.feedback_profile.best_knob(loss_rate)
        predicted = self.feedback_profile.predict(loss_rate, share)
        feedback_kbps = share * total
        data_kbps = total - feedback_kbps

        # 2. Hot share sized to carry new data plus loss repairs.
        needed_hot = (
            update_kbps * self.hot_headroom / max(1.0 - loss_rate, 1e-9)
        )
        if data_kbps > 0:
            hot_share = needed_hot / data_kbps
        else:
            hot_share = self.max_hot_share
        # The T_recv profile (Figure 6) steers the cold share: either
        # the smallest cold allocation meeting the delay target, or the
        # latency-minimizing one.  The hot floor always wins conflicts.
        if self.latency_profile is not None:
            if self.delay_target is not None:
                cold_knob = self.latency_profile.knob_for_target(
                    loss_rate, self.delay_target
                )
                if cold_knob is None:
                    cold_knob, _ = self.latency_profile.best_knob(loss_rate)
            else:
                cold_knob, _ = self.latency_profile.best_knob(loss_rate)
            hot_share = max(hot_share, 1.0 - cold_knob)
        hot_share = min(self.max_hot_share, max(self.min_hot_share, hot_share))

        # 3. The admissible application rate under this plan.
        max_update = (
            data_kbps
            * self.max_hot_share
            * (1.0 - loss_rate)
            / self.hot_headroom
        )
        return Allocation(
            total_kbps=total,
            data_kbps=data_kbps,
            feedback_kbps=feedback_kbps,
            hot_share=hot_share,
            predicted_consistency=predicted,
            max_update_kbps=max_update,
        )
